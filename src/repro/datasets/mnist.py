"""MNIST stand-in: 10 classes of 1x28x28 images (for the MLP experiments)."""

from __future__ import annotations

from repro.datasets.synthetic import ClassificationDataset, make_classification


def synthetic_mnist(
    train_per_class: int = 30,
    test_per_class: int = 10,
    seed: int = 0,
) -> ClassificationDataset:
    """Synthetic MNIST: grayscale 28x28, 10 classes."""
    return make_classification(
        name="mnist-synthetic",
        num_classes=10,
        image_size=28,
        channels=1,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=0.3,
        seed=seed,
    )
