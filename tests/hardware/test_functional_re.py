"""Tests: the shift-and-add rebuild datapath equals Ce @ B exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SmartExchangeConfig, smart_exchange_decompose
from repro.core.serialize import quantize_basis
from repro.hardware.smartexchange.functional_re import (
    RebuildTrace,
    functional_rebuild,
)


def se_form_matrix(rng, rows=16, cols=3, sparsity=0.3):
    """A random matrix already in SmartExchange form."""
    exponents = rng.integers(-6, 1, size=(rows, cols))
    signs = rng.choice([-1.0, 1.0], size=(rows, cols))
    matrix = signs * 2.0**exponents
    matrix[rng.random(rows) < sparsity] = 0.0
    return matrix


class TestFunctionalRebuild:
    def test_equals_matmul_exactly(self, rng):
        coefficient = se_form_matrix(rng)
        basis = rng.integers(-127, 128, size=(3, 3))
        rebuilt = functional_rebuild(coefficient, basis)
        np.testing.assert_array_equal(rebuilt, coefficient @ basis)

    def test_zero_rows_skipped(self, rng):
        coefficient = se_form_matrix(rng, sparsity=0.5)
        trace = RebuildTrace()
        functional_rebuild(coefficient, np.eye(3, dtype=np.int64), trace)
        zero_rows = int((~np.any(coefficient != 0, axis=1)).sum())
        assert trace.rows_skipped == zero_rows
        assert trace.rows_rebuilt == coefficient.shape[0] - zero_rows

    def test_no_ops_for_zero_coefficients(self, rng):
        coefficient = np.zeros((4, 3))
        coefficient[0, 0] = 0.5
        trace = RebuildTrace()
        functional_rebuild(coefficient, np.eye(3, dtype=np.int64), trace)
        # One non-zero coefficient: S shifts and S adds.
        assert trace.shifts == 3
        assert trace.adds == 3

    def test_op_counts_match_cost_model(self, rng):
        """The functional trace must agree with the analytical RE cost."""
        from repro.hardware.layers import LayerKind, LayerSpec
        from repro.hardware.smartexchange.rebuild_engine import rebuild_cost

        coefficient = se_form_matrix(rng, rows=12, cols=3, sparsity=0.0)
        trace = RebuildTrace()
        functional_rebuild(coefficient, np.eye(3, dtype=np.int64), trace)
        spec = LayerSpec(name="x", kind=LayerKind.CONV, in_channels=4,
                         out_channels=1, kernel=3, in_h=8, in_w=8)
        cost = rebuild_cost(spec, 0.0)
        # Same geometry: 12 alive rows x 3 x 3 shift-adds.
        assert trace.adds == cost.shift_add_ops

    def test_end_to_end_with_decomposition(self, rng):
        """Decompose -> integer basis -> shift-add rebuild ~= Ce @ B."""
        config = SmartExchangeConfig(max_iterations=6)
        decomposition = smart_exchange_decompose(
            rng.normal(size=(24, 3)), config
        )
        basis_codes, scale = quantize_basis(decomposition.basis)
        rebuilt = functional_rebuild(
            decomposition.coefficient, basis_codes.astype(np.int64)
        ) * scale
        reference = decomposition.coefficient @ (
            basis_codes.astype(np.float64) * scale
        )
        np.testing.assert_allclose(rebuilt, reference, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), sparsity=st.floats(0.0, 0.9))
def test_shift_add_property(seed, sparsity):
    rng = np.random.default_rng(seed)
    coefficient = se_form_matrix(rng, rows=10, cols=3, sparsity=sparsity)
    basis = rng.integers(-50, 51, size=(3, 3))
    np.testing.assert_array_equal(
        functional_rebuild(coefficient, basis), coefficient @ basis
    )
