"""Tests for the baseline compression techniques."""

import numpy as np
import pytest

from repro import nn
from repro.compression import (
    ChannelPruner,
    DoReFaQuantizer,
    FilterPruner,
    FP8Quantizer,
    LinearQuantizer,
    MagnitudePruner,
    Pow2Quantizer,
    PruneThenQuantize,
)


def tiny_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(8, 4, rng=rng),
    )


class TestMagnitudePruner:
    def test_sparsity_achieved(self, rng):
        model = tiny_model(rng)
        MagnitudePruner(0.5).compress(model)
        weight = model[0].weight.data
        assert np.isclose((weight == 0).mean(), 0.5, atol=0.02)

    def test_prunes_smallest(self, rng):
        model = tiny_model(rng)
        original = model[5].weight.data.copy()
        MagnitudePruner(0.25).compress(model)
        pruned_mask = model[5].weight.data == 0
        if pruned_mask.any() and (~pruned_mask).any():
            assert (np.abs(original[pruned_mask]).max()
                    <= np.abs(original[~pruned_mask]).min() + 1e-12)

    def test_storage_includes_bitmap(self, rng):
        model = tiny_model(rng)
        report = MagnitudePruner(0.5).compress(model)
        conv_bits = report.layer_bits["0"]
        weight = model[0].weight.data
        nnz = int(np.count_nonzero(weight))
        assert conv_bits == nnz * 32 + weight.size

    def test_zero_sparsity_is_identity(self, rng):
        model = tiny_model(rng)
        before = model[0].weight.data.copy()
        MagnitudePruner(0.0).compress(model)
        np.testing.assert_array_equal(model[0].weight.data, before)

    def test_validation(self):
        with pytest.raises(ValueError):
            MagnitudePruner(1.0)


class TestChannelPruner:
    def test_prunes_lowest_gamma_filters(self, rng):
        model = tiny_model(rng)
        model[1].gamma.data[:] = [0.1, 5, 5, 5, 0.2, 5, 5, 5]
        ChannelPruner(0.25).compress(model)
        weight = model[0].weight.data
        assert (weight[0] == 0).all() and (weight[4] == 0).all()
        assert (weight[1] != 0).any()

    def test_structured_storage_no_index(self, rng):
        model = tiny_model(rng)
        report = ChannelPruner(0.5).compress(model)
        weight = model[0].weight.data
        kept_filters = int(np.any(weight.reshape(8, -1) != 0, axis=1).sum())
        expected = kept_filters * int(np.prod(weight.shape[1:])) * 32
        assert report.layer_bits["0"] == expected

    def test_compression_rate_above_one(self, rng):
        report = ChannelPruner(0.5).compress(tiny_model(rng))
        assert report.compression_rate > 1.0


class TestFilterPruner:
    def test_keep_ratio(self, rng):
        model = tiny_model(rng)
        FilterPruner(0.5).compress(model)
        weight = model[0].weight.data
        alive = int(np.any(weight.reshape(8, -1) != 0, axis=1).sum())
        assert alive == 4

    def test_keeps_largest_l1(self, rng):
        model = tiny_model(rng)
        weight = model[0].weight.data
        weight[0] = 10.0  # dominant filter must survive
        FilterPruner(0.5).compress(model)
        assert (model[0].weight.data[0] != 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FilterPruner(0.0)


class TestQuantizers:
    def test_linear_quantizer_levels(self, rng):
        quantizer = LinearQuantizer(4)
        weight = rng.normal(size=100)
        quantized = quantizer.quantize(weight)
        assert len(np.unique(quantized)) <= 2**4

    def test_linear_preserves_max(self, rng):
        weight = rng.normal(size=50)
        quantized = LinearQuantizer(8).quantize(weight)
        assert abs(np.abs(quantized).max() - np.abs(weight).max()) < 1e-9

    def test_linear_zero_weight(self):
        assert (LinearQuantizer(8).quantize(np.zeros(5)) == 0).all()

    def test_dorefa_binary(self, rng):
        weight = rng.normal(size=100)
        quantized = DoReFaQuantizer(1).quantize(weight)
        assert len(np.unique(np.abs(quantized))) == 1

    def test_dorefa_levels(self, rng):
        weight = rng.normal(size=1000)
        quantized = DoReFaQuantizer(2).quantize(weight)
        assert len(np.unique(quantized)) <= 4

    def test_fp8_validation(self):
        with pytest.raises(ValueError):
            FP8Quantizer(exponent_bits=5, mantissa_bits=3)

    def test_fp8_relative_error_bounded_for_normals(self, rng):
        weight = rng.normal(size=500) * 0.1
        quantized = FP8Quantizer().quantize(weight)
        # Values inside the normal exponent range; subnormals legitimately
        # flush with large relative error, as in real FP8.
        normal = np.abs(weight) >= 2.0**-6
        rel = (np.abs(quantized[normal] - weight[normal])
               / np.abs(weight[normal]))
        # 3 mantissa bits: relative error <= 2^-4 per value.
        assert rel.max() < 0.07

    def test_pow2_values_are_powers(self, rng):
        weight = rng.normal(size=200)
        quantized = Pow2Quantizer(4).quantize(weight)
        nonzero = quantized[quantized != 0]
        logs = np.log2(np.abs(nonzero))
        np.testing.assert_allclose(logs, np.round(logs))

    def test_quantizer_reports(self, rng):
        for compressor, bits in [
            (LinearQuantizer(8), 8),
            (DoReFaQuantizer(2), 2),
            (Pow2Quantizer(4), 4),
        ]:
            model = tiny_model(rng)
            weight_elements = sum(
                m.weight.size for m in model.modules()
                if isinstance(m, (nn.Conv2d, nn.Linear))
            )
            report = compressor.compress(model)
            weight_bits = sum(report.layer_bits.values())
            assert weight_bits == weight_elements * bits


class TestPruneThenQuantize:
    def test_combined_smaller_than_either(self, rng):
        prune_report = MagnitudePruner(0.6).compress(tiny_model(rng))
        quant_report = LinearQuantizer(8).compress(tiny_model(rng))
        combined_report = PruneThenQuantize(
            0.6, LinearQuantizer(8)
        ).compress(tiny_model(rng))
        assert combined_report.compressed_bits < prune_report.compressed_bits
        assert combined_report.compressed_bits < quant_report.compressed_bits

    def test_pruned_positions_stay_zero(self, rng):
        model = tiny_model(rng)
        PruneThenQuantize(0.5, LinearQuantizer(8)).compress(model)
        weight = model[0].weight.data
        assert np.isclose((weight == 0).mean(), 0.5, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PruneThenQuantize(-0.1, LinearQuantizer(8))


class TestReports:
    def test_report_fields(self, rng):
        report = LinearQuantizer(8).compress(tiny_model(rng), "tiny")
        assert report.model_name == "tiny"
        assert report.technique == "linear-int8"
        assert report.original_mb > report.param_mb
        assert report.compression_rate > 1.0

    def test_other_parameters_counted(self, rng):
        model = tiny_model(rng)
        report = LinearQuantizer(8).compress(model)
        assert report.original_elements == model.num_parameters()


class TestServablePayloads:
    """Every compressor emits real, decodable payloads (codec API)."""

    COMPRESSORS = [
        (MagnitudePruner(0.5), "prune-csr"),
        (ChannelPruner(0.5), "prune-csr"),
        (FilterPruner(0.5), "prune-csr"),
        (LinearQuantizer(8), "quant-linear"),
        (DoReFaQuantizer(2), "quant-linear"),
        (FP8Quantizer(), "quant-fp8"),
        (Pow2Quantizer(4), "quant-pow2"),
        (PruneThenQuantize(0.5, LinearQuantizer(8)), "prune-csr"),
    ]

    @pytest.mark.parametrize(
        "compressor,codec_name",
        COMPRESSORS,
        ids=[c.name for c, _ in COMPRESSORS],
    )
    def test_payloads_decode_to_compressed_weights(
        self, rng, compressor, codec_name
    ):
        from repro.codecs import get_codec

        model = tiny_model(rng)
        report = compressor.compress(model, "tiny")
        assert report.codec == codec_name
        modules = dict(model.named_modules())
        assert set(report.payloads) == {
            name
            for name, m in modules.items()
            if isinstance(m, (nn.Conv2d, nn.Linear))
        }
        for layer_name, payload in report.payloads.items():
            assert payload.codec == codec_name
            decoded = get_codec(codec_name).decode(payload)
            installed = modules[layer_name].weight.data
            # The codec stores the snapped weights; only the FP32 cast
            # of prune-csr values is allowed to wiggle.
            np.testing.assert_allclose(
                decoded, installed, rtol=0, atol=1e-6
            )

    def test_payloads_publishable(self, rng, tmp_path):
        from repro.serving import ArtifactStore

        model = tiny_model(rng)
        report = LinearQuantizer(8).compress(model, "tiny")
        store = ArtifactStore(tmp_path / "store")
        manifest = store.publish_compressed(report, model=model)
        assert manifest.codec == "quant-linear"
        assert manifest.payload_bytes < manifest.dense_bytes
