"""Admission policies, the cost-aware batch policy, and their wiring.

Unit-level coverage of the decision logic (synthetic cache views, fake
cost sources) plus integration through a real ``RebuildEngine`` over a
mixed-codec payload map — the scenario the cost model exists for: a
``smartexchange`` miss costs ~10x a ``quant-linear`` miss, so the
cost-aware policy must keep the expensive layers resident.
"""

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.costs import CodecCostModel
from repro.serving import (
    ADMISSION_POLICIES,
    CacheEntryView,
    CostAwareBatchPolicy,
    CostAwarePolicy,
    LRUPolicy,
    RebuildEngine,
    RequestQueue,
    SizeAwarePolicy,
    StaticBatchPolicy,
    make_admission_policy,
)
from repro.serving.artifacts import LayerArtifactSpec


def view(name, nbytes, seconds, codec="c"):
    return CacheEntryView(
        name=name, nbytes=nbytes, codec=codec, rebuild_seconds=seconds
    )


class TestAdmissionPolicies:
    def test_factory_resolves_names_and_instances(self):
        assert set(ADMISSION_POLICIES) == {"lru", "cost-aware", "size-aware"}
        assert isinstance(make_admission_policy(None), LRUPolicy)
        assert isinstance(make_admission_policy("cost-aware"), CostAwarePolicy)
        policy = SizeAwarePolicy()
        assert make_admission_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission_policy("nope")

    def test_lru_evicts_least_recently_used(self):
        policy = LRUPolicy()
        resident = [view("old", 10, 1.0), view("new", 10, 1.0)]
        assert policy.admit(view("x", 10, 1.0), resident, 0)
        assert policy.victim(view("x", 10, 1.0), resident) == "old"

    def test_size_aware_evicts_largest(self):
        policy = SizeAwarePolicy()
        resident = [view("small", 10, 1.0), view("big", 100, 1.0)]
        assert policy.victim(view("x", 10, 1.0), resident) == "big"
        # Ties break toward the least recently used.
        resident = [view("older", 50, 1.0), view("newer", 50, 1.0)]
        assert policy.victim(view("x", 10, 1.0), resident) == "older"

    def test_cost_aware_evicts_cheapest_density_first(self):
        policy = CostAwarePolicy()
        resident = [
            view("expensive", 100, 1.0),  # 10 ms/byte
            view("cheap", 100, 0.001),  # 10 us/byte
        ]
        assert policy.victim(view("x", 10, 1.0), resident) == "cheap"

    def test_cost_aware_admits_when_room_exists(self):
        policy = CostAwarePolicy()
        assert policy.admit(view("x", 10, 0.001), [], free_bytes=10)

    def test_cost_aware_rejects_displacing_more_valuable_bytes(self):
        policy = CostAwarePolicy()
        resident = [view("expensive", 100, 1.0)]
        # Candidate is cheaper per byte than everything it would evict.
        assert not policy.admit(view("cheap", 50, 0.0001), resident, 0)
        # Candidate denser than the bytes it displaces: admitted.
        assert policy.admit(view("denser", 50, 1.0), resident, 0)

    def test_cost_aware_rejects_when_cheap_residents_cannot_free_enough(self):
        policy = CostAwarePolicy()
        resident = [view("cheap", 10, 0.0001), view("expensive", 100, 1.0)]
        # Needs 50 bytes; only 10 can come from cheaper entries.
        candidate = view("mid", 50, 0.005)
        assert not policy.admit(candidate, resident, free_bytes=0)


class TestCostAwareBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CostAwareBatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            CostAwareBatchPolicy(max_wait_s=-1.0)

    def test_unbound_behaves_like_static(self):
        policy = CostAwareBatchPolicy(max_batch_size=8, max_wait_s=0.02)
        assert policy.expected_batch_seconds() is None
        assert policy.wait_budget(1) == 0.02
        assert policy.wait_budget(7) == 0.02

    def test_budget_amortizes_fixed_cost_over_pending(self):
        policy = CostAwareBatchPolicy(max_batch_size=8, max_wait_s=10.0)
        policy.bind_costs(lambda: 0.1)
        assert policy.wait_budget(1) == pytest.approx(0.1)
        assert policy.wait_budget(4) == pytest.approx(0.025)
        # The cap still applies.
        policy = CostAwareBatchPolicy(max_batch_size=8, max_wait_s=0.01)
        policy.bind_costs(lambda: 5.0)
        assert policy.wait_budget(1) == 0.01

    def test_warm_cache_closes_immediately(self):
        policy = CostAwareBatchPolicy(max_batch_size=8, max_wait_s=0.5)
        policy.bind_costs(lambda: 0.0)
        assert policy.wait_budget(1) == 0.0

    def test_rebinding_to_another_source_refused(self):
        policy = CostAwareBatchPolicy()
        first, second = (lambda: 0.1), (lambda: 0.2)
        policy.bind_costs(first)
        policy.bind_costs(first)  # idempotent re-bind is fine
        with pytest.raises(ValueError, match="already bound"):
            policy.bind_costs(second)

    def test_binds_rebuild_engine_estimator(self):
        class FakeRebuild:
            def estimated_install_seconds(self):
                return 0.25

        policy = CostAwareBatchPolicy(max_wait_s=10.0)
        policy.bind_costs(FakeRebuild())
        assert policy.expected_batch_seconds() == pytest.approx(0.25)

    def test_queue_closes_batches_fast_when_cost_is_zero(self):
        policy = CostAwareBatchPolicy(max_batch_size=8, max_wait_s=0.5)
        policy.bind_costs(lambda: 0.0)
        queue = RequestQueue(policy)
        for i in range(3):
            queue.submit(np.full(2, float(i)))
        # Zero budget: the batch closes with whatever is pending
        # instead of waiting out max_wait_s.
        batch = queue.next_batch()
        assert 1 <= len(batch) <= 3

    def test_queue_coalesces_under_expensive_cost(self):
        policy = CostAwareBatchPolicy(max_batch_size=3, max_wait_s=0.05)
        policy.bind_costs(lambda: 10.0)  # always worth waiting
        queue = RequestQueue(policy)
        for i in range(3):
            queue.submit(np.full(2, float(i)))
        assert len(queue.next_batch()) == 3


# ----------------------------------------------------------------------
# Integration: a real RebuildEngine over a mixed-codec payload map
# ----------------------------------------------------------------------
def mixed_engine(policy, capacity_bytes, cost_model=None, layers=None):
    """RebuildEngine over synthetic fc payloads with per-layer codecs."""
    rng = np.random.default_rng(0)
    layers = layers or [
        ("se0", (24, 24), "smartexchange"),
        ("se1", (16, 16), "smartexchange"),
        ("ql0", (16, 16), "quant-linear"),
        ("ql1", (8, 8), "quant-linear"),
    ]
    payloads, specs = {}, {}
    for name, shape, codec in layers:
        weight = rng.normal(size=shape)
        payloads[name] = get_codec(codec).encode(weight)
        specs[name] = LayerArtifactSpec(
            name=name, kind="fc", weight_shape=shape, codec=codec
        )
    return RebuildEngine(
        payloads=payloads,
        specs=specs,
        capacity_bytes=capacity_bytes,
        policy=policy,
        cost_model=cost_model,
    )


class TestRebuildEngineWithPolicies:
    def test_stats_carry_policy_name(self):
        for name in ADMISSION_POLICIES:
            engine = mixed_engine(name, capacity_bytes=None)
            assert engine.policy.name == name
            assert engine.stats.policy == name
            assert engine.stats.as_dict()["policy"] == name

    def test_cost_requiring_policy_calibrates_upfront(self):
        model = CodecCostModel()
        engine = mixed_engine("cost-aware", None, cost_model=model)
        assert model.calibrated("smartexchange")
        assert model.calibrated("quant-linear")
        estimates = engine.layer_cost_estimates()
        assert set(estimates) == {"se0", "se1", "ql0", "ql1"}
        assert all(value > 0 for value in estimates.values())

    def test_lru_policy_does_not_calibrate(self):
        model = CodecCostModel()
        mixed_engine("lru", None, cost_model=model)
        assert not model.calibrated("smartexchange")

    def test_rebuilds_feed_the_cost_model(self):
        model = CodecCostModel()
        engine = mixed_engine("lru", None, cost_model=model)
        engine.warm()
        assert model.observations("smartexchange") == 2
        assert model.observations("quant-linear") == 2

    def test_cost_aware_keeps_expensive_layers_resident(self):
        # float64 resident bytes: se0 4608, se1 2048, ql0 2048, ql1 512.
        # Room for everything except one quant-linear layer.  Rates are
        # seeded and learning frozen so the admission decisions under
        # test are deterministic — with live per-(codec, layer) EWMAs
        # the two quant-linear layers' measured rates differ and the
        # knapsack may legitimately swap them once (covered by the
        # install-estimate tests below).
        capacity = 4608 + 2048 + 2048 + 512 - 512
        model = CodecCostModel()
        model.seed("smartexchange", 1e-5)
        model.seed("quant-linear", 1e-7)
        model.observe = lambda *args, **kwargs: 0.0
        engine = mixed_engine(
            "cost-aware", capacity_bytes=capacity, cost_model=model
        )
        for _ in range(4):
            for name in engine.layer_names:
                engine.layer_weight(name)
        cached = set(engine.cached_layers)
        assert {"se0", "se1"} <= cached  # expensive layers pinned
        assert engine.cached_bytes <= capacity
        # The cheap layer that does not fit keeps getting rejected, not
        # evicted-and-readmitted.
        assert engine.stats.evictions == 0
        assert engine.stats.rejected > 0

    def test_policies_preserve_decode_correctness(self):
        baseline = mixed_engine("lru", None)
        reference = {
            name: baseline.layer_weight(name).copy()
            for name in baseline.layer_names
        }
        for name in ADMISSION_POLICIES:
            engine = mixed_engine(name, capacity_bytes=2048)
            for _ in range(2):
                for layer in engine.layer_names:
                    np.testing.assert_array_equal(
                        engine.layer_weight(layer), reference[layer]
                    )

    def test_estimated_install_seconds_shrinks_as_cache_fills(self):
        engine = mixed_engine("cost-aware", capacity_bytes=None)
        cold = engine.estimated_install_seconds()
        assert cold > 0
        engine.warm()
        assert engine.estimated_install_seconds() == 0.0

    def test_warmed_engine_estimates_below_all_miss_ceiling(self):
        """Probabilistic install costs are observable: a warmed engine
        whose working set fits must price strictly below the certain-
        all-miss ceiling."""
        engine = mixed_engine("cost-aware", capacity_bytes=None)
        engine.warm()
        ceiling = engine.all_miss_install_seconds()
        assert ceiling > 0
        assert engine.estimated_install_seconds() < ceiling

    def test_uncached_layer_discounted_by_observed_hit_rate(self):
        """A layer with history of hitting is not priced as a certain
        miss once it falls out of the cache."""
        engine = mixed_engine("lru", capacity_bytes=None)
        name = engine.layer_names[0]
        # 1 miss + 9 hits: the decayed (EWMA) hit rate is well above 0.
        for _ in range(10):
            engine.layer_weight(name)
        hit_rate = engine.stats.layer_hit_rate(name)
        assert 0.0 < hit_rate < 1.0
        certain_miss = engine._estimate_seconds(name)
        assert certain_miss > 0
        engine.clear()  # drop residency, keep the hit history
        estimate = engine.estimated_install_seconds()
        contributions = {
            layer: engine._estimate_seconds(layer)
            for layer in engine.layer_names
        }
        all_miss_pending = sum(contributions.values())
        # The touched layer contributes only (1 - hit_rate) of its
        # cost; the untouched layers still price as certain misses.
        expected = all_miss_pending - hit_rate * certain_miss
        assert estimate == pytest.approx(expected, rel=1e-6)
        assert estimate < all_miss_pending

    def test_install_estimates_use_per_layer_rates(self):
        """Two same-codec layers with different observed decode rates
        must estimate differently — the (codec, layer) EWMA at work."""
        model = CodecCostModel(alpha=1.0)
        engine = mixed_engine("lru", capacity_bytes=None, cost_model=model)
        # Same codec, wildly different observed rates per layer.
        model.observe("quant-linear", 1000, 1000 * 1e-7, layer="ql0")
        model.observe("quant-linear", 1000, 1000 * 1e-4, layer="ql1")
        estimates = engine.layer_cost_estimates()
        # ql0 is the bigger layer (16x16 vs 8x8) yet estimates cheaper:
        # only a per-layer rate can produce that inversion.
        assert estimates["ql0"] < estimates["ql1"]

    def test_trade_curve_sampled_per_rebuild(self):
        engine = mixed_engine("lru", capacity_bytes=None)
        engine.warm()
        assert len(engine.stats.curve) == len(engine.layer_names)
        accesses, cached, seconds = engine.stats.curve[-1]
        assert accesses == len(engine.layer_names)
        assert cached == engine.cached_bytes
        assert seconds == pytest.approx(engine.stats.rebuild_seconds)

    def test_reset_stats_keeps_cache_contents(self):
        engine = mixed_engine("lru", capacity_bytes=None)
        engine.warm()
        cached = engine.cached_layers
        engine.reset_stats()
        assert engine.stats.accesses == 0
        assert engine.stats.curve == []
        assert engine.stats.policy == "lru"
        assert engine.cached_layers == cached
        engine.layer_weight(engine.layer_names[0])
        assert engine.stats.hits == 1  # still warm

    def test_bytes_saved_consistent_under_lock(self):
        engine = mixed_engine("lru", capacity_bytes=None)
        engine.warm()
        assert engine.bytes_saved == 0
        assert engine.total_dense_bytes == engine.cached_bytes
