"""Proximal SmartExchange regularization (the paper's future work).

Section III-C closes with: "More analytic solutions will be explored in
future work, e.g., incorporating SmartExchange algorithm as a
regularization term [48]".  This module implements that idea as a
proximal penalty: during re-training, every compressed layer's weight is
pulled toward its current SmartExchange reconstruction

    L_total = L_task + (strength / 2) * sum_l ||W_l - rebuild(W_l)||_F^2

so the weights stay near the feasible {Ce, B} manifold *between*
projections instead of drifting freely for a whole epoch.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.core.layer_transform import rebuild_conv_weight
from repro.core.model_transform import SmartExchangeModel


def projection_targets(se_model: SmartExchangeModel) -> Dict[str, np.ndarray]:
    """Rebuilt weights per compressed layer name (the proximal anchors)."""
    targets: Dict[str, np.ndarray] = {}
    for layer in se_model.report.layers:
        if layer.kind == "fc":
            targets[layer.name] = layer.rebuild_weight()
        else:
            targets[layer.name] = rebuild_conv_weight(layer)
    return targets


def smartexchange_distance(se_model: SmartExchangeModel) -> float:
    """Frobenius distance of the live weights from the SE manifold.

    Zero right after a projection; grows during unconstrained training.
    """
    modules = dict(se_model.model.named_modules())
    total = 0.0
    for name, target in projection_targets(se_model).items():
        module = modules[name]
        total += float(np.linalg.norm(module.weight.data - target) ** 2)
    return float(np.sqrt(total))


def apply_proximal_gradient(
    se_model: SmartExchangeModel,
    targets: Dict[str, np.ndarray],
    strength: float,
) -> None:
    """Add ``strength * (W - target)`` to each compressed layer's gradient.

    Call after ``loss.backward()`` and before ``optimizer.step()``.
    """
    if strength < 0:
        raise ValueError("strength must be >= 0")
    if strength == 0:
        return
    modules = dict(se_model.model.named_modules())
    for name, target in targets.items():
        module = modules[name]
        penalty_grad = strength * (module.weight.data - target)
        if module.weight.grad is None:
            module.weight.grad = penalty_grad
        else:
            module.weight.grad = module.weight.grad + penalty_grad


def proximal_train_epoch(
    se_model: SmartExchangeModel,
    images: np.ndarray,
    labels: np.ndarray,
    optimizer,
    strength: float,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """One epoch of task loss + proximal SmartExchange penalty.

    Returns the mean task loss.  The proximal anchors are the rebuilt
    weights of the most recent projection.
    """
    from repro.nn.train import iterate_minibatches

    targets = projection_targets(se_model)
    se_model.model.train()
    losses = []
    for batch_x, batch_y in iterate_minibatches(images, labels, batch_size, rng):
        optimizer.zero_grad()
        logits = se_model.model(nn.Tensor(batch_x))
        loss = nn.cross_entropy(logits, batch_y)
        loss.backward()
        apply_proximal_gradient(se_model, targets, strength)
        optimizer.step()
        losses.append(loss.item())
    return float(np.mean(losses))
