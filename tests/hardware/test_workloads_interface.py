"""Tests for workload building, residency marking, and the SW/HW interface."""

import numpy as np
import pytest

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.hardware import (
    LayerKind,
    LayerSparsity,
    build_workloads,
    compile_workloads,
    parse_model,
)
from repro.hardware.workloads import (
    BENCHMARK_SUITE,
    MODEL_PROFILES,
    ModelSparsityProfile,
    mark_onchip_residency,
)


class TestProfiles:
    def test_all_benchmark_models_have_profiles(self):
        for model, _dataset in BENCHMARK_SUITE:
            assert model in MODEL_PROFILES

    def test_compact_models_have_zero_weight_sparsity(self):
        # Paper Table III: MBV2/EffB0 compress without sparsity.
        assert MODEL_PROFILES["mobilenetv2"].conv_weight_vector == 0.0
        assert MODEL_PROFILES["efficientnet_b0"].conv_weight_vector == 0.0

    def test_profile_layer_sparsity_selects_by_kind(self):
        profile = ModelSparsityProfile(0.5, 0.9, 0.8, 0.7)
        conv = build_workloads("vgg19", profile=profile)[0]
        assert conv.sparsity.weight_vector == 0.5
        fc = build_workloads("vgg19", profile=profile, include_fc=True)[-1]
        assert fc.spec.kind == LayerKind.FC
        assert fc.sparsity.weight_vector == 0.9

    def test_weight_element_capped(self):
        profile = ModelSparsityProfile(0.93, 0.93, 0.8, 0.7)
        spec = build_workloads("vgg19", profile=profile)[0].spec
        assert profile.weight_element(spec) <= 0.95


class TestBuildWorkloads:
    def test_fc_excluded_by_default(self):
        workloads = build_workloads("vgg19")
        assert all(w.spec.kind != LayerKind.FC for w in workloads)

    def test_fc_included_on_request(self):
        workloads = build_workloads("vgg19", include_fc=True)
        assert any(w.spec.kind == LayerKind.FC for w in workloads)

    def test_squeeze_excite_kept_without_fc(self):
        workloads = build_workloads("efficientnet_b0")
        assert any(w.spec.kind == LayerKind.SQUEEZE_EXCITE for w in workloads)

    def test_override_pins_sparsity(self):
        workloads = build_workloads("resnet50", weight_vector_override=0.6)
        assert all(w.sparsity.weight_vector == 0.6 for w in workloads)

    def test_storage_bits_attached(self):
        workloads = build_workloads("resnet50")
        assert all(w.se_storage_bits and w.se_storage_bits > 0
                   for w in workloads)

    def test_batch_propagates(self):
        workloads = build_workloads("vgg19", batch=4)
        assert all(w.batch == 4 for w in workloads)


class TestResidency:
    def test_small_activations_marked_onchip(self):
        workloads = build_workloads("resnet164")
        # CIFAR-scale feature maps fit on chip for nearly every layer.
        onchip = sum(1 for w in workloads if w.input_onchip)
        assert onchip > 0.8 * len(workloads)

    def test_first_input_and_last_output_offchip(self):
        workloads = build_workloads("resnet164")
        assert not workloads[0].input_onchip
        assert not workloads[-1].output_onchip

    def test_large_activations_stay_offchip(self):
        workloads = build_workloads("vgg11")
        first_convs = workloads[:3]  # 224x224 maps exceed half the GB
        assert all(not w.input_onchip for w in first_convs)

    def test_producer_consumer_flags_paired(self):
        workloads = build_workloads("vgg19")
        for producer, consumer in zip(workloads, workloads[1:]):
            assert producer.output_onchip == consumer.input_onchip

    def test_empty_list_ok(self):
        assert mark_onchip_residency([]) == []


class TestInterface:
    def _tiny_model(self):
        rng = np.random.default_rng(0)
        return nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(8, 4, rng=rng),
        )

    def test_parse_model_finds_layers(self):
        specs = parse_model(self._tiny_model(), (1, 3, 16, 16))
        assert len(specs) == 2
        assert specs[0].kind == LayerKind.CONV
        assert specs[1].kind == LayerKind.FC
        assert specs[0].in_h == 16

    def test_compile_without_report_is_dense(self):
        specs = parse_model(self._tiny_model(), (1, 3, 16, 16))
        program = compile_workloads(specs, model_name="tiny")
        assert len(program.instructions) == 2
        assert all(w.sparsity.weight_vector == 0.0 for w in program.workloads)

    def test_compile_uses_measured_report(self):
        model = self._tiny_model()
        config = SmartExchangeConfig(max_iterations=3, target_row_sparsity=0.5)
        _, report = apply_smartexchange(model, config)
        specs = parse_model(model, (1, 3, 16, 16))
        program = compile_workloads(specs, report=report)
        conv = program.workloads[0]
        assert conv.sparsity.weight_vector > 0.3
        assert conv.se_storage_bits == report.layers[0].storage.total_bits

    def test_compile_attaches_activation_sparsity(self):
        specs = parse_model(self._tiny_model(), (1, 3, 16, 16))
        acts = {specs[0].name: LayerSparsity(act_bit=0.8, act_booth=0.7)}
        program = compile_workloads(specs, activation_sparsity=acts)
        assert program.workloads[0].sparsity.act_booth == 0.7

    def test_dataflow_choices(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(8, 8, 3, padding=1, groups=8, bias=False, rng=rng),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(8, 4, rng=rng),
        )
        specs = parse_model(model, (1, 8, 8, 8))
        program = compile_workloads(specs)
        flows = [i.dataflow for i in program.instructions]
        assert flows == ["depthwise-rows", "fc-cluster"]

    def test_simulatable_end_to_end(self):
        from repro.hardware import SmartExchangeAccelerator
        model = self._tiny_model()
        config = SmartExchangeConfig(max_iterations=3)
        _, report = apply_smartexchange(model, config)
        specs = parse_model(model, (1, 3, 16, 16))
        program = compile_workloads(specs, report=report, model_name="tiny")
        result = SmartExchangeAccelerator().simulate_model(
            program.workloads, "tiny"
        )
        assert result.total_energy_pj > 0
