"""One harness per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> ExperimentResult``; the benches in
``benchmarks/`` time these harnesses and print the regenerated tables.
"""

from repro.experiments import (
    ablation_algorithm,
    ablation_array_shape,
    ablation_components,
    batch_sensitivity,
    fig4_bit_sparsity,
    fig8_accuracy_size,
    fig9_evolution,
    fig10_energy_efficiency,
    fig11_dram_accesses,
    fig12_speedup,
    fig13_breakdown,
    fig14_sparsity_sweep,
    fig15_compact_ablation,
    index_overhead,
    posthoc_vgg19,
    table1_energy,
    table2_retraining,
    table3_compact,
    table5_resources,
)
from repro.experiments.common import (
    ExperimentResult,
    TrainedModel,
    ci_dataset,
    ci_model,
    fresh_ci_model,
    geometric_mean,
)

ALL_EXPERIMENTS = {
    "table1": table1_energy,
    "fig4": fig4_bit_sparsity,
    "fig8": fig8_accuracy_size,
    "fig9": fig9_evolution,
    "table2": table2_retraining,
    "table3": table3_compact,
    "table5": table5_resources,
    "fig10": fig10_energy_efficiency,
    "fig11": fig11_dram_accesses,
    "fig12": fig12_speedup,
    "fig13": fig13_breakdown,
    "fig14": fig14_sparsity_sweep,
    "fig15": fig15_compact_ablation,
    "ablation": ablation_components,
    "ablation-alg": ablation_algorithm,
    "ablation-array": ablation_array_shape,
    "batch": batch_sensitivity,
    "index": index_overhead,
    "posthoc": posthoc_vgg19,
}

__all__ = [
    "ExperimentResult",
    "TrainedModel",
    "ci_dataset",
    "ci_model",
    "fresh_ci_model",
    "geometric_mean",
    "ALL_EXPERIMENTS",
]
