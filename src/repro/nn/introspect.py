"""Model introspection: capturing intermediate activations.

Used by the Fig. 4 experiment (activation bit-level sparsity) and by the
hardware interface when it derives measured activation sparsities.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

import numpy as np

from repro.nn.activation import ReLU, ReLU6, SiLU
from repro.nn.module import Module
from repro.nn.tensor import Tensor

DEFAULT_ACTIVATION_KINDS: Tuple[Type[Module], ...] = (ReLU, ReLU6, SiLU)


def collect_activations(
    model: Module,
    images: np.ndarray,
    kinds: Tuple[Type[Module], ...] = DEFAULT_ACTIVATION_KINDS,
) -> Dict[str, np.ndarray]:
    """Run ``model`` on ``images`` and capture each activation output.

    Returns a mapping from module name to the activation array.  Capture
    is implemented by temporarily wrapping the ``forward`` of every
    matching module instance.
    """
    captured: Dict[str, np.ndarray] = {}
    wrapped_modules: List[Module] = []

    def make_wrapper(name: str, original):
        def wrapped(x: Tensor) -> Tensor:
            out = original(x)
            captured[name] = out.numpy()
            return out

        return wrapped

    try:
        for name, module in model.named_modules():
            if isinstance(module, kinds):
                original = module.forward
                object.__setattr__(module, "forward", make_wrapper(name, original))
                wrapped_modules.append(module)
        model.eval()
        model(Tensor(images))
    finally:
        for module in wrapped_modules:
            # Drop the instance attribute so the class method resumes.
            object.__delattr__(module, "forward")
    return captured
