"""Sparsity measurements at every granularity the paper uses.

- *element* sparsity: fraction of zero scalars (unstructured pruning).
- *vector* sparsity: fraction of all-zero rows — the SmartExchange
  structure (a zero row of ``Ce`` means a zero weight vector, letting the
  accelerator skip the matching activation row, Fig. 3).
- *channel* sparsity: fraction of all-zero channels (Network-Slimming
  style structured pruning).
- *bit* sparsity: fraction of zero bits in the fixed-point representation
  of activations (what Bit-pragmatic and the SE bit-serial MACs exploit,
  Fig. 4).
"""

from __future__ import annotations

import numpy as np


def element_sparsity(values: np.ndarray) -> float:
    """Fraction of exactly-zero elements."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(values == 0) / values.size)


def vector_sparsity(matrix: np.ndarray, axis: int = 1) -> float:
    """Fraction of all-zero vectors along ``axis``.

    With the default ``axis=1`` a "vector" is a row, matching the paper's
    row-of-``Ce`` granularity.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim < 2:
        raise ValueError("vector sparsity needs a >=2-D array")
    if matrix.size == 0:
        return 0.0
    nonzero = np.any(matrix != 0, axis=axis)
    return float(1.0 - nonzero.mean())


def channel_sparsity(weight: np.ndarray) -> float:
    """Fraction of all-zero input channels of a conv weight (M, C, R, S)."""
    weight = np.asarray(weight)
    if weight.ndim != 4:
        raise ValueError(f"expected a 4-D conv weight, got {weight.ndim}-D")
    if weight.size == 0:
        return 0.0
    channel_alive = np.any(weight != 0, axis=(0, 2, 3))
    return float(1.0 - channel_alive.mean())


def quantize_to_fixed(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Symmetric linear quantization to signed ``bits``-bit integers.

    Used to model the 8-bit activations of every accelerator in the
    evaluation: the integer codes are what bit-level sparsity is measured
    over.
    """
    if bits < 2:
        raise ValueError("need at least 2 bits for signed quantization")
    values = np.asarray(values, dtype=np.float64)
    max_abs = np.abs(values).max() if values.size else 0.0
    if max_abs == 0.0:
        return np.zeros(values.shape, dtype=np.int64)
    qmax = 2 ** (bits - 1) - 1
    scaled = np.round(values / max_abs * qmax)
    return np.clip(scaled, -qmax - 1, qmax).astype(np.int64)


def bit_sparsity(values: np.ndarray, bits: int = 8) -> float:
    """Fraction of zero bits over the magnitude bits of integer codes.

    Matches the Bit-pragmatic notion: the multiplier processes magnitude
    bit-planes, so the measure is over ``bits - 1`` magnitude bits of the
    absolute value of each code (sign handled separately).
    """
    codes = np.asarray(values)
    if not np.issubdtype(codes.dtype, np.integer):
        codes = quantize_to_fixed(codes, bits)
    if codes.size == 0:
        return 1.0
    magnitude_bits = bits - 1
    mags = np.abs(codes).astype(np.uint64)
    total_ones = 0
    for plane in range(magnitude_bits):
        total_ones += int(((mags >> plane) & 1).sum())
    total_bits = codes.size * magnitude_bits
    return float(1.0 - total_ones / total_bits)
