"""Conforming metrics, including the ``PREFIX`` f-string idiom the
stats classes use and the documented ``Counter.set`` reset departure.
Zero findings."""


class WorkerSliceStats:
    PREFIX = "repro_serving_worker"

    def __init__(self, registry, worker):
        prefix = self.PREFIX
        tags = {"worker": str(worker)}
        self.batches = registry.counter(
            f"{prefix}_batches_total", "batches completed", tags=tags
        )
        self.busy = registry.counter(
            f"{prefix}_busy_seconds_total", "busy seconds", tags=tags
        )
        self.depth = registry.gauge(
            f"{prefix}_queue_depth", "queued requests", tags=tags
        )

    def reset(self):
        self.batches.set(0)
        self.busy.set(0)
