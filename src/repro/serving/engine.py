"""Batched inference directly from compressed artifacts.

:class:`InferenceEngine` owns one architecture skeleton (an
``nn.Module`` with the right shapes), one
:class:`~repro.serving.registry.CompressedModelHandle`, and one
:class:`~repro.serving.rebuild.RebuildEngine`.  Before every forward
pass it *installs* each compressed layer's weight from the rebuild
cache — so the dense model only ever exists layer-by-layer, bounded by
the cache capacity, while the full network state lives in the small
{B, Ce, index} payloads.

Two serving paths share the same execution core:

- **offline** — :meth:`predict` / :meth:`predict_many` run (coalesced)
  batches synchronously; this is what the benchmarks drive.
- **online** — :meth:`start` launches a worker thread that drains a
  :class:`~repro.serving.batching.RequestQueue`; :meth:`submit` returns
  a ticket that resolves to that sample's output row.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.serving.batching import (
    BatchPolicy,
    QueueClosed,
    Request,
    RequestQueue,
    Ticket,
    coalesce,
    stack_batch,
)
from repro.serving.rebuild import RebuildEngine
from repro.serving.registry import CompressedModelHandle
from repro.serving.stats import ServingStats


class ServingError(Exception):
    """Engine-level configuration or execution failure."""


class InferenceEngine:
    """Serve predictions for one model version from its bundle."""

    def __init__(
        self,
        model: nn.Module,
        handle: CompressedModelHandle,
        policy: Optional[BatchPolicy] = None,
        cache_bytes: Optional[int] = None,
    ) -> None:
        self.model = model
        self.handle = handle
        self.policy = policy or BatchPolicy()
        self.stats = ServingStats()
        self.rebuild = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=cache_bytes,
        )
        self._modules = self._map_modules()
        if handle.residual is not None:
            model.load_state_dict(handle.residual, strict=False)
        model.eval()
        # Serializes install-weights + forward between the offline path
        # and the online worker thread (they share one model skeleton
        # and one rebuild cache).
        self._forward_lock = threading.Lock()
        self._queue: Optional[RequestQueue] = None
        self._worker: Optional[threading.Thread] = None
        self._worker_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Layer mapping / weight installation
    # ------------------------------------------------------------------
    def _map_modules(self) -> Dict[str, nn.Module]:
        modules = dict(self.model.named_modules())
        mapped: Dict[str, nn.Module] = {}
        for name, spec in self.handle.layer_specs.items():
            module = modules.get(name)
            if module is None:
                raise ServingError(
                    f"model has no module {name!r} for bundle "
                    f"{self.handle.key}"
                )
            weight = getattr(module, "weight", None)
            if weight is None or tuple(weight.data.shape) != spec.weight_shape:
                raise ServingError(
                    f"module {name!r} weight shape "
                    f"{None if weight is None else weight.data.shape} does "
                    f"not match bundle layer shape {spec.weight_shape}"
                )
            mapped[name] = module
        return mapped

    def _install_weights(self) -> None:
        """Pull every compressed layer through the rebuild cache."""
        for name, module in self._modules.items():
            module.weight.data[...] = self.rebuild.layer_weight(name)

    # ------------------------------------------------------------------
    # Offline path
    # ------------------------------------------------------------------
    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Run one already-formed batch; returns the output ndarray."""
        batch = np.asarray(batch)
        start = time.perf_counter()
        with self._forward_lock:
            self._install_weights()
            output = self.model(batch)
            result = output.data if isinstance(output, nn.Tensor) else output
        latency = time.perf_counter() - start
        self.stats.record_batch(len(batch), latency)
        for _ in range(len(batch)):
            self.stats.record_request(latency)
        return np.asarray(result)

    def predict_many(
        self, inputs: Sequence[np.ndarray], batched: bool = True
    ) -> List[np.ndarray]:
        """Serve many single-sample requests, optionally coalesced.

        ``batched=False`` runs one forward pass per sample (the
        unbatched baseline); ``batched=True`` groups them under the
        engine's policy.  Returns one output row per input, in order.
        """
        max_batch = self.policy.max_batch_size if batched else 1
        outputs: List[np.ndarray] = []
        for group in coalesce(list(inputs), max_batch):
            rows = self.predict(np.stack(group, axis=0))
            outputs.extend(np.asarray(row) for row in rows)
        return outputs

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def start(self) -> "InferenceEngine":
        """Launch the background batching worker."""
        if self._worker is not None:
            raise ServingError("engine already started")
        self._queue = RequestQueue(self.policy)
        self._worker_error = None
        self._worker = threading.Thread(
            target=self._serve_loop,
            args=(self._queue,),
            name="repro-serving-worker",
            daemon=True,
        )
        self._worker.start()
        return self

    def submit(self, sample: np.ndarray) -> Ticket:
        """Enqueue one sample (no batch axis); returns its ticket."""
        if self._queue is None:
            raise ServingError("engine not started; call start() first")
        if self._worker_error is not None:
            raise ServingError("worker died") from self._worker_error
        return self._queue.submit(sample)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the queue, stop the worker, and surface its errors."""
        if self._queue is None:
            return
        self._queue.close()
        worker, self._worker = self._worker, None
        self._queue = None  # engine stays restartable even on timeout
        if worker is not None:
            worker.join(timeout)
            if worker.is_alive():
                raise ServingError("worker did not stop in time")
        if self._worker_error is not None:
            raise ServingError("worker died") from self._worker_error

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _serve_loop(self, queue: RequestQueue) -> None:
        try:
            while True:
                try:
                    requests = queue.next_batch()
                except QueueClosed:
                    return
                if not requests:
                    continue
                self._run_requests(requests)
        except BaseException as error:  # pragma: no cover - defensive
            self._worker_error = error
            self._fail_pending(queue, error)

    def _run_requests(self, requests: List[Request]) -> None:
        start = time.perf_counter()
        try:
            batch = stack_batch(requests)
            with self._forward_lock:
                self._install_weights()
                output = self.model(batch)
                result = (
                    output.data if isinstance(output, nn.Tensor) else output
                )
        except Exception as error:
            # A bad batch (e.g. malformed sample shape) fails its own
            # tickets; the worker keeps serving subsequent requests.
            for request in requests:
                request.ticket.set_error(error)
            self.stats.record_failed(len(requests))
            return
        finish = time.perf_counter()
        self.stats.record_batch(len(requests), finish - start)
        rows = np.asarray(result)
        for request, row in zip(requests, rows):
            self.stats.record_request(finish - request.enqueued_at)
            request.ticket.set_result(np.asarray(row))

    def _fail_pending(
        self, queue: RequestQueue, error: BaseException
    ) -> None:
        queue.close()
        try:
            while True:
                requests = queue.next_batch(timeout=0.0)
                if not requests:
                    return
                for request in requests:
                    request.ticket.set_error(error)
        except QueueClosed:
            pass

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Serving + rebuild-cache + storage-trade counters, one dict."""
        return self.stats.summary(
            rebuild=self.rebuild.stats, manifest=self.handle.manifest
        )

    def report(self) -> str:
        return self.stats.report(
            rebuild=self.rebuild.stats, manifest=self.handle.manifest
        )
