"""Process-backed serving: parity, crash recovery, wire format, lifecycle.

The acceptance bar for the process backend: ``backend="process"`` is a
drop-in for the thread pool — bit-identical outputs across every codec
in the registry — a ``kill -9`` mid-batch fails only the in-flight
tickets and the pool respawns, every wire envelope survives pickling
(the spawn start method depends on it), and no run leaves a
``/dev/shm`` segment behind.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.compression import (
    FP8Quantizer,
    LinearQuantizer,
    MagnitudePruner,
    Pow2Quantizer,
)
from repro.core import apply_smartexchange
from repro.observability import ReplayRequest
from repro.serving import (
    ArtifactStore,
    InferenceEngine,
    ModelRegistry,
    ProcessWorkerError,
    StaticBatchPolicy,
)
from repro.serving.arena import shm_segments
from repro.serving.procpool import (
    START_METHOD_ENV,
    BatchEnvelope,
    BatchResult,
    WorkerHello,
    WorkerSpec,
)

from tests.serving.conftest import FAST, build_model


@pytest.fixture
def handle(published):
    store, manifest, *_ = published
    return ModelRegistry(store).get(manifest.name)


def make_engine(handle, **policy) -> InferenceEngine:
    policy.setdefault("max_batch_size", 4)
    policy.setdefault("max_wait_s", 0.2)
    return InferenceEngine(
        build_model(seed=123), handle, policy=StaticBatchPolicy(**policy)
    )


def serve_all(engine, samples, workers, backend="thread", **start):
    engine.start(workers=workers, backend=backend, **start)
    try:
        tickets = [engine.submit(sample) for sample in samples]
        return [ticket.result(timeout=60.0) for ticket in tickets]
    finally:
        engine.stop()


class TestProcessServing:
    def test_serves_and_reports_backend(self, handle, rng):
        inputs = list(rng.normal(size=(8, 3, 8, 8)))
        engine = make_engine(handle)
        engine.start(workers=2, backend="process")
        try:
            assert engine.backend == "process"
            assert len(engine.worker_pids()) == 2
            tickets = [engine.submit(sample) for sample in inputs]
            rows = [ticket.result(timeout=60.0) for ticket in tickets]
            summary = engine.summary()
        finally:
            engine.stop()
        assert len(rows) == len(inputs)
        assert summary["backend"] == "process"
        assert summary["worker_respawns"] == 0
        assert summary["requests"] == len(inputs)
        # Children's cache counters folded into the parent's totals.
        assert summary["rebuild_rebuilds"] > 0
        assert shm_segments() == ()

    def test_matches_thread_backend_bit_for_bit(self, handle, rng):
        # Pin batch composition (inputs divide the batch size, generous
        # wait) so both pools execute the identical batches.
        inputs = list(rng.normal(size=(16, 3, 8, 8)))
        threaded = serve_all(make_engine(handle), inputs, workers=1)
        processed = serve_all(
            make_engine(handle), inputs, workers=2, backend="process"
        )
        np.testing.assert_array_equal(
            np.stack(processed), np.stack(threaded)
        )

    def test_spawn_start_method(self, handle, rng, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        inputs = list(rng.normal(size=(4, 3, 8, 8)))
        rows = serve_all(
            make_engine(handle), inputs, workers=1, backend="process"
        )
        assert len(rows) == len(inputs)
        assert shm_segments() == ()


def publish_codec_zoo(store: ArtifactStore):
    """One bundle per registered codec; returns the bundle names."""
    model = build_model(seed=0)
    _, report = apply_smartexchange(model, FAST, model_name="z-se")
    store.publish(report, FAST, model=model)
    store.publish_model(build_model(seed=0), name="z-dense", codec="dense")
    for bundle, compressor in [
        ("z-quant", LinearQuantizer(8)),
        ("z-prune", MagnitudePruner(0.6)),
        ("z-pow2", Pow2Quantizer(4)),
        ("z-fp8", FP8Quantizer()),
    ]:
        report = compressor.compress(build_model(seed=0), bundle)
        store.publish_compressed(report, model=build_model(seed=0))
    return ["z-se", "z-dense", "z-quant", "z-prune", "z-pow2", "z-fp8"]


class TestBackendParity:
    def test_six_codecs_bit_identical_across_backends(
        self, tmp_path, rng
    ):
        store = ArtifactStore(tmp_path / "zoo")
        bundles = publish_codec_zoo(store)
        assert len(bundles) == 6
        registry = ModelRegistry(store)
        inputs = list(rng.normal(size=(8, 3, 8, 8)))
        codecs = set()
        with registry:
            for bundle in bundles:
                handle = registry.get(bundle)
                codecs.add(handle.codec)
                threaded = serve_all(make_engine(handle), inputs, workers=1)
                processed = serve_all(
                    make_engine(handle),
                    inputs,
                    workers=2,
                    backend="process",
                )
                np.testing.assert_array_equal(
                    np.stack(processed),
                    np.stack(threaded),
                    err_msg=f"backend outputs diverged for {bundle}",
                )
        assert len(codecs) == 6
        assert shm_segments() == ()


class TestWireFormat:
    """Every envelope survives the pipe (pickle) byte-for-byte."""

    def test_batch_envelope_round_trips(self, rng):
        batch = rng.normal(size=(4, 3, 8, 8))
        envelope = BatchEnvelope(batch_id=7, batch=batch, size=4)
        clone = pickle.loads(pickle.dumps(envelope))
        assert clone.batch_id == 7
        assert clone.size == 4
        np.testing.assert_array_equal(clone.batch, batch)

    def test_batch_result_round_trips(self, rng):
        rows = rng.normal(size=(4, 10))
        result = BatchResult(
            batch_id=3,
            rows=rows,
            error=None,
            install_seconds=0.25,
            forward_seconds=0.5,
            rebuild_totals={"hits": 2, "rebuild_seconds": 0.01},
        )
        clone = pickle.loads(pickle.dumps(result))
        np.testing.assert_array_equal(clone.rows, rows)
        assert clone.rebuild_totals == result.rebuild_totals

    def test_batch_result_carries_exception_instances(self):
        result = BatchResult(
            batch_id=1,
            rows=None,
            error=ValueError("bad batch"),
            install_seconds=0.0,
            forward_seconds=0.0,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone.error, ValueError)
        assert str(clone.error) == "bad batch"

    def test_worker_hello_round_trips(self):
        hello = WorkerHello(
            index=2, pid=4242, attach_seconds=0.003, arena_bytes=1 << 16
        )
        assert pickle.loads(pickle.dumps(hello)) == hello

    def test_worker_spec_round_trips(self, handle):
        engine = make_engine(handle)
        engine.start(workers=1, backend="process")
        try:
            spec = engine._process_pool._spec
            clone = pickle.loads(pickle.dumps(spec))
            assert isinstance(clone, WorkerSpec)
            assert clone.manifest == spec.manifest
            assert set(clone.specs) == set(spec.specs)
        finally:
            engine.stop()

    def test_replay_request_round_trips(self):
        request = ReplayRequest(
            arrival_s=1.5,
            model="demo:0001",
            trace_id="abc123",
            engine="demo:0001",
            batch_id=9,
            latency_s=0.02,
            rebuild_s=0.001,
            tenant="acme",
        )
        assert pickle.loads(pickle.dumps(request)) == request


class TestCrashRecovery:
    def test_kill_9_fails_only_inflight_and_respawns(self, handle, rng):
        engine = make_engine(handle, max_wait_s=0.002)
        engine.start(workers=2, backend="process")
        try:
            inputs = list(rng.normal(size=(40, 3, 8, 8)))
            tickets = [engine.submit(sample) for sample in inputs]
            victim = engine.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            ok, failed = 0, 0
            for ticket in tickets:
                try:
                    ticket.result(timeout=60.0)
                    ok += 1
                except ProcessWorkerError:
                    failed += 1
            # Only batches in flight to the dead worker fail; the
            # survivor and the respawned replacement serve the rest.
            assert failed > 0
            assert ok > 0
            assert failed <= 3 * 4  # pipeline depth + dispatch, 1 batch each
            summary = engine.summary()
            assert summary["worker_respawns"] >= 1
            # The pool is whole again and keeps serving.
            assert len(engine.worker_pids()) == 2
            replay = [engine.submit(s) for s in inputs[:8]]
            for ticket in replay:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        assert shm_segments() == ()

    def test_fatal_init_poisons_instead_of_respawn_looping(
        self, handle, rng
    ):
        from repro.serving.arena import SharedPayloadArena
        from repro.serving import ServingError

        arena = SharedPayloadArena.from_payloads(
            handle.payloads, key=handle.key
        )
        # Yank the segment before any worker attaches: every spawn
        # fails identically, so respawning would loop forever.
        os.unlink(f"/dev/shm/{arena.segment_name}")
        engine = make_engine(handle, max_wait_s=0.002)
        engine.start(workers=1, backend="process", arena=arena)
        ticket = engine.submit(rng.normal(size=(3, 8, 8)))
        with pytest.raises(ProcessWorkerError, match="failed to initialize"):
            ticket.result(timeout=60.0)
        assert engine._process_pool.respawns == 0
        with pytest.raises(ServingError, match="worker died"):
            engine.stop()
        arena.close()


class TestRegistryArena:
    def test_engines_share_one_registry_arena(self, published, rng):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        handle = registry.get(manifest.name)
        arena = registry.arena(manifest.name)
        assert registry.arena(manifest.name) is arena  # placed once
        inputs = list(rng.normal(size=(8, 3, 8, 8)))
        before = len(shm_segments())
        for _ in range(2):  # sequential engines, same segment
            rows = serve_all(
                make_engine(handle),
                inputs,
                workers=2,
                backend="process",
                arena=arena,
            )
            assert len(rows) == len(inputs)
            # Engine stop released its reference but the registry's
            # own reference keeps the segment alive for the next one.
            assert not arena.closed
            assert len(shm_segments()) == before
        registry.close()
        assert arena.closed
        assert shm_segments() == ()
        registry.close()  # idempotent over already-closed arenas
