"""Quantization codecs: linear, power-of-2, and FP8 stored forms.

These are the storage halves of the baselines in
:mod:`repro.compression.quantization`: the quantizers there snap live
model weights onto a value grid; the codecs here store grid *codes*
compactly and reproduce the snapped values exactly on decode.  Encoding
an already-snapped weight is lossless; encoding a raw weight commits
the same approximation the corresponding quantizer would.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import (
    LayerPayload,
    check_codec,
    decode_empty,
    empty_payload,
)
from repro.core.omega import fit_omega, quantize_to_omega
from repro.core.serialize import (
    decode_coefficient_codes,
    encode_coefficient_codes,
    pack_nibbles,
    unpack_nibbles,
)


class LinearQuantCodec:
    """Symmetric linear quantization: int codes + one FP32 scale.

    ``bits`` picks the code width (8 -> int8 codes, the S8 family).
    The scale is data-driven (``max|w| / qmax``), so weights already on
    a symmetric grid — :class:`~repro.compression.quantization.
    LinearQuantizer` output, or DoReFa grids at ``bits = k + 1`` —
    round-trip exactly.
    """

    name = "quant-linear"

    def __init__(self, bits: int = 8) -> None:
        if not 2 <= bits <= 32:
            raise ValueError("bits must be in [2, 32]")
        self.bits = bits

    def encode(self, weight: np.ndarray) -> LayerPayload:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.size == 0:
            return empty_payload(self.name, weight.shape)
        qmax = 2 ** (self.bits - 1) - 1
        max_abs = float(np.abs(weight).max())
        scale = max_abs / qmax if max_abs else 1.0
        dtype = (
            np.int8 if self.bits <= 8
            else np.int16 if self.bits <= 16
            else np.int32
        )
        codes = np.round(weight / scale).astype(dtype)
        return LayerPayload(
            codec=self.name,
            weight_shape=tuple(weight.shape),
            arrays={"q": codes},
            meta={"scale": scale, "bits": self.bits},
        )

    def decode(self, payload: LayerPayload) -> np.ndarray:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return decode_empty(payload)
        scale = float(payload.meta["scale"])
        return payload.arrays["q"].astype(np.float64) * scale

    def payload_bytes(self, payload: LayerPayload) -> int:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return 0
        size = int(np.prod(payload.weight_shape, dtype=np.int64))
        bits = int(payload.meta["bits"])
        # codes at the target width plus the FP32 scale
        return -(-size * bits // 8) + 4


class Pow2QuantCodec:
    """Power-of-two weights: sign/exponent codes over a fitted ΩP window.

    The quantization half of SmartExchange without the decomposition
    (the paper's [40] baseline).  Codes reuse the accelerator's
    coefficient coding — 0 is the stored zero, other codes pack
    (exponent offset, sign) — and are nibble-packed at ``bits <= 4``.
    """

    name = "quant-pow2"

    def __init__(self, bits: int = 4) -> None:
        if not 2 <= bits <= 8:
            raise ValueError("bits must be in [2, 8]")
        self.bits = bits

    def encode(self, weight: np.ndarray) -> LayerPayload:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.size == 0 or not np.any(weight):
            payload = empty_payload(self.name, weight.shape)
            return payload
        exponent_count = 2 ** (self.bits - 1) - 1
        omega = fit_omega(weight, exponent_count)
        snapped = quantize_to_omega(weight, omega)
        codes = encode_coefficient_codes(
            snapped, omega.p_min, omega.p_max, ce_bits=self.bits
        )
        packed = self.bits <= 4
        return LayerPayload(
            codec=self.name,
            weight_shape=tuple(weight.shape),
            arrays={"codes": pack_nibbles(codes) if packed else codes.reshape(-1)},
            meta={
                "p_min": omega.p_min,
                "p_max": omega.p_max,
                "bits": self.bits,
                "packed": packed,
            },
        )

    def decode(self, payload: LayerPayload) -> np.ndarray:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return decode_empty(payload)
        size = int(np.prod(payload.weight_shape, dtype=np.int64))
        stored = payload.arrays["codes"]
        codes = unpack_nibbles(stored, size) if payload.meta["packed"] else stored
        values = decode_coefficient_codes(codes, int(payload.meta["p_min"]))
        return values.reshape(payload.weight_shape)

    def payload_bytes(self, payload: LayerPayload) -> int:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return 0
        size = int(np.prod(payload.weight_shape, dtype=np.int64))
        return -(-size * int(payload.meta["bits"]) // 8)


class FP8Codec:
    """8-bit floating point: one ``s|e..e|m..m`` byte per weight.

    The split between exponent and mantissa bits is configurable (e4m3
    by default, e5m2 the other common choice); the split travels in the
    payload meta, so decode needs no codec configuration.  Normal
    values are ``(-1)^s * (1 + m/2^mb) * 2^(E - 2^(eb-1))`` with
    exponent field ``E`` in [1, 2^eb - 1]; field 0 holds subnormals
    ``(-1)^s * m/2^mb * 2^(1 - 2^(eb-1))`` (m = 0 is zero).
    Magnitudes beyond the top normal saturate.  This reproduces the
    value snapping of the FP8-training baseline
    (:class:`~repro.compression.quantization.FP8Quantizer`) bit-for-bit
    over the weight range it is used on.
    """

    name = "quant-fp8"

    def __init__(self, exponent_bits: int = 4, mantissa_bits: int = 3) -> None:
        if exponent_bits + mantissa_bits != 7:
            raise ValueError("FP8 needs exponent_bits + mantissa_bits == 7")
        self.exponent_bits = exponent_bits
        self.mantissa_bits = mantissa_bits

    def encode(self, weight: np.ndarray) -> LayerPayload:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.size == 0:
            return empty_payload(self.name, weight.shape)
        eb, mb = self.exponent_bits, self.mantissa_bits
        bias = 2 ** (eb - 1)
        exp_max = bias - 1  # FP8Quantizer clips exponents to +/- this
        steps = 2**mb
        flat = weight.reshape(-1)
        magnitude = np.abs(flat)
        bytes_out = np.zeros(flat.size, dtype=np.uint8)
        nonzero = magnitude > 0
        if np.any(nonzero):
            mag = magnitude[nonzero]
            exp = np.floor(np.log2(mag)).astype(np.int64)
            mantissa = np.round((mag / 2.0**exp - 1.0) * steps).astype(np.int64)
            # A mantissa that rounded up to 2.0 renormalizes upward.
            carry = mantissa == steps
            exp[carry] += 1
            mantissa[carry] = 0
            high = exp > exp_max
            exp[high], mantissa[high] = exp_max, steps - 1
            sign = (flat[nonzero] < 0).astype(np.uint8)
            encoded = (
                (sign << 7)
                | ((exp + bias).astype(np.uint8) << mb)
                | mantissa.astype(np.uint8)
            )
            # Below the smallest normal, store the subnormal code
            # m = round(|w| * 2^(exp_max + mb)) in [0, steps]; `steps`
            # lands exactly on the exponent-field-1 bit, i.e. the
            # smallest normal, 2^-exp_max.
            low = exp < -exp_max
            if np.any(low):
                sub = np.round(mag[low] * 2.0 ** (exp_max + mb)).astype(
                    np.int64
                )
                encoded[low] = (sign[low] << 7) | np.minimum(
                    sub, steps
                ).astype(np.uint8)
            bytes_out[nonzero] = encoded
        return LayerPayload(
            codec=self.name,
            weight_shape=tuple(weight.shape),
            arrays={"fp8": bytes_out},
            meta={"exponent_bits": eb, "mantissa_bits": mb},
        )

    def decode(self, payload: LayerPayload) -> np.ndarray:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return decode_empty(payload)
        eb = int(payload.meta["exponent_bits"])
        mb = int(payload.meta["mantissa_bits"])
        bias, steps = 2 ** (eb - 1), 2**mb
        raw = payload.arrays["fp8"].astype(np.int64)
        exp_field = (raw >> mb) & (2**eb - 1)
        mantissa = raw & (steps - 1)
        sign = np.where(raw >> 7 == 0, 1.0, -1.0)
        normal = sign * (1.0 + mantissa / steps) * 2.0 ** (exp_field - bias)
        subnormal = sign * mantissa * 2.0 ** (1 - bias - mb)
        values = np.where(exp_field == 0, subnormal, normal)
        return values.reshape(payload.weight_shape)

    def payload_bytes(self, payload: LayerPayload) -> int:
        check_codec(payload, self.name)
        return payload.nbytes
