"""Serve predictions straight from a compressed artifact bundle.

The SmartExchange trade at the serving layer: train a small CNN,
decompose it, publish the {B, Ce, index} payloads to the artifact
store, then bring up a batched inference engine that rebuilds dense
weights on read behind an LRU cache — and show that the served outputs
match the compressed model while the bundle is a fraction of the dense
checkpoint.

The same pipeline serves every registered weight codec: a later
section publishes the identical network under the ``quant-linear``
(int8) baseline codec and serves it through the identical engine —
only the bundle's ``codec`` field differs.

A cost-model section serves the same bundle through a capacity-bounded
cache under plain LRU vs the cost-aware admission policy
(rebuild-seconds-per-byte knapsack), showing the rebuild compute each
policy pays for the identical request stream.

The final section brings up a :class:`ServingHost` over *both* bundles
— the SmartExchange and the int8 encoding of the same network — and
routes one unpinned request stream under cost-aware routing: the
pre-warmed engine bids ~0 expected install seconds, so the traffic
drains to it instead of waking the cold one.  The host runs with the
observability layer on: one shared :class:`Observability` handle
traces every request (route → queue → rebuild → compute spans),
records a replayable JSONL trace, and exports fleet-wide Prometheus
metrics that reconcile with the summaries.

Run:  python examples/serve_compressed.py
"""

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro import nn
from repro.compression import LinearQuantizer
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.datasets import synthetic_cifar10
from repro.observability import Observability, TraceReader, TraceRecorder
from repro.serving import (
    ArtifactStore,
    AsyncInferenceEngine,
    InferenceEngine,
    ModelRegistry,
    ServingHost,
    StaticBatchPolicy,
)


def build_model(rng: np.random.Generator) -> nn.Module:
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = synthetic_cifar10(train_per_class=10, test_per_class=4)

    print("training + compressing a small CNN ...")
    model = build_model(rng)
    nn.fit(model, dataset.train_images, dataset.train_labels,
           epochs=3, lr=0.03)
    config = SmartExchangeConfig(theta=4e-3, max_iterations=8,
                                 target_row_sparsity=0.5)
    _, report = apply_smartexchange(model, config, model_name="demo-cnn")

    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        manifest = store.publish(report, config, model=model)
        print(f"published {manifest.name}:{manifest.version}")
        print(f"  payload bytes : {manifest.payload_bytes}")
        print(f"  dense bytes   : {manifest.dense_bytes} "
              f"({manifest.compression_rate:.1f}x smaller in DRAM-image form)")
        print(f"  bundle on disk: {manifest.bundle_bytes} bytes")

        # A fresh skeleton: every weight below comes from the bundle.
        registry = ModelRegistry(store)
        engine = InferenceEngine(
            build_model(np.random.default_rng(1)),
            registry.get("demo-cnn"),
            policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
        )

        samples = list(dataset.test_images[:16])
        offline = engine.predict_many(samples, batched=True)

        print("serving the same requests through a 4-worker pool ...")
        engine.start(workers=4)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            online = [ticket.result(timeout=30.0) for ticket in tickets]
        finally:
            engine.stop()

        print("and once more through the asyncio front door ...")

        async def serve_async():
            async with AsyncInferenceEngine(engine, workers=2) as serving:
                return await serving.predict_many(samples)

        from_async = asyncio.run(serve_async())

        model.eval()
        direct = nn.predict(model, dataset.test_images[:16]).argmax(axis=1)
        served = np.stack(online).argmax(axis=1)
        agreement = float((served == direct).mean())
        drift = float(np.abs(np.stack(online) - np.stack(offline)).max())
        async_drift = float(
            np.abs(np.stack(from_async) - np.stack(online)).max()
        )
        print(f"served vs direct label agreement: {agreement:6.1%}")
        print(f"online vs offline max drift     : {drift:.2e}")
        print(f"async vs threaded max drift     : {async_drift:.2e}")
        print(engine.report())

        # The codec axis: publish the same network as an int8 baseline
        # bundle and serve it through the identical pipeline.
        print("\npublishing the same model as a quant-linear baseline ...")
        baseline = build_model(np.random.default_rng(0))
        baseline.load_state_dict(model.state_dict())
        q_report = LinearQuantizer(8).compress(baseline, "demo-cnn-int8")
        q_manifest = store.publish_compressed(q_report, model=baseline)
        q_engine = InferenceEngine(
            build_model(np.random.default_rng(2)),
            registry.get("demo-cnn-int8"),
            policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
        )
        q_served = np.stack(q_engine.predict_many(samples, batched=True))
        baseline.eval()
        q_direct = nn.predict(baseline, dataset.test_images[:16])
        q_agreement = float(
            (q_served.argmax(axis=1) == q_direct.argmax(axis=1)).mean()
        )
        print(f"codec comparison ({manifest.name}):")
        for m in (manifest, q_manifest):
            print(
                f"  {m.codec:14s} payload {m.payload_bytes:6d} B  "
                f"dense {m.dense_bytes:6d} B  "
                f"({m.dense_bytes / max(m.payload_bytes, 1):.1f}x smaller)"
            )
        print(f"int8 served vs int8 model label agreement: {q_agreement:6.1%}")

        # The cost-model axis: the same bundle behind a cache too small
        # to hold every layer.  LRU thrashes — a round-robin install
        # pass evicts exactly the layer it needs next — while the
        # cost-aware policy pins the layers whose rebuild is expensive
        # (measured seconds-per-byte, learned online) and keeps
        # re-rebuilding only the cheap ones.
        print("\nadmission-policy comparison (cache at 95% of dense bytes):")
        handle = registry.get("demo-cnn")
        capacity = int(handle.total_dense_bytes * 0.95)
        for admission in ("lru", "cost-aware"):
            policy_engine = InferenceEngine(
                build_model(np.random.default_rng(3)),
                handle,
                policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
                cache_bytes=capacity,
                admission=admission,
                cost_model=registry.cost_model,
            )
            policy_engine.predict_many(samples[:8])  # warm to steady state
            policy_engine.rebuild.reset_stats()
            policy_engine.stats.reset()
            policy_served = policy_engine.predict_many(samples)
            drift = float(
                np.abs(np.stack(policy_served) - np.stack(offline)).max()
            )
            summary = policy_engine.summary()
            print(
                f"  {admission:11s} rebuild {summary['rebuild_rebuild_seconds']*1e3:8.2f} ms  "
                f"hit rate {summary['rebuild_hit_rate']:5.1%}  "
                f"evictions {summary['rebuild_evictions']:3d}  "
                f"rejected {summary['rebuild_rejected']:3d}  "
                f"drift vs offline {drift:.2e}"
            )

        # The routing axis: both encodings of the network behind one
        # multi-model host.  The SmartExchange engine is pre-warmed, so
        # under cost-aware routing it bids ~0 expected install seconds
        # and the unpinned stream drains to it; the cold int8 engine
        # never pays a rebuild.
        print("\nmulti-model host with cost-aware request routing:")
        # One observability handle for the whole fleet: every engine
        # deployed by the host shares its tracer/recorder, and each
        # engine's metrics registry federates into one export.
        trace_path = Path(root) / "requests.jsonl"
        observability = Observability(recorder=TraceRecorder(trace_path))
        host = ServingHost(
            registry, routing="cost-aware", observability=observability
        )
        warm_engine = host.deploy(
            "demo-cnn", build_model(np.random.default_rng(4)),
            policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
        )
        host.deploy(
            "demo-cnn-int8", build_model(np.random.default_rng(5)),
            policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
        )
        warm_engine.rebuild.warm()
        host.start(workers=2)
        try:
            tickets = [host.submit(sample) for sample in samples]
            routed_rows = [ticket.result(timeout=30.0) for ticket in tickets]
        finally:
            host.stop()
        drift = float(np.abs(np.stack(routed_rows) - np.stack(offline)).max())
        print(host.report())
        print(f"routed vs offline max drift     : {drift:.2e}")

        # What the observability layer saw: span-derived per-phase
        # latencies, the recorded trace (a replayable schedule), and a
        # Prometheus page any scraper could pull.
        print("\nspan-derived latency breakdown (queue/rebuild/compute):")
        for phase, stats in observability.latency_breakdown().items():
            print(
                f"  {phase:10s} n={stats['count']:3d} "
                f"p50={stats['p50_ms']:7.2f} ms  "
                f"p95={stats['p95_ms']:7.2f} ms  "
                f"total={stats['total_s']:.3f} s"
            )
        observability.recorder.close()
        schedule = TraceReader(trace_path).schedule()
        print(
            f"recorded {len(schedule)} requests; first arrival at "
            f"{schedule[0].arrival_s * 1e3:.1f} ms, all routed to "
            f"{sorted({row.engine for row in schedule})}"
        )
        metrics_page = observability.to_prometheus_text()
        print("prometheus export (excerpt):")
        for line in metrics_page.splitlines():
            if line.startswith("repro_host_routed_total"):
                print(f"  {line}")

        # The tenancy axis: the same fleet, metered per tenant.  A
        # seeded flash-crowd scenario generates the schedule (same
        # seed, same schedule — replayable), a steady tenant shares
        # the wire with a spiky one, and the spiky tenant runs under a
        # rate quota enforced at the host front door *before* routing.
        # Every rebuild the fleet pays is charged to the tenants whose
        # batch caused it, so the per-tenant bills reconcile with the
        # fleet totals exactly.
        print("\nmulti-tenant serving under a generated flash crowd:")
        from repro.tenancy import QuotaExceededError, TenantQuota
        from repro.workloads import FlashCrowdScenario

        scenario = FlashCrowdScenario(
            rate_rps=40, duration_s=1.5, burst_start_s=0.5,
            burst_duration_s=0.4, burst_multiplier=5.0,
            burst_tenant="spiky", models=["demo-cnn"],
            tenants=["steady"], seed=7,
        )
        rows = scenario.generate()
        tenant_host = ServingHost(
            registry,
            quotas={
                "spiky": TenantQuota(max_requests_per_second=10, burst=5)
            },
        )
        tenant_host.deploy(
            "demo-cnn", build_model(np.random.default_rng(6)),
            policy=StaticBatchPolicy(max_batch_size=8, max_wait_s=0.005),
        )
        rejected = 0
        tenant_host.start(workers=2)
        try:
            tickets = []
            for i, request in enumerate(rows):
                try:
                    tickets.append(tenant_host.submit(
                        samples[i % len(samples)],
                        model=request.model, tenant=request.tenant,
                    ))
                except QuotaExceededError:
                    rejected += 1
            for ticket in tickets:
                ticket.result(timeout=30.0)
        finally:
            tenant_host.stop()
        ledger = tenant_host.ledger
        fleet_rebuild = tenant_host.summary()["rebuild_seconds"]
        assert abs(ledger.total_rebuild_seconds() - fleet_rebuild) < 1e-9
        print(
            f"  {len(rows)} generated requests ({scenario.name}), "
            f"{rejected} rejected by the spiky tenant's rate quota"
        )
        for tenant, usage in sorted(ledger.usage_reports().items()):
            if usage.requests == 0 and usage.rejected == 0:
                continue
            print(
                f"  tenant[{tenant:6s}] requests={usage.requests:3d} "
                f"rejected={usage.rejected:3d} "
                f"rebuild={usage.rebuild_seconds * 1e3:7.2f} ms  "
                f"bill=${usage.total_usd:.2e}"
            )
        print(
            "  per-tenant rebuild seconds sum to the fleet total "
            f"({fleet_rebuild * 1e3:.2f} ms) exactly"
        )


if __name__ == "__main__":
    main()
