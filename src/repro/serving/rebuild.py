"""Software rebuild engine: dense weights on demand from encoded payloads.

The serving-side analogue of the accelerator's RE
(:mod:`repro.hardware.smartexchange.rebuild_engine`): the encoded
payloads live in memory permanently (they are small), and dense layer
weights are *rebuilt on read* by dispatching each layer's
:class:`~repro.codecs.LayerPayload` through the codec registry — for
the paper's ``smartexchange`` codec that means decoding nibble codes,
dequantizing the basis, multiplying, and folding matrices back through
the :class:`~repro.core.reshape.ReshapePlan`; for ``quant-*`` /
``prune-csr`` / ``dense`` bundles the registered decoder runs instead,
through the identical cache.

A capacity-bounded cache keeps hot layers dense so they pay the rebuild
compute once; cold layers are evicted and rebuilt on their next access.
*Which* layers stay resident is a pluggable :class:`AdmissionPolicy`:

- :class:`LRUPolicy` (default) — recency only, blind to rebuild cost.
- :class:`CostAwarePolicy` — a greedy knapsack on rebuild-seconds-per-
  resident-byte (estimated by a :class:`~repro.costs.CodecCostModel`),
  so cheap-to-rebuild layers are evicted first and a layer is only
  admitted if every byte it displaces was cheaper to rebuild.
- :class:`SizeAwarePolicy` — evicts the largest resident layer first.

The cache counters expose the realized storage-vs-compute trade:
``bytes_saved`` is the dense footprint *not* held resident,
``rebuilt_bytes`` is the compute paid for it, and ``stats.curve``
samples (accesses, resident bytes, cumulative rebuild seconds) so
:meth:`repro.serving.ServingStats.cost_curve` can plot the trade.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.codecs import LayerPayload, get_codec
from repro.core.reshape import from_matrices
from repro.core.serialize import payload_weight
from repro.costs import CodecCostModel
from repro.observability import NULL_OBSERVABILITY, MetricsRegistry
from repro.serving.artifacts import LayerArtifactSpec

# Bound on the sampled trade curve; when full, every other point is
# dropped, halving the sampling rate but keeping the whole history.
_CURVE_LIMIT = 4096


class RebuildCacheStats:
    """Counters for the rebuild-on-read cache.

    The scalar counters are metric-backed properties over
    ``repro_rebuild_*`` instruments in a
    :class:`~repro.observability.metrics.MetricsRegistry` (pass
    ``metrics=`` to share the engine's registry), so a Prometheus
    export reports exactly what :meth:`as_dict` reports.  ``+=``
    mutation keeps working through the setters; callers hold the
    rebuild engine's lock as before.
    """

    #: Default EWMA weight for per-layer hit rates: ~0.8^n decay, so a
    #: phase change (flash crowd shifting the working set) washes the
    #: old regime out of the rate within a few tens of accesses instead
    #: of being averaged against the layer's whole history.
    HIT_RATE_ALPHA = 0.2

    def __init__(
        self,
        policy: str = "lru",
        metrics: Optional[MetricsRegistry] = None,
        hit_rate_alpha: Optional[float] = None,
    ) -> None:
        self.policy = policy
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        alpha = self.HIT_RATE_ALPHA if hit_rate_alpha is None else hit_rate_alpha
        if not 0.0 < alpha <= 1.0:
            raise ValueError("hit_rate_alpha must be in (0, 1]")
        self.hit_rate_alpha = alpha
        help_ = "rebuild-on-read cache counter"
        self._hits = self.metrics.counter(
            "repro_rebuild_hits_total", "cache hits (rebuild avoided)"
        )
        self._misses = self.metrics.counter(
            "repro_rebuild_misses_total", "cache misses (rebuild paid)"
        )
        self._evictions = self.metrics.counter(
            "repro_rebuild_evictions_total", help_
        )
        self._rejected = self.metrics.counter(
            "repro_rebuild_rejected_total",
            "rebuilds the admission policy declined to cache",
        )
        self._rebuilds = self.metrics.counter(
            "repro_rebuild_rebuilds_total", help_
        )
        self._rebuilt_bytes = self.metrics.counter(
            "repro_rebuild_rebuilt_bytes_total",
            "dense bytes produced by rebuild compute",
        )
        self._rebuild_seconds = self.metrics.counter(
            "repro_rebuild_seconds_total", "seconds spent rebuilding"
        )
        self._est_seconds_saved = self.metrics.counter(
            "repro_rebuild_est_seconds_saved_total",
            "estimated rebuild seconds cache hits avoided",
        )
        # (accesses, cached_bytes, cumulative rebuild_seconds) samples,
        # one per rebuild — the realized storage-vs-compute trade over
        # time.
        self.curve: List[Tuple[int, int, float]] = []
        # Per-layer access/hit counts (all-time, for audit) plus the
        # EWMA-decayed hit rate that probabilistic install estimates
        # and routing decisions price — decayed so the estimate tracks
        # phase changes instead of the lifetime average.
        self.layer_hits: Dict[str, int] = {}
        self.layer_accesses: Dict[str, int] = {}
        self.layer_hit_ewma: Dict[str, float] = {}
        # Lower-tier counters: one labeled instrument per (tier, event),
        # created when the engine registers its tiers so the export
        # schema is complete before any traffic.  Tier registration
        # order is kept so reports read fastest-tier-first.
        self._tier_order: List[str] = []
        self._tier_counters: Dict[Tuple[str, str], "object"] = {}

    # -- lower-tier counters --------------------------------------------
    # One metric name per event, tiers as the label dimension, per the
    # registry's naming scheme.
    TIER_EVENTS: Dict[str, Tuple[str, str]] = {
        "hits": (
            "repro_rebuild_tier_hits_total",
            "dense-tier misses served by faulting from a lower tier",
        ),
        "promotions": (
            "repro_rebuild_tier_promotions_total",
            "tier faults whose layer was re-admitted to the dense tier",
        ),
        "demotions": (
            "repro_rebuild_tier_demotions_total",
            "layers pushed down into this tier",
        ),
        "evictions": (
            "repro_rebuild_tier_evictions_total",
            "entries this tier's placement policy pushed out",
        ),
        "rejected": (
            "repro_rebuild_tier_rejected_total",
            "demotions this tier's placement policy declined",
        ),
        "corrupt": (
            "repro_rebuild_tier_corrupt_total",
            "tier faults whose blob failed validation (served as misses)",
        ),
        "fault_seconds": (
            "repro_rebuild_tier_fault_seconds_total",
            "seconds spent faulting layers back from this tier",
        ),
    }

    def register_tier(self, tier: str) -> None:
        """Pre-create every event counter for one tier, in hierarchy
        order — the stats schema (and the metric series) must exist
        before traffic, so live/simulated exports stay comparable."""
        if tier in self._tier_order:
            return
        self._tier_order.append(tier)
        for event, (name, help_text) in self.TIER_EVENTS.items():
            self._tier_counters[(tier, event)] = self.metrics.counter(
                name, help_text, tags={"tier": tier}
            )

    def record_tier(self, tier: str, event: str, amount: float = 1) -> None:
        """Count one tier event (callers hold the engine lock)."""
        counter = self._tier_counters.get((tier, event))
        if counter is None:
            self.register_tier(tier)
            counter = self._tier_counters[(tier, event)]
        counter.inc(amount)

    def tier_count(self, tier: str, event: str) -> float:
        counter = self._tier_counters.get((tier, event))
        if counter is None:
            return 0
        value = counter.value
        return value if event == "fault_seconds" else int(value)

    def tier_counts(self) -> Dict[str, Dict[str, float]]:
        """Every registered tier's event counters, hierarchy order."""
        return {
            tier: {
                event: self.tier_count(tier, event)
                for event in self.TIER_EVENTS
            }
            for tier in self._tier_order
        }

    def tier_hit_counts(self) -> Dict[str, int]:
        """Where accesses were served: dense hits, per-tier faults,
        full rebuilds — the hierarchy's realized hit distribution (and
        the exact-parity contract the offline simulator reproduces)."""
        out = {"dense-ram": self.hits}
        for tier in self._tier_order:
            out[tier] = int(self.tier_count(tier, "hits"))
        out["rebuild"] = self.rebuilds
        return out

    # -- metric-backed scalar counters ---------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.set(value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._rejected.set(value)

    @property
    def rebuilds(self) -> int:
        return int(self._rebuilds.value)

    @rebuilds.setter
    def rebuilds(self, value: int) -> None:
        self._rebuilds.set(value)

    @property
    def rebuilt_bytes(self) -> int:
        return int(self._rebuilt_bytes.value)

    @rebuilt_bytes.setter
    def rebuilt_bytes(self, value: int) -> None:
        self._rebuilt_bytes.set(value)

    @property
    def rebuild_seconds(self) -> float:
        return self._rebuild_seconds.value

    @rebuild_seconds.setter
    def rebuild_seconds(self, value: float) -> None:
        self._rebuild_seconds.set(value)

    @property
    def est_seconds_saved(self) -> float:
        return self._est_seconds_saved.value

    @est_seconds_saved.setter
    def est_seconds_saved(self, value: float) -> None:
        self._est_seconds_saved.set(value)

    def reset(self) -> None:
        """Zero every counter *in place* (object identity kept).

        Callers hold the engine lock, so an in-flight access counts
        entirely before or entirely after the reset — the old
        swap-a-fresh-object reset could split one access's miss and
        rebuild counts across two stats objects.
        """
        for instrument in (
            self._hits,
            self._misses,
            self._evictions,
            self._rejected,
            self._rebuilds,
            self._rebuilt_bytes,
            self._rebuild_seconds,
            self._est_seconds_saved,
        ):
            instrument.reset()
        for counter in self._tier_counters.values():
            counter.reset()
        self.curve.clear()
        self.layer_hits.clear()
        self.layer_accesses.clear()
        self.layer_hit_ewma.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def record_access(self, name: str, hit: bool) -> None:
        """Count one layer access (callers hold the engine lock).

        Besides the all-time counts, the per-layer EWMA hit rate is
        folded here: seeded at the first observation's value, then
        ``alpha * hit + (1 - alpha) * previous`` — deterministic given
        the access sequence, which the live/simulator parity contract
        relies on.
        """
        self.layer_accesses[name] = self.layer_accesses.get(name, 0) + 1
        if hit:
            self.layer_hits[name] = self.layer_hits.get(name, 0) + 1
        value = 1.0 if hit else 0.0
        previous = self.layer_hit_ewma.get(name)
        if previous is None:
            self.layer_hit_ewma[name] = value
        else:
            alpha = self.hit_rate_alpha
            self.layer_hit_ewma[name] = alpha * value + (1.0 - alpha) * previous

    def layer_hit_rate(self, name: str) -> float:
        """EWMA-decayed hit rate of one layer (0.0 before any access).

        This is the rate :meth:`RebuildEngine.estimated_install_seconds`
        discounts uncached layers by; decay means a working-set phase
        change (a flash crowd displacing the old hot set) re-prices
        within tens of accesses, where the old all-time average stayed
        anchored to stale history.  The raw lifetime counts remain in
        :attr:`layer_hits` / :attr:`layer_accesses`.
        """
        return self.layer_hit_ewma.get(name, 0.0)

    def layer_hit_rates(self) -> Dict[str, float]:
        """Decayed per-layer hit rates over every accessed layer.

        Safe to call from a telemetry thread while workers record
        accesses: the dict is copied first (atomic under the GIL), so
        a first-access insert cannot resize it mid-iteration.
        """
        rates = dict(self.layer_hit_ewma)
        return {name: rates[name] for name in sorted(rates)}

    def as_dict(self) -> Dict:
        out = {
            "policy": self.policy,
            "hits": self.hits,
            "misses": self.misses,
            "accesses": self.accesses,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "rebuilds": self.rebuilds,
            "rebuilt_bytes": self.rebuilt_bytes,
            "rebuild_seconds": self.rebuild_seconds,
            "est_seconds_saved": self.est_seconds_saved,
            "hit_rate": self.hit_rate,
            "curve_points": len(self.curve),
            "layer_hit_rates": self.layer_hit_rates(),
        }
        if self._tier_order:
            out["tiers"] = self.tier_counts()
            out["tier_hit_counts"] = self.tier_hit_counts()
        return out


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheEntryView:
    """What a policy sees of one layer: size, codec, estimated cost.

    ``rebuild_seconds`` is the cost model's current estimate of one
    rebuild of this layer.  Views handed to a policy are ordered least-
    recently-used first, so index 0 is the LRU victim.
    """

    name: str
    nbytes: int
    codec: str
    rebuild_seconds: float

    @property
    def seconds_per_byte(self) -> float:
        """Value density: rebuild seconds bought per resident byte."""
        return self.rebuild_seconds / max(self.nbytes, 1)


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides what enters the rebuild cache and what leaves it.

    ``admit`` is asked once per completed rebuild whether the fresh
    weight should be cached at all (given the current residents, LRU
    first, and the free bytes under capacity); ``victim`` is asked —
    possibly repeatedly — which resident to evict to make room (the
    just-admitted candidate is never offered as a victim).  Policies
    with ``requires_costs`` trigger a one-shot codec calibration probe
    when the engine is built, so cost estimates exist before traffic.
    """

    name: str
    requires_costs: bool

    def admit(
        self,
        candidate: CacheEntryView,
        resident: Sequence[CacheEntryView],
        free_bytes: int,
    ) -> bool:
        ...  # pragma: no cover - protocol

    def victim(
        self,
        candidate: CacheEntryView,
        resident: Sequence[CacheEntryView],
    ) -> str:
        ...  # pragma: no cover - protocol


class LRUPolicy:
    """Classic least-recently-used: admit everything, evict the oldest."""

    name = "lru"
    requires_costs = False

    def admit(self, candidate, resident, free_bytes) -> bool:
        return True

    def victim(self, candidate, resident) -> str:
        return resident[0].name


class SizeAwarePolicy:
    """Admit everything; evict the largest resident layer first.

    Frees the most bytes per eviction, so many small layers stay hot at
    the cost of re-rebuilding the big ones — the right shape when small
    layers dominate the access mix.
    """

    name = "size-aware"
    requires_costs = False

    def admit(self, candidate, resident, free_bytes) -> bool:
        return True

    def victim(self, candidate, resident) -> str:
        # max() keeps the first (least recently used) among size ties.
        return max(resident, key=lambda view: view.nbytes).name


class CostAwarePolicy:
    """Greedy knapsack on rebuild-seconds-per-resident-byte.

    Each resident byte "earns" the rebuild seconds it avoids; the cache
    should therefore hold the layers with the highest seconds-per-byte
    density.  Eviction removes the *cheapest*-density resident first
    (cheap-to-rebuild layers are the ones to rebuild again), and a
    candidate is admitted only if every byte it would displace is
    strictly cheaper per byte than the candidate itself — evicting an
    expensive smartexchange layer to cache a quant-linear layer whose
    miss costs ~10x less is exactly the trade this refuses.
    """

    name = "cost-aware"
    requires_costs = True

    def admit(self, candidate, resident, free_bytes) -> bool:
        need = candidate.nbytes - free_bytes
        if need <= 0:
            return True
        density = candidate.seconds_per_byte
        freed = 0
        # Cheapest residents are the eviction order; stop as soon as
        # enough room exists, refuse if anything at least as valuable
        # per byte would have to go.
        for view in sorted(resident, key=lambda v: v.seconds_per_byte):
            if view.seconds_per_byte >= density:
                return False
            freed += view.nbytes
            if freed >= need:
                return True
        return False

    def victim(self, candidate, resident) -> str:
        # min() keeps the first (least recently used) among density ties.
        return min(resident, key=lambda view: view.seconds_per_byte).name


ADMISSION_POLICIES = {
    LRUPolicy.name: LRUPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
    SizeAwarePolicy.name: SizeAwarePolicy,
}


def make_admission_policy(
    policy: Union[str, AdmissionPolicy, None]
) -> AdmissionPolicy:
    """Resolve a policy instance from a name (or pass one through)."""
    if policy is None:
        return LRUPolicy()
    if isinstance(policy, str):
        try:
            return ADMISSION_POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"known: {sorted(ADMISSION_POLICIES)}"
            ) from None
    return policy


def rebuild_layer_weight(
    payload: Union[LayerPayload, List[Dict[str, np.ndarray]]],
    spec: LayerArtifactSpec,
) -> np.ndarray:
    """Decode one layer's payload into its dense weight tensor.

    Dispatches through the codec registry on ``payload.codec``.  A raw
    list of SmartExchange matrix dicts (the pre-codec
    ``core.serialize.load_payloads`` shape) is still accepted and
    decoded via the spec's reshape plan.
    """
    if isinstance(payload, (list, tuple)):
        matrices = [payload_weight(image) for image in payload]
        weight = from_matrices(matrices, spec.plan)
    else:
        weight = get_codec(payload.codec).decode(payload)
    if tuple(weight.shape) != tuple(spec.weight_shape):
        weight = weight.reshape(spec.weight_shape)
    return weight


class RebuildEngine:
    """Policy-cached rebuild-on-read over one model's compressed payloads.

    ``capacity_bytes`` bounds the *dense* bytes held in the cache (the
    analogue of the accelerator's on-chip weight buffer).  ``None``
    means unbounded — every layer is rebuilt at most once.  ``policy``
    picks the admission/eviction strategy (name or instance; LRU by
    default) and ``cost_model`` supplies/learns per-codec rebuild cost
    estimates — every rebuild is observed into it, and cost-requiring
    policies trigger a one-shot calibration probe per codec up front.

    The engine is thread-safe and shared by the serving worker pool:
    cache bookkeeping is guarded by one internal lock, rebuild compute
    runs *outside* it (hits never wait behind a rebuild of another
    layer), and concurrent cold misses on the same layer are
    de-duplicated — the first caller rebuilds while the rest wait on a
    per-layer in-flight event and then read the cached result.

    ``tiers`` extends the cache into a hierarchy (see
    :mod:`repro.serving.tiers`): a spec string like
    ``"compressed,disk"`` (or a list of :class:`~repro.serving.tiers.
    CacheTier` instances, fastest first).  A dense-tier miss then
    faults from the closest lower tier that holds the layer — the
    blob is claimed under the lock and inflated outside it — and
    layers leaving the dense tier (evicted, rejected, or oversized)
    are *demoted* down the hierarchy instead of dropped, gated on the
    cost model pricing the move as a win (``rebuild estimate − tier
    access estimate > 0``) and on the tier's own placement policy.
    Demotion compresses under the engine lock; the blob is the
    deflated form, so the critical section is bounded by one zlib
    level-1 pass.  Blobs that fail validation on fault (truncated or
    corrupted spill files) are counted ``corrupt`` and served as full
    misses, never raised.
    """

    def __init__(
        self,
        payloads: Mapping[str, LayerPayload],
        specs: Dict[str, LayerArtifactSpec],
        capacity_bytes: Optional[int] = None,
        policy: Union[str, AdmissionPolicy, None] = None,
        cost_model: Optional[CodecCostModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        observability=None,
        tiers=None,
        spill_dir: Optional[str] = None,
        ledger=None,
    ) -> None:
        missing = set(specs) - set(payloads)
        if missing:
            raise KeyError(f"payloads missing for layers: {sorted(missing)}")
        self._payloads = payloads
        self._specs = specs
        # Optional per-tenant accounting hook (a
        # :class:`~repro.tenancy.TenantLedger`): actual rebuild seconds
        # and hit savings are charged to the thread's active tenant
        # shares at the same moment they are booked into the stats, and
        # dense-cache residency is attributed/released on admission and
        # eviction.  Duck-typed so this module needs no tenancy import.
        self.ledger = ledger
        self.capacity_bytes = capacity_bytes
        self.policy = make_admission_policy(policy)
        self.cost_model = cost_model or CodecCostModel()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.observability = (
            observability if observability is not None else NULL_OBSERVABILITY
        )
        self._layer_codec = {name: spec.codec for name, spec in specs.items()}
        # Resident bytes if a layer were cached, before its first
        # rebuild tells us the decoded dtype: assume the float64 the
        # NumPy substrate materializes; refined with the actual nbytes
        # once rebuilt (`_actual_bytes`).
        itemsize = np.dtype(np.float64).itemsize
        self._assumed_bytes = {
            name: int(np.prod(spec.weight_shape)) * itemsize
            for name, spec in specs.items()
        }
        # Computed once: this sum sits on the stats hot path.
        self._total_dense_bytes = sum(self._assumed_bytes.values())
        self._actual_bytes: Dict[str, int] = {}
        self._cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._cached_bytes = 0
        self.stats = RebuildCacheStats(
            policy=self.policy.name, metrics=self.metrics
        )
        self._cached_bytes_gauge = self.metrics.gauge(
            "repro_rebuild_cached_bytes",
            "dense bytes resident in the rebuild cache",
        )
        # Guards the cache (all tiers of it), the stats, and the
        # in-flight table.  Rebuild compute and tier blob inflation
        # never run under this lock.
        self._lock = threading.Lock()
        self._inflight: Dict[str, "_InFlightRebuild"] = {}
        from repro.serving.tiers import make_tiers  # circular at module load

        self.tiers = make_tiers(
            tiers, default_capacity=capacity_bytes, spill_dir=spill_dir
        )
        for tier in self.tiers:
            self.stats.register_tier(tier.name)
        needs_costs = getattr(self.policy, "requires_costs", False) or any(
            getattr(tier.policy, "requires_costs", False)
            for tier in self.tiers
        )
        if needs_costs:
            # Sane per-codec estimates before the first admission call.
            self.cost_model.calibrate(payloads, specs)

    # ------------------------------------------------------------------
    @property
    def layer_names(self) -> List[str]:
        return list(self._specs)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._cached_bytes

    @property
    def cached_layers(self) -> List[str]:
        with self._lock:
            return list(self._cache)

    @property
    def total_dense_bytes(self) -> int:
        """Resident bytes if every layer were cached dense.

        Counts the float64 arrays the NumPy substrate materializes (the
        manifest's ``dense_bytes`` counts the FP32 checkpoint instead).
        """
        return self._total_dense_bytes

    @property
    def bytes_saved(self) -> int:
        """Dense bytes not resident right now (paid for with rebuilds)."""
        with self._lock:
            return self._total_dense_bytes - self._cached_bytes

    # ------------------------------------------------------------------
    # Cost estimates
    # ------------------------------------------------------------------
    def _estimate_seconds(self, name: str) -> float:
        """Estimated rebuild seconds for one layer.

        Caller holds ``self._lock`` (``_actual_bytes`` is updated
        under it as layers rebuild)."""
        nbytes = self._actual_bytes.get(name, self._assumed_bytes[name])
        return self.cost_model.estimate_seconds(
            self._layer_codec[name], nbytes, layer=name
        )

    def layer_cost_estimates(self) -> Dict[str, float]:
        """Per-layer estimated rebuild seconds at the current rates."""
        with self._lock:
            return {name: self._estimate_seconds(name) for name in self._specs}

    def _rate_for(self, rates, layer_rates, name: str) -> float:
        """One layer's seconds-per-byte from snapshotted rate maps."""
        layer_rate = layer_rates.get((self._layer_codec[name], name))
        if layer_rate is not None:
            return layer_rate
        return rates.get(
            self._layer_codec[name], self.cost_model.default_seconds_per_byte
        )

    def estimated_install_seconds(self) -> float:
        """Expected rebuild seconds for one pass over every layer.

        Layers resident right now are expected hits (zero rebuild);
        everything else is an expected miss — *discounted by the
        layer's observed hit rate*, so a working set that historically
        fits in the cache is not priced as all-misses — at the cost
        model's ``(codec, layer)`` rate (codec rate as the prior).
        This is the number the cost-aware batch policy amortizes over a
        batch and the cost-aware router compares across engines — it
        runs on the request queue's hot path, so hit counts are read
        under one engine-lock acquisition and both rate maps under one
        cost-model acquisition, instead of one per layer.
        """
        with self._lock:
            pending = [
                (
                    name,
                    self._actual_bytes.get(name, self._assumed_bytes[name]),
                    self.stats.layer_hit_rate(name),
                )
                for name in self._specs
                if name not in self._cache
            ]
        rates, layer_rates = self.cost_model.snapshot_all_rates()
        return sum(
            (1.0 - hit_rate) * self._rate_for(rates, layer_rates, name) * nbytes
            for name, nbytes, hit_rate in pending
        )

    def all_miss_install_seconds(self) -> float:
        """Rebuild seconds if *every* layer missed: the certain-miss
        ceiling :meth:`estimated_install_seconds` discounts from
        (residency and observed hit rates ignored)."""
        rates, layer_rates = self.cost_model.snapshot_all_rates()
        with self._lock:
            sizes = {
                name: self._actual_bytes.get(name, self._assumed_bytes[name])
                for name in self._specs
            }
        return sum(
            self._rate_for(rates, layer_rates, name) * nbytes
            for name, nbytes in sizes.items()
        )

    # ------------------------------------------------------------------
    def layer_weight(self, name: str) -> np.ndarray:
        """The dense weight for ``name`` (cached or rebuilt).

        The returned array is the cache's copy and is marked read-only;
        callers install it with ``module.weight.data[...] = w``.

        Safe for concurrent callers: hits return immediately, and only
        one thread rebuilds a cold layer at a time — the rest wait on
        the in-flight rebuild and share its result (counted as hits,
        since they paid no rebuild compute).  If a rebuild fails, its
        waiters retry, so each caller raises its own exception.

        With observability enabled, each call emits a ``rebuild.layer``
        span — nested under whatever span the calling thread has active
        (the engine's per-batch ``rebuild`` phase) — tagged with the
        layer, codec, hit/miss, dense bytes, and admission verdict.
        """
        obs = self.observability
        if not obs.enabled:
            return self._layer_weight(name, None)
        info: Dict = {}
        span = obs.tracer.start_span(
            "rebuild.layer",
            tags={"layer": name, "codec": self._layer_codec.get(name, "?")},
        )
        try:
            with obs.tracer.activate(span):
                weight = self._layer_weight(name, info)
        except BaseException as exc:
            obs.tracer.finish_span(span, error=type(exc).__name__, **info)
            raise
        obs.tracer.finish_span(span, **info)
        return weight

    def _layer_weight(self, name: str, info: Optional[Dict]) -> np.ndarray:
        """The uninstrumented implementation; ``info`` (when given) is
        filled with hit/miss, serving tier, dense bytes, and the
        admission verdict."""
        if name not in self._specs:
            raise KeyError(f"unknown layer {name!r}")
        claimed = None  # (tier, entry) faulted from a lower tier
        while True:
            with self._lock:
                cached = self._cache.get(name)
                if cached is not None:
                    self.stats.hits += 1
                    self.stats.record_access(name, hit=True)
                    saved = self._estimate_seconds(name)
                    self.stats.est_seconds_saved += saved
                    if self.ledger is not None:
                        self.ledger.credit_saved(saved)
                    self._cache.move_to_end(name)
                    if info is not None:
                        info["hit"] = True
                        info["tier"] = "dense-ram"
                        info["dense_bytes"] = cached.nbytes
                    return cached
                flight = self._inflight.get(name)
                if flight is None:
                    flight = self._inflight[name] = _InFlightRebuild()
                    self.stats.misses += 1
                    self.stats.record_access(name, hit=False)
                    # This thread owns the miss: claim the layer's blob
                    # from the closest lower tier (popped under the
                    # lock, so nobody else can reach it) and inflate it
                    # outside the lock.
                    for tier in self.tiers:
                        entry = tier.claim(name)
                        if entry is not None:
                            claimed = (tier, entry)
                            break
                    break
            flight.event.wait()
            if flight.weight is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.record_access(name, hit=True)
                    saved = self._estimate_seconds(name)
                    self.stats.est_seconds_saved += saved
                    if self.ledger is not None:
                        self.ledger.credit_saved(saved)
                if info is not None:
                    # Shared an in-flight rebuild: a hit (no compute
                    # paid here), flagged so traces can tell it apart.
                    info["hit"] = True
                    info["inflight_wait"] = True
                    info["tier"] = "dense-ram"
                    info["dense_bytes"] = flight.weight.nbytes
                return flight.weight
            # The in-flight rebuild failed; loop and rebuild ourselves.
        weight = None
        source = "rebuild"
        if claimed is not None:
            tier, entry = claimed
            weight, seconds = self._tier_load(tier, entry)
            if weight is None:
                # Corrupt/unreadable blob: a miss, not an error — fall
                # through to the full rebuild.
                with self._lock:
                    self.stats.record_tier(tier.name, "corrupt")
            else:
                source = tier.name
                self.cost_model.observe_tier_access(
                    tier.name, weight.nbytes, seconds
                )
        if weight is None:
            try:
                weight, seconds = self._rebuild(name)
            except BaseException:
                with self._lock:
                    self._inflight.pop(name, None)
                flight.event.set()
                raise
            self.cost_model.observe(
                self._layer_codec[name], weight.nbytes, seconds, layer=name
            )
        flight.weight = weight  # published before event.set()
        with self._lock:
            if source == "rebuild":
                self.stats.rebuilds += 1
                self.stats.rebuilt_bytes += weight.nbytes
                self.stats.rebuild_seconds += seconds
                if self.ledger is not None:
                    # Same event, same seconds: the tenant split of the
                    # fleet counter, so the two totals reconcile.
                    self.ledger.charge_rebuild(seconds)
            else:
                # Faulting from a tier paid `seconds` instead of a full
                # rebuild: count the fault and credit the difference.
                self.stats.record_tier(source, "hits")
                self.stats.record_tier(source, "fault_seconds", seconds)
                fault_saved = max(
                    0.0, self._estimate_seconds(name) - seconds
                )
                self.stats.est_seconds_saved += fault_saved
                if self.ledger is not None:
                    self.ledger.credit_saved(fault_saved)
            verdict = self._admit(name, weight)
            if source != "rebuild" and verdict == "admitted":
                self.stats.record_tier(source, "promotions")
            self._record_curve()
            self._inflight.pop(name, None)
        flight.event.set()
        if info is not None:
            info["hit"] = False
            info["tier"] = source
            info["dense_bytes"] = weight.nbytes
            info["rebuild_seconds"] = seconds
            info["admission"] = verdict
        return weight

    def _tier_load(self, tier, entry) -> "tuple[Optional[np.ndarray], float]":
        """Inflate one claimed tier entry (no locking): (weight, seconds).

        Split out so the offline simulator can charge estimated fault
        time instead of wall time, the same seam :meth:`_rebuild` is.
        """
        start = time.perf_counter()
        weight = tier.load(entry)
        return weight, time.perf_counter() - start

    def _rebuild(self, name: str) -> "tuple[np.ndarray, float]":
        """Decode one layer (no locking, no stats): (weight, seconds)."""
        start = time.perf_counter()
        weight = rebuild_layer_weight(self._payloads[name], self._specs[name])
        seconds = time.perf_counter() - start
        weight.setflags(write=False)
        return weight, seconds

    def _view(self, name: str, nbytes: int) -> CacheEntryView:
        # Caller holds self._lock.
        return CacheEntryView(
            name=name,
            nbytes=nbytes,
            codec=self._layer_codec[name],
            rebuild_seconds=self._estimate_seconds(name),
        )

    def _resident_views(self, exclude: Optional[str] = None) -> List[CacheEntryView]:
        # Caller holds self._lock.  OrderedDict order IS recency
        # (hits move_to_end), so views arrive LRU-first.
        return [
            self._view(cached_name, array.nbytes)
            for cached_name, array in self._cache.items()
            if cached_name != exclude
        ]

    def _admit(self, name: str, weight: np.ndarray) -> str:
        # Caller holds self._lock.  Returns the admission verdict
        # ("admitted" / "rejected" / "oversized") for the trace tag.
        nbytes = weight.nbytes
        self._actual_bytes[name] = nbytes
        if self.capacity_bytes is None:
            self._cache[name] = weight
            self._cached_bytes += nbytes
            self._cached_bytes_gauge.set(self._cached_bytes)
            self._attribute_residency(name, nbytes)
            return "admitted"
        if nbytes > self.capacity_bytes:
            # Larger than the whole dense cache: serve uncached, but a
            # lower tier may still hold its (smaller) blob.
            self._demote(name, weight)
            return "oversized"
        candidate = self._view(name, nbytes)
        free = self.capacity_bytes - self._cached_bytes
        if not self.policy.admit(candidate, self._resident_views(), free):
            self.stats.rejected += 1
            self._demote(name, weight)
            return "rejected"
        self._cache[name] = weight
        self._cached_bytes += nbytes
        self._attribute_residency(name, nbytes)
        while self._cached_bytes > self.capacity_bytes:
            resident = self._resident_views(exclude=name)
            if not resident:
                break  # only the candidate remains, and it fits
            victim = self.policy.victim(candidate, resident)
            if victim == name or victim not in self._cache:
                # Defensive against a misbehaving policy: fall back to
                # the LRU victim rather than looping forever.
                victim = next(iter(self._cache))
                if victim == name:
                    victim = resident[0].name
            evicted = self._cache.pop(victim)
            self._cached_bytes -= evicted.nbytes
            self.stats.evictions += 1
            self._release_residency(victim)
            self._demote(victim, evicted)
        self._cached_bytes_gauge.set(self._cached_bytes)
        return "admitted"

    # -- tenant residency attribution (caller holds self._lock) ---------
    def _attribute_residency(self, name: str, nbytes: int) -> None:
        if self.ledger is not None:
            self.ledger.attribute_residency((id(self), name), nbytes)

    def _release_residency(self, name: str) -> None:
        if self.ledger is not None:
            self.ledger.release_residency((id(self), name))

    # -- tier migration (caller holds self._lock) -----------------------
    def _demote(self, name: str, weight: np.ndarray) -> bool:
        """Push a layer leaving the dense tier down the hierarchy.

        Compresses the dense array once and offers the blob from the
        fastest lower tier down; True if some tier took it.  With no
        tiers configured this is a no-op and the layer is simply
        dropped (the pre-hierarchy behavior).
        """
        if not self.tiers:
            return False
        from repro.serving.tiers import compress_dense

        blob = compress_dense(weight)
        return self._place_blob(
            0,
            name,
            blob,
            dense_nbytes=weight.nbytes,
            dtype=str(weight.dtype),
            shape=tuple(weight.shape),
        )

    def _place_blob(
        self,
        index: int,
        name: str,
        blob: bytes,
        dense_nbytes: int,
        dtype: str,
        shape,
    ) -> bool:
        """Offer one blob to tiers ``index`` and below; cost-gated.

        Caller holds ``self._lock``.

        A tier only takes the blob when holding it there is priced as
        a win — the layer's full-rebuild estimate minus the tier's
        access estimate, which is also the ``rebuild_seconds`` value
        its placement policy ranks — and when its policy admits it.
        Tiers deeper than the first negative-savings tier are never
        tried (they are strictly slower).  Entries a tier evicts to
        make room cascade to the next tier down with their existing
        blobs; whatever falls off the bottom is discarded and will be
        rebuilt from the payload on its next access.
        """
        rebuild_estimate = self.cost_model.estimate_seconds(
            self._layer_codec[name], dense_nbytes, layer=name
        )
        for position in range(index, len(self.tiers)):
            tier = self.tiers[position]
            saved = rebuild_estimate - self.cost_model.estimate_tier_seconds(
                tier.name, dense_nbytes
            )
            if saved <= 0.0:
                break
            verdict, evicted = tier.store(
                name,
                blob,
                codec=self._layer_codec[name],
                dense_nbytes=dense_nbytes,
                dtype=dtype,
                shape=shape,
                saved_seconds=saved,
            )
            if verdict == "admitted":
                self.stats.record_tier(tier.name, "demotions")
                for entry in evicted:
                    self.stats.record_tier(tier.name, "evictions")
                    self._cascade_entry(position + 1, tier, entry)
                return True
            self.stats.record_tier(tier.name, "rejected")
        return False

    def _cascade_entry(self, index: int, source_tier, entry) -> None:
        """Move one evicted entry's blob to the next tier down (or drop
        it off the bottom of the hierarchy)."""
        if index >= len(self.tiers):
            source_tier.discard(entry)
            return
        blob = source_tier.extract(entry)
        if blob is None:
            return  # unreadable blob: nothing to cascade
        self._place_blob(
            index,
            entry.name,
            blob,
            dense_nbytes=entry.dense_nbytes,
            dtype=entry.dtype,
            shape=entry.shape,
        )

    def _record_curve(self) -> None:
        # Caller holds self._lock.
        curve = self.stats.curve
        curve.append(
            (self.stats.accesses, self._cached_bytes, self.stats.rebuild_seconds)
        )
        if len(curve) >= _CURVE_LIMIT:
            del curve[::2]

    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Touch every layer once (fills the cache up to capacity)."""
        for name in self._specs:
            self.layer_weight(name)

    def clear(self) -> None:
        with self._lock:
            for name in self._cache:
                self._release_residency(name)
            self._cache.clear()
            self._cached_bytes = 0
            self._cached_bytes_gauge.set(0)
            for tier in self.tiers:
                tier.clear()

    def close(self) -> None:
        """Release tier resources (spill files/directories) and empty
        the cache.  Idempotent; the engine stays usable afterwards (a
        closed disk tier re-creates its directory on the next spill)."""
        with self._lock:
            for name in self._cache:
                self._release_residency(name)
            self._cache.clear()
            self._cached_bytes = 0
            self._cached_bytes_gauge.set(0)
            for tier in self.tiers:
                tier.close()

    def tier_summaries(self) -> List[Dict]:
        """Residency snapshot of every lower tier, hierarchy order."""
        with self._lock:
            return [tier.as_dict() for tier in self.tiers]

    def reset_stats(self) -> None:
        """Fresh counters (cache contents kept) — so benchmarks can
        measure steady-state behavior after a warmup pass without
        rebuilding the engine.

        Resets *in place* under the engine lock: the stats object (and
        its metric instruments) keep their identity, so an access that
        raced the reset lands wholly in the old or wholly in the new
        epoch instead of splitting its miss and rebuild counts across
        two objects, and holders of ``engine.stats`` never go stale.
        """
        with self._lock:
            self.stats.reset()


class _InFlightRebuild:
    """One cold-miss rebuild in progress; waiters block on ``event``."""

    __slots__ = ("event", "weight")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.weight: Optional[np.ndarray] = None
