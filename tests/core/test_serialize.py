"""Tests for bit-exact serialization of the SmartExchange form."""

import numpy as np
import pytest

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange, smart_exchange_decompose
from repro.core.serialize import (
    decode_coefficient_codes,
    decomposition_payload,
    encode_coefficient_codes,
    load_compressed,
    pack_nibbles,
    payload_bytes,
    payload_weight,
    quantize_basis,
    save_compressed,
    unpack_nibbles,
)
from repro.core.storage import decomposition_bits

FAST = SmartExchangeConfig(max_iterations=5, target_row_sparsity=0.3)


class TestCodes:
    def test_roundtrip(self, rng):
        config = SmartExchangeConfig(max_iterations=5)
        decomposition = smart_exchange_decompose(
            rng.normal(size=(20, 3)), config
        )
        coefficient = decomposition.coefficient
        codes = encode_coefficient_codes(
            coefficient, decomposition.omega.p_min, decomposition.omega.p_max
        )
        decoded = decode_coefficient_codes(codes, decomposition.omega.p_min)
        np.testing.assert_array_equal(decoded, coefficient)

    def test_zero_maps_to_code_zero(self):
        codes = encode_coefficient_codes(np.zeros((2, 3)), -6, 0)
        assert (codes == 0).all()

    def test_codes_fit_bit_width(self, rng):
        config = SmartExchangeConfig(max_iterations=5, ce_bits=4)
        decomposition = smart_exchange_decompose(rng.normal(size=(12, 3)), config)
        codes = encode_coefficient_codes(
            decomposition.coefficient,
            decomposition.omega.p_min, decomposition.omega.p_max,
        )
        assert codes.max() < 16

    def test_too_many_exponents_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            encode_coefficient_codes(np.zeros((2, 2)), -20, 0, ce_bits=4)

    def test_out_of_window_value_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            encode_coefficient_codes(np.array([[8.0]]), -3, 0)


class TestNibblePacking:
    @pytest.mark.parametrize("count", [0, 1, 2, 7, 8, 33])
    def test_roundtrip(self, rng, count):
        codes = rng.integers(0, 16, size=count).astype(np.uint8)
        packed = pack_nibbles(codes)
        np.testing.assert_array_equal(unpack_nibbles(packed, count), codes)

    def test_packing_halves_bytes(self):
        codes = np.arange(16, dtype=np.uint8)
        assert pack_nibbles(codes).nbytes == 8


class TestBasisQuantization:
    def test_roundtrip_error_bounded(self, rng):
        basis = rng.normal(size=(3, 3))
        codes, scale = quantize_basis(basis)
        rebuilt = codes.astype(np.float64) * scale
        assert np.abs(rebuilt - basis).max() <= scale / 2 + 1e-12

    def test_zero_basis(self):
        codes, scale = quantize_basis(np.zeros((3, 3)))
        assert (codes == 0).all() and scale == 1.0


class TestPayload:
    def test_rebuild_close_to_float_form(self, rng):
        decomposition = smart_exchange_decompose(rng.normal(size=(24, 3)), FAST)
        payload = decomposition_payload(decomposition, FAST)
        rebuilt = payload_weight(payload)
        reference = decomposition.rebuild()
        # Only the 8-bit basis quantization separates the two.
        assert np.abs(rebuilt - reference).max() < 0.02 * max(
            np.abs(reference).max(), 1e-9
        ) + 1e-6

    def test_payload_size_matches_analytic_accounting(self, rng):
        decomposition = smart_exchange_decompose(rng.normal(size=(64, 3)), FAST)
        payload = decomposition_payload(decomposition, FAST)
        analytic_bits = decomposition_bits(decomposition, FAST).total_bits
        measured_bits = payload_bytes(payload) * 8
        # Byte rounding of the bitmap and nibble stream is the only
        # divergence from the bit-exact analytic accounting.
        assert abs(measured_bits - analytic_bits) <= 16

    def test_zero_rows_not_stored(self, rng):
        sparse_config = SmartExchangeConfig(max_iterations=5,
                                            target_row_sparsity=0.75)
        decomposition = smart_exchange_decompose(
            rng.normal(size=(64, 3)), sparse_config
        )
        dense_payload = decomposition_payload(
            smart_exchange_decompose(rng.normal(size=(64, 3)), FAST), FAST
        )
        sparse_payload = decomposition_payload(decomposition, sparse_config)
        assert sparse_payload["codes"].nbytes < dense_payload["codes"].nbytes


class TestModelSaveLoad:
    def _compressed_model(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(6, 4, rng=rng),
        )
        _, report = apply_smartexchange(model, FAST)
        return model, report

    def test_save_load_roundtrip(self, rng, tmp_path):
        model, report = self._compressed_model(rng)
        path = tmp_path / "model.npz"
        save_compressed(path, report, FAST)
        loaded = load_compressed(path)
        assert set(loaded) == {layer.name for layer in report.layers}
        for layer in report.layers:
            matrices = loaded[layer.name]
            assert len(matrices) == len(layer.decompositions)
            for matrix, decomposition in zip(matrices, layer.decompositions):
                np.testing.assert_allclose(
                    matrix, decomposition.rebuild(), atol=0.02
                )

    def test_payload_bytes_reported(self, rng, tmp_path):
        model, report = self._compressed_model(rng)
        total = save_compressed(tmp_path / "m.npz", report, FAST)
        analytic = report.storage.total_bits / 8
        assert total == pytest.approx(analytic, rel=0.15)

    def test_version_check(self, rng, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, __format__=np.array([99]), __layers__=np.array([0]))
        with pytest.raises(ValueError, match="version"):
            load_compressed(path)
