"""Tests for the proximal SmartExchange regularization (future work)."""

import numpy as np
import pytest

from repro import nn
from repro.core import SmartExchangeConfig, SmartExchangeModel, retrain
from repro.core.regularize import (
    apply_proximal_gradient,
    projection_targets,
    proximal_train_epoch,
    smartexchange_distance,
)

FAST = SmartExchangeConfig(max_iterations=3)


def make_wrapper(rng=None):
    rng = rng or np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(8, 4, rng=rng),
    )
    wrapper = SmartExchangeModel(model, FAST)
    wrapper.compress()
    return wrapper


def toy_task(rng):
    images = rng.normal(size=(32, 3, 8, 8))
    labels = rng.integers(0, 4, size=32)
    return images, labels


class TestProjectionTargets:
    def test_targets_match_live_weights_after_projection(self, rng):
        wrapper = make_wrapper(rng)
        targets = projection_targets(wrapper)
        modules = dict(wrapper.model.named_modules())
        for name, target in targets.items():
            np.testing.assert_allclose(modules[name].weight.data, target)

    def test_distance_zero_after_projection(self, rng):
        wrapper = make_wrapper(rng)
        assert smartexchange_distance(wrapper) == pytest.approx(0.0, abs=1e-9)

    def test_distance_grows_after_perturbation(self, rng):
        wrapper = make_wrapper(rng)
        wrapper.model[0].weight.data += 0.1
        assert smartexchange_distance(wrapper) > 0.01


class TestProximalGradient:
    def test_zero_strength_is_noop(self, rng):
        wrapper = make_wrapper(rng)
        targets = projection_targets(wrapper)
        wrapper.model[0].weight.grad = None
        apply_proximal_gradient(wrapper, targets, 0.0)
        assert wrapper.model[0].weight.grad is None

    def test_gradient_points_to_target(self, rng):
        wrapper = make_wrapper(rng)
        targets = projection_targets(wrapper)
        conv = wrapper.model[0]
        conv.weight.data += 0.5
        apply_proximal_gradient(wrapper, targets, 2.0)
        np.testing.assert_allclose(conv.weight.grad, 2.0 * 0.5
                                   * np.ones_like(conv.weight.data))

    def test_adds_to_existing_gradient(self, rng):
        wrapper = make_wrapper(rng)
        targets = projection_targets(wrapper)
        conv = wrapper.model[0]
        conv.weight.grad = np.ones_like(conv.weight.data)
        conv.weight.data += 1.0
        apply_proximal_gradient(wrapper, targets, 1.0)
        np.testing.assert_allclose(conv.weight.grad,
                                   2.0 * np.ones_like(conv.weight.data))

    def test_negative_strength_rejected(self, rng):
        wrapper = make_wrapper(rng)
        with pytest.raises(ValueError):
            apply_proximal_gradient(wrapper, {}, -1.0)


class TestProximalTraining:
    def test_penalty_keeps_weights_near_manifold(self, rng):
        images, labels = toy_task(rng)

        def drift(strength):
            wrapper = make_wrapper(np.random.default_rng(1))
            optimizer = nn.SGD(wrapper.model.parameters(), lr=0.05)
            if strength > 0:
                proximal_train_epoch(wrapper, images, labels, optimizer,
                                     strength, batch_size=16,
                                     rng=np.random.default_rng(2))
            else:
                from repro.nn.train import train_epoch
                train_epoch(wrapper.model, images, labels, optimizer, 16,
                            np.random.default_rng(2))
            return smartexchange_distance(wrapper)

        assert drift(5.0) < drift(0.0)

    def test_retrain_with_proximal_strength(self, rng):
        images, labels = toy_task(rng)
        wrapper = make_wrapper(rng)
        result = retrain(wrapper, images, labels, epochs=1, lr=0.05,
                         proximal_strength=1.0)
        assert len(result.reports) == 2
        assert result.final_report.compression_rate > 1.0
