"""Sparse index encodings and their bit overheads.

Three encodings the paper discusses (Section IV-A):

- **1-bit direct indexing** — one presence bit per element (or per vector,
  which is how SmartExchange uses it: index values 0/1 stand for vector
  sparsity, so the overhead is one bit per *row* instead of per scalar —
  the 18-vs-6-indices illustration of Fig. 3b).
- **Run-length coding (RLC)** — (zero-run, value) pairs with a fixed
  run-length field width.
- **Compressed row storage (CRS)** — per-row non-zero counts plus column
  indices.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


# ----------------------------------------------------------------------
# 1-bit direct indexing
# ----------------------------------------------------------------------
def direct_index_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a vector into (presence bitmap, packed non-zero values)."""
    values = np.asarray(values).reshape(-1)
    bitmap = (values != 0).astype(np.uint8)
    return bitmap, values[values != 0]


def direct_index_decode(bitmap: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`direct_index_encode`."""
    bitmap = np.asarray(bitmap).astype(bool)
    if int(bitmap.sum()) != len(packed):
        raise ValueError("bitmap population does not match packed length")
    out = np.zeros(bitmap.shape, dtype=np.asarray(packed).dtype)
    out[bitmap] = packed
    return out


def direct_index_overhead_bits(length: int) -> int:
    """One bit per indexed element (or per vector at vector granularity)."""
    return int(length)


# ----------------------------------------------------------------------
# Run-length coding
# ----------------------------------------------------------------------
def rlc_encode(values: np.ndarray, run_bits: int = 4) -> List[Tuple[int, float]]:
    """Encode as (zeros-before, value) pairs with bounded run fields.

    Runs longer than ``2**run_bits - 1`` are split by emitting explicit
    zero values, exactly as Eyeriss-style RLC does.
    """
    max_run = 2**run_bits - 1
    encoded: List[Tuple[int, float]] = []
    run = 0
    for value in np.asarray(values).reshape(-1).tolist():
        if value == 0:
            run += 1
            # A filler pair (max_run, 0.0) stands for max_run zeros plus
            # its own explicit zero value: max_run + 1 zeros in total.
            if run == max_run + 1:
                encoded.append((max_run, 0.0))
                run = 0
            continue
        encoded.append((run, float(value)))
        run = 0
    if run:
        encoded.append((run - 1, 0.0))
    return encoded


def rlc_decode(encoded: Sequence[Tuple[int, float]], length: int) -> np.ndarray:
    """Inverse of :func:`rlc_encode` (needs the original length)."""
    out: List[float] = []
    for run, value in encoded:
        out.extend([0.0] * run)
        out.append(value)
    if len(out) > length:
        raise ValueError("encoded stream longer than declared length")
    out.extend([0.0] * (length - len(out)))
    return np.asarray(out)


def rlc_overhead_bits(values: np.ndarray, run_bits: int = 4) -> int:
    """Index bits only (the run fields, one per emitted pair)."""
    return run_bits * len(rlc_encode(values, run_bits))


# ----------------------------------------------------------------------
# Compressed row storage
# ----------------------------------------------------------------------
def crs_encode(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(row_ptr, col_idx, values) of a 2-D matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("CRS encodes 2-D matrices")
    rows, cols = np.nonzero(matrix)
    values = matrix[rows, cols]
    row_ptr = np.zeros(matrix.shape[0] + 1, dtype=np.int64)
    for row in rows:
        row_ptr[row + 1] += 1
    row_ptr = np.cumsum(row_ptr)
    return row_ptr, cols.astype(np.int64), values


def crs_decode(
    row_ptr: np.ndarray, col_idx: np.ndarray, values: np.ndarray, shape: Tuple[int, int]
) -> np.ndarray:
    """Inverse of :func:`crs_encode`."""
    out = np.zeros(shape, dtype=np.asarray(values).dtype)
    for row in range(shape[0]):
        start, stop = int(row_ptr[row]), int(row_ptr[row + 1])
        out[row, col_idx[start:stop]] = values[start:stop]
    return out


def crs_overhead_bits(matrix: np.ndarray) -> int:
    """Index bits: column indices + row pointers at minimal widths."""
    matrix = np.asarray(matrix)
    rows, cols = matrix.shape
    nnz = int(np.count_nonzero(matrix))
    col_bits = max(1, int(np.ceil(np.log2(max(cols, 2)))))
    ptr_bits = max(1, int(np.ceil(np.log2(max(nnz + 1, 2)))))
    return nnz * col_bits + (rows + 1) * ptr_bits
