"""Dense passthrough codec: the no-trade baseline.

Stores the weight as plain FP32 — what a conventional checkpoint
holds.  Serving a ``dense`` bundle through the rebuild-on-read engine
measures the pipeline overhead every other codec's gains are judged
against (the paper's uncompressed baseline column).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import LayerPayload, check_codec


class DenseCodec:
    """FP32 passthrough: ``decode(encode(w))`` is ``w`` at FP32."""

    name = "dense"

    def encode(self, weight: np.ndarray) -> LayerPayload:
        weight = np.asarray(weight)
        return LayerPayload(
            codec=self.name,
            weight_shape=tuple(weight.shape),
            arrays={"weight": weight.astype(np.float32)},
        )

    def decode(self, payload: LayerPayload) -> np.ndarray:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return np.zeros(payload.weight_shape)
        return payload.arrays["weight"].astype(np.float64)

    def payload_bytes(self, payload: LayerPayload) -> int:
        check_codec(payload, self.name)
        return payload.nbytes
