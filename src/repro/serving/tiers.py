"""Lower tiers of the rebuild cache: compressed-in-RAM and disk spill.

The paper's trade — pay compute to rebuild weights instead of paying
memory to store them dense — is binary in a single-level cache: a layer
is either dense in RAM or rebuilt from scratch.  These tiers make it a
*hierarchy*.  A layer evicted from (or refused by) the dense tier is
demoted into a cheaper-per-byte form instead of being dropped, and a
miss in the dense tier faults the layer back from the closest tier that
holds it:

- **compressed-in-RAM** (``compressed-ram``) — the dense bytes, zlib-
  deflated, held in process memory.  A fault is one inflate: orders of
  magnitude cheaper than a ``smartexchange`` re-decode, at a fraction
  of the dense resident bytes.
- **disk spill** (``disk``) — the same blob written to a spill file.  A
  fault pays a file read plus the inflate; still far cheaper than a
  full rebuild for expensive codecs.

Both tiers store the *same* blob format (zlib level-1 over the dense
buffer, with dtype/shape kept in the in-RAM entry), so a demotion
cascade — dense → compressed → disk — passes blobs down without ever
re-materializing the dense array.  Tier capacity is charged in *blob*
bytes (``charge_bytes``), which is what the tier actually spends.

Each tier reuses the dense cache's :class:`~repro.serving.rebuild.
AdmissionPolicy` protocol as its placement policy: candidates are
offered as :class:`~repro.serving.rebuild.CacheEntryView` objects whose
``rebuild_seconds`` is the *seconds saved* by holding the layer at this
tier rather than rebuilding from scratch, so ``CostAwarePolicy`` ranks
tier residents by saved-seconds-per-blob-byte with no changes.

Thread model: tiers do **no locking of their own** — every bookkeeping
method (:meth:`CacheTier.claim`, :meth:`CacheTier.store`, …) is called
with the owning :class:`~repro.serving.rebuild.RebuildEngine`'s lock
held.  Only :meth:`CacheTier.load` (inflate / file read) runs outside
the lock, on an entry already claimed (popped) by the caller, so no
other thread can reach it.

Fault tolerance: a truncated or corrupted spill file (or blob) is a
*miss*, never an exception — :meth:`load` validates length and CRC and
returns ``None``, and the engine falls back to a full rebuild.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.rebuild import (
    AdmissionPolicy,
    CacheEntryView,
    make_admission_policy,
)

__all__ = [
    "CacheTier",
    "CompressedRamTier",
    "DiskSpillTier",
    "TierEntry",
    "compress_dense",
    "decompress_dense",
    "make_tiers",
]

# zlib level 1: the blob is transient working state, not an archive —
# fastest deflate wins, and on float weights higher levels buy little.
_ZLIB_LEVEL = 1


def compress_dense(weight: np.ndarray) -> bytes:
    """The tier blob for one dense weight: zlib over its raw buffer."""
    return zlib.compress(np.ascontiguousarray(weight).tobytes(), _ZLIB_LEVEL)


def decompress_dense(
    blob: bytes, dense_nbytes: int, dtype: str, shape: Tuple[int, ...]
) -> Optional[np.ndarray]:
    """Inflate a tier blob back to its dense array; ``None`` if the
    blob is corrupt or does not inflate to the recorded size."""
    try:
        raw = zlib.decompress(blob)
    except zlib.error:
        return None
    if len(raw) != dense_nbytes:
        return None
    try:
        weight = np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (TypeError, ValueError):
        return None
    # frombuffer over `bytes` is already read-only, matching the dense
    # cache's contract that returned arrays are not writable.
    return weight


class TierEntry:
    """In-RAM bookkeeping for one layer resident in a lower tier.

    The dtype/shape/CRC needed to validate and inflate the blob live
    *here*, never in the spill file — a corrupted file cannot lie about
    its own integrity check.  ``charge_bytes`` (the blob size) is what
    counts against the tier's capacity; ``saved_seconds`` is the
    rebuild-seconds estimate the placement gate priced the entry at.
    """

    __slots__ = (
        "name",
        "codec",
        "dense_nbytes",
        "charge_bytes",
        "dtype",
        "shape",
        "saved_seconds",
        "blob",
        "path",
        "crc",
    )

    def __init__(
        self,
        name: str,
        codec: str,
        dense_nbytes: int,
        charge_bytes: int,
        dtype: str,
        shape: Tuple[int, ...],
        saved_seconds: float,
    ) -> None:
        self.name = name
        self.codec = codec
        self.dense_nbytes = dense_nbytes
        self.charge_bytes = charge_bytes
        self.dtype = dtype
        self.shape = shape
        self.saved_seconds = saved_seconds
        self.blob: Optional[bytes] = None
        self.path: Optional[str] = None
        self.crc: int = 0


class CacheTier:
    """One level of the rebuild-cache hierarchy below the dense tier.

    Subclasses define where the blob lives (:meth:`_attach` /
    :meth:`_detach` / :meth:`extract` / :meth:`load`); this base owns
    the shared residency bookkeeping: an LRU-ordered entry table, blob-
    byte capacity accounting, and admission/eviction through the same
    :class:`~repro.serving.rebuild.AdmissionPolicy` protocol the dense
    tier uses.  ``capacity_bytes=None`` means unbounded.

    All bookkeeping methods are called under the owning engine's lock;
    see the module docstring for the full thread model.
    """

    name = "tier"

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        policy: Union[str, AdmissionPolicy, None] = None,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.policy = make_admission_policy(policy)
        self._entries: "OrderedDict[str, TierEntry]" = OrderedDict()
        self._charged_bytes = 0

    # -- residency bookkeeping (engine lock held) -----------------------
    @property
    def charged_bytes(self) -> int:
        return self._charged_bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def resident_names(self) -> List[str]:
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def claim(self, name: str) -> Optional[TierEntry]:
        """Pop ``name``'s entry for a fault (caller loads it outside
        the lock).  The entry leaves the tier immediately — the
        hierarchy is exclusive, and nobody else can touch a claimed
        entry's blob."""
        entry = self._entries.pop(name, None)
        if entry is None:
            return None
        self._charged_bytes -= entry.charge_bytes
        return entry

    def store(
        self,
        name: str,
        blob: bytes,
        codec: str,
        dense_nbytes: int,
        dtype: str,
        shape: Tuple[int, ...],
        saved_seconds: float,
    ) -> Tuple[str, List[TierEntry]]:
        """Offer one demoted blob to this tier.

        Returns ``(verdict, evicted)`` where verdict is ``"admitted"``
        / ``"rejected"`` / ``"oversized"`` (mirroring the dense tier's
        vocabulary) and ``evicted`` lists the entries pushed out to
        make room — the caller cascades those to the next tier down
        (their blobs are still extractable) or discards them.
        """
        stale = self.claim(name)
        if stale is not None:
            self._detach(stale)
        charge = len(blob)
        if self.capacity_bytes is not None and charge > self.capacity_bytes:
            return "oversized", []
        candidate = CacheEntryView(
            name=name, nbytes=charge, codec=codec,
            rebuild_seconds=saved_seconds,
        )
        if self.capacity_bytes is not None:
            free = self.capacity_bytes - self._charged_bytes
            if not self.policy.admit(candidate, self._views(), free):
                return "rejected", []
        entry = TierEntry(
            name=name,
            codec=codec,
            dense_nbytes=dense_nbytes,
            charge_bytes=charge,
            dtype=dtype,
            shape=shape,
            saved_seconds=saved_seconds,
        )
        self._attach(entry, blob)
        self._entries[name] = entry
        self._charged_bytes += charge
        evicted: List[TierEntry] = []
        while (
            self.capacity_bytes is not None
            and self._charged_bytes > self.capacity_bytes
        ):
            resident = self._views(exclude=name)
            if not resident:
                break  # only the candidate remains, and it fits
            victim = self.policy.victim(candidate, resident)
            if victim == name or victim not in self._entries:
                # Defensive against a misbehaving policy, same as the
                # dense tier: fall back to the LRU victim.
                victim = next(iter(self._entries))
                if victim == name:
                    victim = resident[0].name
            dropped = self._entries.pop(victim)
            self._charged_bytes -= dropped.charge_bytes
            evicted.append(dropped)
        return "admitted", evicted

    def _views(self, exclude: Optional[str] = None) -> List[CacheEntryView]:
        # OrderedDict order IS recency (stores append), LRU first.
        return [
            CacheEntryView(
                name=entry.name,
                nbytes=entry.charge_bytes,
                codec=entry.codec,
                rebuild_seconds=entry.saved_seconds,
            )
            for entry in self._entries.values()
            if entry.name != exclude
        ]

    def clear(self) -> None:
        """Drop every entry and release its resources."""
        for entry in self._entries.values():
            self._detach(entry)
        self._entries.clear()
        self._charged_bytes = 0

    def close(self) -> None:
        self.clear()

    def as_dict(self) -> Dict:
        return {
            "tier": self.name,
            "policy": self.policy.name,
            "capacity_bytes": self.capacity_bytes,
            "charged_bytes": self._charged_bytes,
            "entries": len(self._entries),
        }

    # -- blob storage (subclass responsibility) -------------------------
    def _attach(self, entry: TierEntry, blob: bytes) -> None:
        """Bind ``blob`` to a fresh entry (RAM pointer or spill file)."""
        raise NotImplementedError

    def _detach(self, entry: TierEntry) -> None:
        """Release a popped entry's resources without reading them."""
        raise NotImplementedError

    def extract(self, entry: TierEntry) -> Optional[bytes]:
        """The raw blob of a claimed entry (consumes its resources) —
        how an evicted entry cascades to the next tier down.  ``None``
        if the blob can no longer be read back intact."""
        raise NotImplementedError

    def load(self, entry: TierEntry) -> Optional[np.ndarray]:
        """Inflate a *claimed* entry back to its dense weight; runs
        outside the engine lock.  ``None`` means the blob was corrupt
        or unreadable — the caller treats it as a full miss.  The
        entry's resources are consumed either way."""
        blob = self.extract(entry)
        if blob is None:
            return None
        return decompress_dense(
            blob, entry.dense_nbytes, entry.dtype, entry.shape
        )

    def discard(self, entry: TierEntry) -> None:
        """Drop a claimed entry that will not be loaded or cascaded."""
        self._detach(entry)


class CompressedRamTier(CacheTier):
    """Tier 1: zlib blobs held in process memory."""

    name = "compressed-ram"

    def _attach(self, entry: TierEntry, blob: bytes) -> None:
        entry.blob = blob

    def _detach(self, entry: TierEntry) -> None:
        entry.blob = None

    def extract(self, entry: TierEntry) -> Optional[bytes]:
        blob = entry.blob
        entry.blob = None
        return blob


class DiskSpillTier(CacheTier):
    """Tier 2: zlib blobs spilled to files under one directory.

    The CRC and length of every blob stay in the in-RAM entry, so a
    truncated or bit-flipped spill file is detected on read and
    reported as a miss (``extract`` → ``None``), never raised.  With no
    ``directory`` a private temp dir is created on first spill and
    removed by :meth:`close`.
    """

    name = "disk"

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        policy: Union[str, AdmissionPolicy, None] = None,
        directory: Optional[str] = None,
    ) -> None:
        super().__init__(capacity_bytes=capacity_bytes, policy=policy)
        self._directory = directory
        self._owns_directory = False
        self._sequence = 0

    @property
    def directory(self) -> Optional[str]:
        return self._directory

    def _ensure_directory(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-spill-")
            self._owns_directory = True
        else:
            os.makedirs(self._directory, exist_ok=True)
        return self._directory

    def _attach(self, entry: TierEntry, blob: bytes) -> None:
        directory = self._ensure_directory()
        digest = hashlib.sha1(entry.name.encode("utf-8")).hexdigest()[:16]
        self._sequence += 1
        path = os.path.join(directory, f"{digest}-{self._sequence}.blob")
        with open(path, "wb") as handle:
            handle.write(blob)
        entry.path = path
        entry.crc = zlib.crc32(blob)

    def _detach(self, entry: TierEntry) -> None:
        path = entry.path
        entry.path = None
        if path is not None:
            try:
                os.remove(path)
            except OSError:
                pass

    def extract(self, entry: TierEntry) -> Optional[bytes]:
        path = entry.path
        if path is None:
            return None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            blob = None
        finally:
            self._detach(entry)
        if blob is None or len(blob) != entry.charge_bytes:
            return None
        if zlib.crc32(blob) != entry.crc:
            return None
        return blob

    def close(self) -> None:
        super().close()
        if self._owns_directory and self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None
            self._owns_directory = False


_TIER_FACTORIES = {
    "compressed": CompressedRamTier,
    "compressed-ram": CompressedRamTier,
    "disk": DiskSpillTier,
    "disk-spill": DiskSpillTier,
}


def make_tiers(
    spec: Union[str, Sequence[CacheTier], None],
    default_capacity: Optional[int] = None,
    policy: Union[str, AdmissionPolicy, None] = None,
    spill_dir: Optional[str] = None,
) -> List[CacheTier]:
    """Resolve a tier stack from a spec string (or pass instances through).

    A spec is a comma list of ``name[:capacity_bytes]`` tokens ordered
    fastest-first, e.g. ``"compressed:8388608,disk"``.  A leading
    ``dense`` / ``dense-ram`` token is accepted and ignored (the dense
    tier is the engine's own cache), so configs can name the whole
    hierarchy.  A compressed-RAM tier without an explicit capacity gets
    ``default_capacity`` (callers pass the engine's dense budget: the
    same RAM spend again, holding many more layers in deflated form);
    a disk tier defaults to unbounded.  ``policy`` is the placement
    policy for every created tier (LRU when ``None``); ``spill_dir``
    pins the disk tier's directory.
    """
    if spec is None:
        return []
    if not isinstance(spec, str):
        tiers = list(spec)
        for tier in tiers:
            if not isinstance(tier, CacheTier):
                raise TypeError(f"not a CacheTier: {tier!r}")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        return tiers
    tiers = []
    for position, token in enumerate(part.strip() for part in spec.split(",")):
        if not token:
            continue
        name, _, capacity_text = token.partition(":")
        name = name.strip().lower()
        if name in ("dense", "dense-ram"):
            if position == 0 and not capacity_text:
                continue
            raise ValueError(
                "the dense tier is the engine's own cache; it takes no "
                "capacity here and must come first"
            )
        factory = _TIER_FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown cache tier {name!r}; "
                f"known: {sorted(set(_TIER_FACTORIES))}"
            )
        if capacity_text:
            capacity: Optional[int] = int(capacity_text)
            if capacity <= 0:
                raise ValueError(f"tier {name!r} capacity must be positive")
        elif factory is CompressedRamTier:
            capacity = default_capacity
        else:
            capacity = None
        kwargs = {"capacity_bytes": capacity, "policy": policy}
        if factory is DiskSpillTier:
            kwargs["directory"] = spill_dir
        tiers.append(factory(**kwargs))
    names = [tier.name for tier in tiers]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cache tiers in spec {spec!r}")
    return tiers
