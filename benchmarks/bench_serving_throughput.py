"""Bench: batched vs unbatched, and worker-pool scaling, of the engine.

Publishes a compressed CNN to a temporary artifact store, then serves
the same synthetic request stream through
:class:`repro.serving.InferenceEngine` several ways — one-request-per-
forward (unbatched baseline), coalesced under the engine's batch policy
(offline), and through the online worker pool at a sweep of worker
counts — and reports requests/s (wall-clock), realized parallelism, and
the rebuild-cache hit rate.

Runs standalone (``python benchmarks/bench_serving_throughput.py``,
``--smoke`` for a CI-sized run, ``--workers 1,2,4`` to pick the sweep)
or under pytest-benchmark like the other benches.
"""

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.experiments.common import ExperimentResult
from repro.serving import ArtifactStore, BatchPolicy, InferenceEngine, ModelRegistry

REQUESTS = 64
BATCH_SIZE = 16
IMAGE_SHAPE = (3, 16, 16)
WORKER_SWEEP = (1, 2, 4)


def _build_model(seed: int) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


def _make_engine(batch_size: int) -> InferenceEngine:
    model = _build_model(seed=0)
    config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
    _, report = apply_smartexchange(model, config, model_name="bench-cnn")
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    store.publish(report, config, model=model)
    registry = ModelRegistry(store)
    return InferenceEngine(
        _build_model(seed=1),
        registry.get("bench-cnn"),
        policy=BatchPolicy(max_batch_size=batch_size, max_wait_s=0.001),
    )


def _row(engine: InferenceEngine, mode: str, workers: int) -> dict:
    summary = engine.summary()
    busy, wall = summary["busy_seconds"], summary["wall_seconds"]
    return {
        "mode": mode,
        "workers": workers,
        "requests": summary["requests"],
        "mean_batch": summary["mean_batch_size"],
        "throughput_rps": summary["throughput_rps"],
        # wall is the pool window; offline rows (no workers) are a
        # single thread, i.e. parallelism 1 by construction.
        "parallelism": busy / wall if wall else 1.0,
        "p50_ms": summary["request_latency_p50_ms"],
        "cache_hit_rate": summary["rebuild_hit_rate"],
    }


def run(requests: int = REQUESTS, worker_sweep=WORKER_SWEEP) -> ExperimentResult:
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))

    rows = []
    for label, batched in (("offline-unbatched", False), ("offline-batched", True)):
        engine = _make_engine(BATCH_SIZE)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.predict_many(samples, batched=batched)
        rows.append(_row(engine, label, workers=0))

    for workers in worker_sweep:
        engine = _make_engine(BATCH_SIZE)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.start(workers=workers)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        rows.append(_row(engine, f"online-w{workers}", workers=workers))

    unbatched, batched = (row["throughput_rps"] for row in rows[:2])
    online = {row["workers"]: row["throughput_rps"] for row in rows[2:]}
    scaling = online[max(online)] / online[min(online)] if len(online) > 1 else 1.0
    return ExperimentResult(
        experiment="serving throughput (batching + worker pool)",
        rows=rows,
        notes=(
            f"batching speedup {batched / unbatched:.2f}x; worker-pool "
            f"speedup {scaling:.2f}x at {max(online)} vs {min(online)} "
            f"worker(s) over {requests} requests at max batch {BATCH_SIZE}"
        ),
    )


def bench_serving_throughput(benchmark):
    from benchmarks.conftest import run_and_print

    result = run_and_print(benchmark, run)
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0]  # batched >= unbatched
    hit_rates = result.column("cache_hit_rate")
    assert all(rate > 0 for rate in hit_rates)
    assert all(rate > 0 for rate in result.column("throughput_rps"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: fewer requests, 1- and 2-worker sweep only",
    )
    parser.add_argument(
        "--workers",
        type=lambda text: tuple(int(n) for n in text.split(",")),
        default=None,
        help="comma-separated worker counts to sweep (default 1,2,4)",
    )
    args = parser.parse_args()
    requests = 16 if args.smoke else REQUESTS
    sweep = args.workers or ((1, 2) if args.smoke else WORKER_SWEEP)

    result = run(requests=requests, worker_sweep=sweep)
    print(result.as_table())
    print(result.notes)
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0], "batching did not help"
    assert all(rate > 0 for rate in throughput), "a mode served nothing"


if __name__ == "__main__":
    main()
