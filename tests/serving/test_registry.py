"""Model registry: lazy loading, caching, version resolution."""

import pytest

from repro.serving import ArtifactNotFoundError, ModelRegistry


class TestRegistry:
    def test_lazy_load_and_cache(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        assert registry.loaded() == []
        handle = registry.get(manifest.name)
        assert registry.loaded() == [f"{manifest.name}:{manifest.version}"]
        assert registry.get(manifest.name) is handle  # cached object

    def test_handle_contents(self, published):
        store, manifest, _, report, _ = published
        handle = ModelRegistry(store).get(manifest.name)
        assert handle.key == f"{manifest.name}:{manifest.version}"
        assert set(handle.payloads) == {l.name for l in report.layers}
        assert set(handle.layer_specs) == {l.name for l in report.layers}
        assert handle.residual is not None

    def test_latest_resolution_tracks_new_publishes(self, published):
        store, manifest, model, report, config = published
        registry = ModelRegistry(store)
        first = registry.get(manifest.name)
        store.publish(report, config, name=manifest.name, model=model)
        second = registry.get(manifest.name)
        assert first.version == "v1"
        assert second.version == "v2"
        # Both stay resident under their concrete versions.
        assert len(registry.loaded()) == 2

    def test_pinned_version(self, published):
        store, manifest, model, report, config = published
        store.publish(report, config, name=manifest.name, model=model)
        registry = ModelRegistry(store)
        assert registry.get(manifest.name, "v1").version == "v1"

    def test_unload(self, published):
        store, manifest, model, report, config = published
        store.publish(report, config, name=manifest.name, model=model)
        registry = ModelRegistry(store)
        registry.get(manifest.name, "v1")
        registry.get(manifest.name, "v2")
        registry.unload(manifest.name, "v1")
        assert registry.loaded() == [f"{manifest.name}:v2"]
        registry.unload(manifest.name)
        assert registry.loaded() == []

    def test_models_and_versions_passthrough(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        assert registry.models() == [manifest.name]
        assert registry.versions(manifest.name) == [manifest.version]

    def test_unknown_model(self, published):
        store, *_ = published
        with pytest.raises(ArtifactNotFoundError):
            ModelRegistry(store).get("nope")
