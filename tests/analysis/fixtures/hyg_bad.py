"""Hygiene violations: wall-clock duration timing, a deadline built
from time.time(), a bare except, a mutable default argument, and a
threading primitive constructed at import time."""

import threading
import time

IMPORT_LOCK = threading.Lock()


def measure(fn):
    start = time.time()
    fn()
    return time.time() - start


def wait_until(fn, timeout):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if fn():
            return True
    return False


def swallow(fn, log=[]):
    try:
        fn()
    except:
        log.append("error")
    return log
