"""DianNao: the dense baseline accelerator.

Models the classic NFU: ``Tn = 16`` output-neuron lanes, ``Ti = 64``
input lanes (16 x 64 = 1K 8-bit multipliers), adder trees, and NBin /
NBout / SB buffers.  No sparsity of any kind is exploited: every weight
and activation is fetched and multiplied.

Modeling choices (shared conventions with the other simulators):

- per-MAC operand accesses are served by pipeline registers (folded into
  the PE energy at one RF-access apiece for weight / input / psum);
- the global buffers see each unique datum once per tiling pass: inputs
  are broadcast across the 16 neuron lanes and re-read once per
  output-channel tile; weights benefit from wide SB lines, modeled as a
  reuse factor of 8 before SB is touched again.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.accelerator import (
    Accelerator,
    LayerResult,
    dram_tiling,
    lane_utilization,
)
from repro.hardware.layers import LayerWorkload
from repro.hardware.memory import assemble_result
from repro.hardware.resources import (
    BASELINE_BUFFERS,
    DRAM_BYTES_PER_CYCLE,
    MULTIPLIERS_8BIT,
)

TN_LANES = 16  # parallel output neurons
TI_LANES = MULTIPLIERS_8BIT // TN_LANES  # parallel inputs per neuron
WEIGHT_GB_REUSE = 8.0  # wide SB line reuse before re-access


class DianNao(Accelerator):
    name = "diannao"

    def simulate_layer(self, workload: LayerWorkload) -> LayerResult:
        spec = workload.spec
        macs = spec.macs * workload.batch

        weight_bytes = float(spec.weight_count)  # dense 8-bit
        input_bytes = float(spec.input_count) * workload.batch
        output_bytes = float(spec.output_count) * workload.batch

        dram_w, dram_i, dram_o = dram_tiling(
            weight_bytes,
            0.0 if workload.input_onchip else input_bytes,
            0.0 if workload.output_onchip else output_bytes,
            BASELINE_BUFFERS.weight_bytes,
            BASELINE_BUFFERS.input_bytes,
        )
        dram = {"weight": dram_w, "input": dram_i, "output": dram_o}

        m_tiles = int(np.ceil(spec.out_channels / TN_LANES))
        gb = {
            "input_read": input_bytes * m_tiles,
            "weight_read": macs / WEIGHT_GB_REUSE,
            "output_write": output_bytes,
        }

        utilization = lane_utilization(spec.out_channels, TN_LANES)
        utilization *= lane_utilization(spec.reduction_depth, TI_LANES)
        compute_cycles = macs / (MULTIPLIERS_8BIT * max(utilization, 1e-9))
        pe_energy = macs * (self.energy.mac + 3 * self.energy.register_file)
        compute_energy = {
            "pe": pe_energy,
            "accumulator": output_bytes * self.energy.adder,
        }
        return assemble_result(
            name=spec.name,
            macs=macs,
            effective_macs=macs,
            compute_cycles=compute_cycles,
            dram_bytes=dram,
            gb_bytes=gb,
            compute_energy_pj=compute_energy,
            energy_model=self.energy,
            buffers=BASELINE_BUFFERS,
            dram_bytes_per_cycle=DRAM_BYTES_PER_CYCLE,
        )
