"""Step 3 of Algorithm 1: channel-wise and vector-wise sparsification.

Granularity in the reshaped coefficient matrix (Section III-C):

- a *vector* is one **row** of ``Ce`` — it rebuilds one S-wide row of the
  original weight, so zeroing it creates the vector-wise sparsity the
  accelerator skips activations with;
- a *channel* is a contiguous block of R rows (one input channel of one
  filter); channel pruning is driven by BN scale factors and applied once.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def sparsify_elements(coefficient: np.ndarray, theta: float) -> np.ndarray:
    """Zero out elements with magnitude below ``theta``."""
    out = coefficient.copy()
    out[np.abs(out) < theta] = 0.0
    return out


def sparsify_rows(coefficient: np.ndarray, row_theta: float) -> np.ndarray:
    """Zero out rows whose max-magnitude falls below ``row_theta``."""
    out = coefficient.copy()
    row_mags = np.max(np.abs(out), axis=1) if out.size else np.zeros(0)
    out[row_mags < row_theta] = 0.0
    return out


def enforce_row_budget(
    coefficient: np.ndarray, max_nonzero_rows: Optional[int]
) -> np.ndarray:
    """Keep only the ``Sc`` highest-energy rows (the paper's Sc budget)."""
    if max_nonzero_rows is None:
        return coefficient
    if max_nonzero_rows < 0:
        raise ValueError("max_nonzero_rows must be >= 0")
    out = coefficient.copy()
    energies = np.linalg.norm(out, axis=1)
    alive = np.flatnonzero(energies > 0)
    if alive.size <= max_nonzero_rows:
        return out
    keep = alive[np.argsort(energies[alive])[::-1][:max_nonzero_rows]]
    mask = np.zeros(out.shape[0], dtype=bool)
    mask[keep] = True
    out[~mask] = 0.0
    return out


def sparsify_rows_to_fraction(
    coefficient: np.ndarray, target_fraction: float
) -> np.ndarray:
    """Zero the lowest-L2-norm rows until ``target_fraction`` are zero.

    Rows that are already zero count toward the target; if the matrix is
    already sparser than the target it is returned unchanged.
    """
    if not 0.0 <= target_fraction < 1.0:
        raise ValueError("target_fraction must be in [0, 1)")
    out = coefficient.copy()
    rows = out.shape[0]
    if rows == 0:
        return out
    want_zero = int(np.floor(target_fraction * rows))
    norms = np.linalg.norm(out, axis=1)
    already_zero = int((norms == 0).sum())
    extra = want_zero - already_zero
    if extra <= 0:
        return out
    alive = np.flatnonzero(norms > 0)
    victims = alive[np.argsort(norms[alive])[:extra]]
    out[victims] = 0.0
    return out


def channel_mask_from_bn(
    scale_factors: np.ndarray, channel_theta: float
) -> np.ndarray:
    """Boolean keep-mask over channels from BN |gamma| thresholding.

    At least one channel is always kept so the layer stays functional.
    """
    scale_factors = np.asarray(scale_factors, dtype=np.float64)
    keep = np.abs(scale_factors) >= channel_theta
    if not keep.any():
        keep[int(np.argmax(np.abs(scale_factors)))] = True
    return keep


def apply_channel_mask_rows(
    coefficient: np.ndarray, keep_channels: np.ndarray, rows_per_channel: int
) -> np.ndarray:
    """Zero the row-blocks of pruned channels in a reshaped ``Ce``.

    The reshaped conv matrix stacks channels as consecutive blocks of
    ``rows_per_channel`` (= R) rows; a pruned channel zeroes its block.
    """
    out = coefficient.copy()
    expected_rows = len(keep_channels) * rows_per_channel
    if out.shape[0] < expected_rows:
        raise ValueError(
            f"coefficient has {out.shape[0]} rows; channel mask needs "
            f">= {expected_rows}"
        )
    for channel, keep in enumerate(keep_channels):
        if keep:
            continue
        start = channel * rows_per_channel
        out[start : start + rows_per_channel] = 0.0
    return out
