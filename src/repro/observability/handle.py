"""The shared observability handle the serving stack threads through.

One :class:`Observability` object bundles the three concerns:

- a :class:`~repro.observability.tracing.Tracer` feeding a bounded
  :class:`~repro.observability.tracing.SpanCollector` (tracing),
- a fleet-wide metrics view: component registries (one per engine,
  one for the host) register themselves and
  :meth:`Observability.to_prometheus_text` /
  :meth:`Observability.to_json` merge them, labelling every series
  with its ``source`` (metrics),
- an optional :class:`~repro.observability.record.TraceRecorder` that
  persists one JSONL record per completed request (recording).

``Observability(enabled=False)`` — exposed as the module-level
:data:`NULL_OBSERVABILITY` null object — is what engines fall back to
when no handle is passed: every serving call site guards on
``obs.enabled`` before building spans or records, so the disabled hot
path pays one attribute check and nothing else.

Request lifecycle: the submitting thread calls
:meth:`Observability.begin_request`, which mints the trace id and
opens the root ``request`` span; the worker that completes the request
calls :meth:`Observability.finish_request`, which closes the root,
derives rebuild seconds from the span tree, and hands the record to
the recorder.  Arrival times are seconds since the handle's creation
(its *epoch*), so a recorded trace replays as a relative schedule.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.observability.metrics import MetricsRegistry, render_prometheus
from repro.observability.record import TraceRecorder
from repro.observability.tracing import Span, SpanCollector, Tracer

__all__ = ["NULL_OBSERVABILITY", "Observability", "RequestTrace"]

# The span names the serving engine emits for request phases, in
# wall-clock order.  Shared phase spans re-emitted for batch peers are
# tagged ``shared`` and excluded from breakdowns (the work was paid
# once per batch, not once per request).
REQUEST_PHASES = ("queue_wait", "rebuild", "compute")


class RequestTrace:
    """Per-request trace context: the root span plus routing facts.

    ``tenant`` is the submitting tenant (``None`` for untenanted
    traffic); it rides the trace from the front door to the worker so
    the recorded JSONL replays with tenancy intact.
    """

    __slots__ = ("trace_id", "root", "model", "engine", "arrival_s", "tenant")

    def __init__(
        self,
        root: Span,
        model: Optional[str],
        engine: Optional[str],
        arrival_s: float,
        tenant: Optional[str] = None,
    ) -> None:
        self.trace_id = root.trace_id
        self.root = root
        self.model = model
        self.engine = engine
        self.arrival_s = arrival_s
        self.tenant = tenant


def _nearest_rank(sorted_values: Sequence[float], point: float) -> float:
    """Nearest-rank percentile: always an observed sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(point / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


class Observability:
    """Tracing + metrics + trace recording behind one handle."""

    def __init__(
        self,
        trace_capacity: int = 4096,
        recorder: Optional[TraceRecorder] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.collector = SpanCollector(trace_capacity)
        self.tracer = Tracer(self.collector)
        self.metrics = MetricsRegistry()
        self.recorder = recorder
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._sources: "Dict[str, MetricsRegistry]" = {}

    # ------------------------------------------------------------------
    # Metrics federation
    # ------------------------------------------------------------------
    def register_metrics(self, registry: MetricsRegistry, name: str) -> str:
        """Attach a component registry under ``name`` (unique-ified
        with ``#n`` on collision); returns the name actually used."""
        with self._lock:
            unique, n = name, 1
            while unique in self._sources:
                if self._sources[unique] is registry:
                    return unique
                n += 1
                unique = f"{name}#{n}"
            self._sources[unique] = registry
        return unique

    def metric_sources(self) -> Dict[str, MetricsRegistry]:
        with self._lock:
            return dict(self._sources)

    def _merged_snapshot(self) -> List[Dict]:
        entries = self.metrics.snapshot()
        for name, registry in sorted(self.metric_sources().items()):
            entries.extend(registry.snapshot(extra_tags={"source": name}))
        return entries

    def to_prometheus_text(self) -> str:
        """One Prometheus text page over every registered source."""
        return render_prometheus(self._merged_snapshot())

    def to_json(self) -> str:
        import json
        import math

        entries = self._merged_snapshot()
        for entry in entries:
            if "buckets" in entry:
                entry["buckets"] = [
                    ["+Inf" if math.isinf(bound) else bound, count]
                    for bound, count in entry["buckets"]
                ]
        return json.dumps({"metrics": entries}, sort_keys=True)

    def snapshot(self) -> Dict:
        """Pull-based state dump safe to call from a live fleet."""
        return {
            "metrics": self._merged_snapshot(),
            "spans_buffered": len(self.collector),
            "spans_total": self.collector.total,
            "spans_dropped": self.collector.dropped,
            "records_written": (
                self.recorder.records_written if self.recorder else 0
            ),
        }

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def begin_request(
        self,
        model: Optional[str] = None,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Optional[RequestTrace]:
        """Mint a trace and open the root ``request`` span (None when
        disabled — callers thread the returned handle through)."""
        if not self.enabled:
            return None
        tags: Dict = {}
        if model is not None:
            tags["model"] = model
        if engine is not None:
            tags["engine"] = engine
        if tenant is not None:
            tags["tenant"] = tenant
        root = self.tracer.start_span("request", parent=None, tags=tags)
        return RequestTrace(
            root, model=model, engine=engine,
            arrival_s=root.start_s - self.epoch,
            tenant=tenant,
        )

    def finish_request(
        self,
        trace: RequestTrace,
        end_s: Optional[float] = None,
        batch_id: Optional[int] = None,
        error: Optional[str] = None,
        **tags,
    ) -> Optional[Dict]:
        """Close the request's root span and (if recording) persist its
        record.  Rebuild seconds are derived from the span tree —
        the sum of the root's finished ``rebuild`` children."""
        if not self.enabled:
            return None
        root = trace.root
        if batch_id is not None:
            tags["batch_id"] = batch_id
        if error is not None:
            tags["error"] = error
        self.tracer.finish_span(root, end_s=end_s, **tags)
        rebuild_s = sum(
            child.duration_s or 0.0
            for child in root.children
            if child.name == "rebuild"
        )
        if self.recorder is None:
            return None
        return self.recorder.record_request(
            trace_id=trace.trace_id,
            model=trace.model if trace.model is not None else tags.get("model"),
            engine=trace.engine if trace.engine is not None else tags.get("engine"),
            arrival_s=trace.arrival_s,
            latency_s=root.duration_s or 0.0,
            rebuild_s=rebuild_s,
            batch_id=batch_id,
            tenant=(
                trace.tenant if trace.tenant is not None
                else tags.get("tenant")
            ),
            spans=root.as_tree(),
            error=error,
        )

    # ------------------------------------------------------------------
    # Span-derived views
    # ------------------------------------------------------------------
    def spans(self) -> List[Dict]:
        """Snapshot of the buffered spans (oldest first)."""
        return self.collector.export()

    def latency_breakdown(
        self,
        phases: Iterable[str] = REQUEST_PHASES,
        engine: Optional[str] = None,
    ) -> Dict[str, Dict]:
        """Per-phase latency summary from the buffered spans.

        Returns ``{phase: {count, p50_ms, p95_ms, mean_ms, total_s}}``
        over finished spans of each phase name, optionally filtered to
        one engine's spans (``tags["engine"]``).  Spans tagged
        ``shared`` (phase costs re-attributed to batch peers) are
        skipped so a batch's install/compute is counted once.
        """
        wanted = tuple(phases)
        samples: Dict[str, List[float]] = {phase: [] for phase in wanted}
        for span in self.collector.export():
            name = span["name"]
            if name not in samples or span["duration_s"] is None:
                continue
            tags = span.get("tags") or {}
            if tags.get("shared"):
                continue
            if engine is not None and tags.get("engine") != engine:
                continue
            samples[name].append(span["duration_s"])
        out: Dict[str, Dict] = {}
        for phase in wanted:
            values = sorted(samples[phase])
            total = sum(values)
            out[phase] = {
                "count": len(values),
                "p50_ms": _nearest_rank(values, 50.0) * 1e3,
                "p95_ms": _nearest_rank(values, 95.0) * 1e3,
                "mean_ms": (total / len(values) * 1e3) if values else 0.0,
                "total_s": total,
            }
        return out


NULL_OBSERVABILITY = Observability(trace_capacity=1, enabled=False)
"""Shared null object: the default ``observability=`` of every engine.
Call sites guard on ``.enabled``, so the disabled hot path costs one
attribute check."""
