"""Property tests: simulator outputs respond monotonically to inputs.

These invariants are what make the normalized comparisons trustworthy:
more sparsity can never cost more, bigger layers can never be cheaper.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    BitPragmatic,
    CambriconX,
    SCNN,
    SmartExchangeAccelerator,
)
from tests.hardware.test_accelerators import conv_workload

fractions = st.floats(0.0, 0.9)


@settings(max_examples=25, deadline=None)
@given(low=fractions, high=fractions)
def test_se_energy_monotone_in_vector_sparsity(low, high):
    low, high = sorted((low, high))
    accelerator = SmartExchangeAccelerator()
    result_low = accelerator.simulate_layer(conv_workload(weight_vector=low))
    result_high = accelerator.simulate_layer(conv_workload(weight_vector=high))
    assert result_high.total_energy_pj <= result_low.total_energy_pj + 1e-6
    assert result_high.cycles <= result_low.cycles + 1e-6


@settings(max_examples=25, deadline=None)
@given(low=fractions, high=fractions)
def test_se_cycles_monotone_in_booth_sparsity(low, high):
    low, high = sorted((low, high))
    accelerator = SmartExchangeAccelerator()
    result_low = accelerator.simulate_layer(conv_workload(act_booth=low))
    result_high = accelerator.simulate_layer(conv_workload(act_booth=high))
    assert result_high.compute_cycles <= result_low.compute_cycles + 1e-6


@settings(max_examples=25, deadline=None)
@given(low=fractions, high=fractions)
def test_cambricon_monotone_in_weight_sparsity(low, high):
    low, high = sorted((low, high))
    accelerator = CambriconX()
    result_low = accelerator.simulate_layer(conv_workload(weight_element=low))
    result_high = accelerator.simulate_layer(conv_workload(weight_element=high))
    assert result_high.total_dram_bytes <= result_low.total_dram_bytes + 1e-6


@settings(max_examples=25, deadline=None)
@given(low=fractions, high=fractions)
def test_scnn_monotone_in_act_sparsity(low, high):
    low, high = sorted((low, high))
    accelerator = SCNN()
    result_low = accelerator.simulate_layer(conv_workload(act_element=low))
    result_high = accelerator.simulate_layer(conv_workload(act_element=high))
    assert result_high.effective_macs <= result_low.effective_macs + 1e-6


@settings(max_examples=25, deadline=None)
@given(low=fractions, high=fractions)
def test_bit_pragmatic_monotone_in_bit_sparsity(low, high):
    low, high = sorted((low, high))
    accelerator = BitPragmatic()
    result_low = accelerator.simulate_layer(conv_workload(act_bit=low))
    result_high = accelerator.simulate_layer(conv_workload(act_bit=high))
    assert result_high.compute_cycles <= result_low.compute_cycles + 1e-6


@settings(max_examples=20, deadline=None)
@given(channels=st.sampled_from([16, 32, 64, 128]))
def test_bigger_layers_cost_more(channels):
    accelerator = SmartExchangeAccelerator()
    small = accelerator.simulate_layer(conv_workload(in_channels=channels))
    big = accelerator.simulate_layer(conv_workload(in_channels=channels * 2))
    assert big.total_energy_pj > small.total_energy_pj
    assert big.macs == 2 * small.macs


@settings(max_examples=20, deadline=None)
@given(sparsity=st.floats(0.0, 0.95))
def test_se_storage_never_exceeds_dense_4bit_equivalent(sparsity):
    """SE storage = 4-bit coefficients + overheads; even dense it must
    stay below 8-bit dense storage (the baseline weight format)."""
    from repro.hardware.layers import (
        dense_storage_bits,
        smartexchange_storage_bits,
    )
    spec = conv_workload().spec
    assert smartexchange_storage_bits(spec, sparsity) < dense_storage_bits(spec, 8)
