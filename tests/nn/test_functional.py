"""Tests for conv/pool/norm/upsample primitives against naive references."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from tests.conftest import assert_grad_matches


def naive_conv2d(x, w, b, stride, pad, groups=1, dilation=1):
    """Direct-loop reference convolution."""
    n, c, h, width = x.shape
    m, cg, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (x.shape[2] - (kh - 1) * dilation - 1) // stride + 1
    out_w = (x.shape[3] - (kw - 1) * dilation - 1) // stride + 1
    out = np.zeros((n, m, out_h, out_w))
    mg = m // groups
    for ni in range(n):
        for mi in range(m):
            g = mi // mg
            for oy in range(out_h):
                for ox in range(out_w):
                    acc = 0.0
                    for ci in range(cg):
                        for ky in range(kh):
                            for kx in range(kw):
                                acc += (
                                    w[mi, ci, ky, kx]
                                    * x[ni, g * cg + ci,
                                        oy * stride + ky * dilation,
                                        ox * stride + kx * dilation]
                                )
                    out[ni, mi, oy, ox] = acc
    if b is not None:
        out += b.reshape(1, m, 1, 1)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=pad)
        np.testing.assert_allclose(
            out.numpy(), naive_conv2d(x, w, b, stride, pad), atol=1e-10
        )

    def test_dilation_matches_naive(self, rng):
        x = rng.normal(size=(1, 2, 9, 9))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=2, dilation=2)
        np.testing.assert_allclose(
            out.numpy(), naive_conv2d(x, w, None, 1, 2, dilation=2), atol=1e-10
        )

    def test_depthwise_matches_naive(self, rng):
        x = rng.normal(size=(1, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1, groups=4)
        np.testing.assert_allclose(
            out.numpy(), naive_conv2d(x, w, None, 1, 1, groups=4), atol=1e-10
        )

    def test_grouped_conv_matches_naive(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(6, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1, groups=2)
        np.testing.assert_allclose(
            out.numpy(), naive_conv2d(x, w, None, 1, 1, groups=2), atol=1e-10
        )

    def test_pointwise_conv(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w), None)
        expected = np.einsum("mc,nchw->nmhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out.numpy(), expected, atol=1e-10)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum().backward()
        scalar = lambda: float(
            (F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                      stride=2, padding=1).numpy() ** 2).sum()
        )
        assert_grad_matches(x, scalar)
        assert_grad_matches(w, scalar)
        assert_grad_matches(b, scalar)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError, match="input channels"):
            F.conv2d(x, w)

    def test_kernel_too_large_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError, match="does not fit"):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_with_padding_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7, 7)))
        out = F.max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (1, 2, 4, 4)

    def test_max_pool_padding_never_wins(self):
        # All-negative input: -inf padding must not leak into the output.
        x = -np.abs(np.arange(1, 17.0)).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 3, stride=2, padding=1)
        assert np.all(np.isfinite(out.numpy()))
        assert out.numpy().max() <= x.max()

    def test_pool_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        (F.max_pool2d(x, 2) ** 2).sum().backward()
        assert_grad_matches(
            x, lambda: float((F.max_pool2d(Tensor(x.data), 2).numpy() ** 2).sum())
        )

    def test_avg_pool_gradients_with_padding(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        (F.avg_pool2d(x, 3, stride=2, padding=1) ** 2).sum().backward()
        assert_grad_matches(
            x,
            lambda: float(
                (F.avg_pool2d(Tensor(x.data), 3, stride=2, padding=1).numpy() ** 2).sum()
            ),
        )

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            out.numpy()[:, :, 0, 0], x.mean(axis=(2, 3))
        )


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        gamma, beta = Parameter(np.ones(4)), Parameter(np.zeros(4))
        out = F.batch_norm(x, gamma, beta, np.zeros(4), np.ones(4), training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=(0, 2, 3)), 0, atol=1e-8)
        np.testing.assert_allclose(out.numpy().std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(loc=5.0, size=(16, 2, 3, 3)))
        mean, var = np.zeros(2), np.ones(2)
        F.batch_norm(x, Parameter(np.ones(2)), Parameter(np.zeros(2)),
                     mean, var, training=True, momentum=1.0)
        np.testing.assert_allclose(mean, x.numpy().mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        mean = np.array([1.0, -1.0])
        var = np.array([4.0, 9.0])
        out = F.batch_norm(x, Parameter(np.ones(2)), Parameter(np.zeros(2)),
                           mean, var, training=False, eps=0.0)
        expected = (x.numpy() - mean.reshape(1, 2, 1, 1)) / np.sqrt(
            var.reshape(1, 2, 1, 1)
        )
        np.testing.assert_allclose(out.numpy(), expected)

    def test_2d_input_supported(self, rng):
        x = Tensor(rng.normal(size=(10, 3)))
        out = F.batch_norm(x, Parameter(np.ones(3)), Parameter(np.zeros(3)),
                           np.zeros(3), np.ones(3), training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=0), 0, atol=1e-8)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        gamma = Parameter(rng.normal(size=2) + 1.0)
        beta = Parameter(rng.normal(size=2))
        mean, var = np.zeros(2), np.ones(2)
        out = F.batch_norm(x, gamma, beta, mean.copy(), var.copy(), training=True)
        (out**2).sum().backward()
        scalar = lambda: float(
            (F.batch_norm(Tensor(x.data), gamma, beta, mean.copy(), var.copy(),
                          training=True).numpy() ** 2).sum()
        )
        assert_grad_matches(x, scalar)


class TestResampling:
    def test_nearest_upsample_values(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = F.upsample_nearest(Tensor(x), 2)
        np.testing.assert_allclose(
            out.numpy()[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_nearest_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        (F.upsample_nearest(x, 2) ** 2).sum().backward()
        assert_grad_matches(
            x,
            lambda: float((F.upsample_nearest(Tensor(x.data), 2).numpy() ** 2).sum()),
        )

    def test_bilinear_identity_at_same_size(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = F.upsample_bilinear(Tensor(x), 4, 4)
        np.testing.assert_allclose(out.numpy(), x, atol=1e-10)

    def test_bilinear_preserves_constant(self):
        x = np.full((1, 2, 3, 3), 7.0)
        out = F.upsample_bilinear(Tensor(x), 9, 5)
        np.testing.assert_allclose(out.numpy(), 7.0)

    def test_bilinear_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 4)), requires_grad=True)
        (F.upsample_bilinear(x, 5, 6) ** 2).sum().backward()
        assert_grad_matches(
            x,
            lambda: float(
                (F.upsample_bilinear(Tensor(x.data), 5, 6).numpy() ** 2).sum()
            ),
        )


class TestSoftmaxDropout:
    def test_log_softmax_normalizes(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        probs = np.exp(F.log_softmax(x, axis=1).numpy())
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_log_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.log_softmax(Tensor(x), axis=1).numpy()
        b = F.log_softmax(Tensor(x + 100.0), axis=1).numpy()
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (F.log_softmax(x, axis=1)[np.arange(3), [0, 1, 2]]).sum().backward()
        scalar = lambda: float(
            F.log_softmax(Tensor(x.data), axis=1).numpy()[np.arange(3), [0, 1, 2]].sum()
        )
        assert_grad_matches(x, scalar)

    def test_softmax_matches_exp_logsoftmax(self, rng):
        x = rng.normal(size=(2, 5))
        np.testing.assert_allclose(
            F.softmax(Tensor(x), axis=1).numpy(),
            np.exp(F.log_softmax(Tensor(x), axis=1).numpy()),
        )

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_dropout_preserves_expectation(self):
        generator = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.4, training=True, rng=generator)
        assert abs(out.numpy().mean() - 1.0) < 0.02
