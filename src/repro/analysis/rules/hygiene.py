"""TIM001 / EXC001 / ARG001 / THR001 — time discipline & hygiene.

- **TIM001**: ``time.time()`` is wall-clock — NTP steps it, VMs warp
  it — so durations and deadlines must use ``time.monotonic()`` or
  ``time.perf_counter()``.  The rule flags ``time.time()`` used in
  subtraction/addition arithmetic, comparisons, or assigned to
  duration-ish names (``start``, ``t0``, ``deadline``, ...).
  Timestamps (``created=time.time()``) are legitimate and not
  flagged.
- **EXC001**: bare ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch ``Exception`` (or ``BaseException``
  deliberately) instead.
- **ARG001**: mutable default arguments alias across calls.
- **THR001**: ``threading`` primitives constructed at import time are
  inherited in a bad state by forked workers (a lock held at fork
  time stays held forever in the child); modules imported by
  worker-spawned processes must create them lazily or register an
  ``os.register_at_fork`` reset.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.astutil import build_parents, dotted_name, leaf_name
from repro.analysis.core import Finding, Rule
from repro.analysis.walker import SourceFile

_DURATION_NAME_RE = re.compile(
    r"(?:^|_)(start|begin|end|t0|t1|elapsed|deadline|duration)(?:_|$)",
    re.IGNORECASE,
)

_THREADING_PRIMITIVES = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}


def _imports_time_time(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "time" for alias in node.names):
                return True
    return False


def _threading_names(tree: ast.Module) -> Set[str]:
    """Primitive names imported bare from ``threading``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _THREADING_PRIMITIVES:
                    names.add(alias.asname or alias.name)
    return names


class TimeDisciplineRule(Rule):
    id = "TIM001"
    name = "time-discipline"
    description = (
        "durations/deadlines must use monotonic()/perf_counter(), "
        "not time.time()"
    )

    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        tree = source.tree
        parents = build_parents(tree)
        bare_time = _imports_time_time(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            if not self._is_wall_clock(node.func, bare_time):
                continue
            reason = self._duration_context(node, parents)
            if reason is not None:
                yield self.finding(
                    source,
                    node,
                    f"time.time() used {reason}; wall-clock time can "
                    f"step backwards — use time.monotonic() or "
                    f"time.perf_counter()",
                )

    @staticmethod
    def _is_wall_clock(func: ast.AST, bare_time: bool) -> bool:
        name = dotted_name(func)
        if name == "time.time":
            return True
        if bare_time and isinstance(func, ast.Name) and func.id == "time":
            return True
        return False

    @staticmethod
    def _duration_context(
        node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[str]:
        parent = parents.get(node)
        if isinstance(parent, ast.BinOp):
            if isinstance(parent.op, ast.Sub):
                return "in duration arithmetic (subtraction)"
            if isinstance(parent.op, ast.Add):
                return "in deadline arithmetic (addition)"
        if isinstance(parent, ast.Compare):
            return "in a deadline comparison"
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else getattr(target, "attr", None)
                )
                if name and _DURATION_NAME_RE.search(name):
                    return f"to time a duration (assigned to {name!r})"
        return None


class BareExceptRule(Rule):
    id = "EXC001"
    name = "bare-except"
    description = "no bare except: — it swallows KeyboardInterrupt"

    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source,
                    node,
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit; catch Exception (or a narrower type) "
                    "instead",
                )


class MutableDefaultRule(Rule):
    id = "ARG001"
    name = "mutable-default"
    description = "no mutable default arguments"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque"}

    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults: List[Optional[ast.AST]] = list(args.defaults) + list(
                args.kw_defaults
            )
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    func_name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        source,
                        default,
                        f"mutable default argument in {func_name}(); "
                        f"the same object is shared across every call "
                        f"— default to None and build inside",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            return leaf_name(node.func) in self._MUTABLE_CALLS
        return False


class ImportTimeThreadingRule(Rule):
    id = "THR001"
    name = "import-time-threading"
    description = (
        "no threading primitives constructed at module import time"
    )

    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        tree = source.tree
        bare_names = _threading_names(tree)
        yield from self._scan_body(source, tree.body, bare_names)

    def _scan_body(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        bare_names: Set[str],
    ) -> Iterable[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.If, ast.Try)):
                # Still module scope: conditional imports, try/except
                # fallbacks.
                for block in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                    getattr(stmt, "finalbody", []),
                ):
                    yield from self._scan_body(source, block, bare_names)
                for handler in getattr(stmt, "handlers", []):
                    yield from self._scan_body(
                        source, handler.body, bare_names
                    )
                continue
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr)):
                continue
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            for node in ast.walk(value):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_primitive_ctor(node.func, bare_names):
                    primitive = leaf_name(node.func)
                    yield self.finding(
                        source,
                        node,
                        f"threading.{primitive}() constructed at import "
                        f"time; a fork while it is held leaves the "
                        f"child's copy locked forever — create it "
                        f"lazily or pair it with os.register_at_fork()",
                    )

    @staticmethod
    def _is_primitive_ctor(func: ast.AST, bare_names: Set[str]) -> bool:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _THREADING_PRIMITIVES
        ):
            return True
        if isinstance(func, ast.Name) and func.id in bare_names:
            return True
        return False
