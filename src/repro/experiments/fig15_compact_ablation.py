"""Figure 15: the dedicated compact-model dataflow ablation.

Per depth-wise layer of MobileNetV2, energy and latency with and without
the dedicated design (depth-wise rows spread over PE lines + clustered
MAC arrays).  The paper reports up to 28.8% energy and 38.3-65.7%
latency reductions; its ablations assume sufficient DRAM bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware import (
    SmartExchangeAccelerator,
    SmartExchangeAcceleratorConfig,
    build_workloads,
)
from repro.hardware.layers import LayerKind

# Paper's Fig. 15 picks MobileNetV2 layer numbers 5, 20, 23, 38; our
# depth-wise inventory indexes them by block.
PAPER_LAYER_BLOCKS = (1, 6, 7, 12)


def run(all_layers: bool = False) -> ExperimentResult:
    table = ExperimentResult(
        "Figure 15 — depth-wise layers w/ and w/o the dedicated compact design"
    )
    config = SmartExchangeAcceleratorConfig(sufficient_dram_bandwidth=True)
    with_design = SmartExchangeAccelerator(config)
    without_design = SmartExchangeAccelerator(
        config.with_overrides(dedicated_compact_dataflow=False)
    )
    workloads = build_workloads("mobilenetv2")
    depthwise = [w for w in workloads if w.spec.kind == LayerKind.DEPTHWISE]
    picks = range(len(depthwise)) if all_layers else PAPER_LAYER_BLOCKS
    for index in picks:
        workload = depthwise[index]
        on = with_design.simulate_layer(workload)
        off = without_design.simulate_layer(workload)
        table.rows.append({
            "layer": workload.spec.name,
            "energy_saving_pct": 100 * (1 - on.total_energy_pj / off.total_energy_pj),
            "latency_saving_pct": 100 * (1 - on.cycles / off.cycles),
            "cycles_with": on.cycles,
            "cycles_without": off.cycles,
        })
    table.notes = (
        "Paper: energy savings 6.4-28.8%, latency savings 38.3-65.7% on "
        "the selected MobileNetV2 depth-wise layers."
    )
    return table
