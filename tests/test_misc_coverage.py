"""Remaining coverage: small paths not exercised elsewhere."""

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import ExperimentResult
from repro.nn.tensor import Tensor


class TestLossEdges:
    def test_mean_iou_ignores_absent_classes(self):
        labels = np.zeros((4, 4), dtype=int)
        # Class 1 never appears in either map: excluded from the mean.
        assert nn.mean_iou(labels, labels, num_classes=2) == 1.0

    def test_mean_iou_empty_everything(self):
        # No class present at all in a 0-class setting -> defined as 0.
        assert nn.mean_iou(np.zeros((2, 2), dtype=int),
                           np.zeros((2, 2), dtype=int), num_classes=0) == 0.0

    def test_top_k_caps_at_class_count(self):
        logits = np.array([[1.0, 2.0]])
        assert nn.top_k_accuracy(logits, np.array([0]), k=10) == 1.0


class TestExperimentResultRendering:
    def test_notes_rendered(self):
        result = ExperimentResult("t", rows=[{"a": 1}], notes="hello")
        assert "note: hello" in result.as_table()

    def test_mixed_columns_union(self):
        result = ExperimentResult("t", rows=[{"a": 1}, {"b": 2}])
        assert result.column_names() == ["a", "b"]
        table = result.as_table()
        assert "a" in table and "b" in table

    def test_float_formatting(self):
        result = ExperimentResult("t", rows=[{"x": 3.14159265}])
        assert "3.142" in result.as_table()


class TestTrainHistory:
    def test_final_accuracy_prefers_eval(self):
        from repro.nn.train import TrainHistory
        history = TrainHistory(train_accuracies=[0.5], eval_accuracies=[0.7])
        assert history.final_accuracy == 0.7

    def test_final_accuracy_fallbacks(self):
        from repro.nn.train import TrainHistory
        assert TrainHistory(train_accuracies=[0.5]).final_accuracy == 0.5
        assert TrainHistory().final_accuracy == 0.0


class TestRetrainResultProperties:
    def test_empty_result_guards(self):
        from repro.core.retrain import RetrainResult
        result = RetrainResult()
        assert result.best_projected_accuracy == 0.0
        with pytest.raises(RuntimeError):
            _ = result.final_report


class TestModuleRepr:
    def test_layer_reprs_are_informative(self):
        assert "k=3" in repr(nn.Conv2d(3, 8, 3))
        assert "Linear(5, 2)" in repr(nn.Linear(5, 2))
        assert "p=0.3" in repr(nn.Dropout(0.3))
        assert "BatchNorm2d(4)" in repr(nn.BatchNorm2d(4))

    def test_parameter_repr(self):
        assert "shape=(2, 3)" in repr(nn.Parameter(np.zeros((2, 3))))


class TestCLIAll:
    def test_all_expands_registry(self, monkeypatch, capsys):
        """`all` must resolve to every registered experiment (patched to
        a stub so the test stays fast)."""
        from repro.experiments import ALL_EXPERIMENTS
        from repro.experiments import __main__ as cli

        calls = []

        class Stub:
            def __init__(self, name):
                self.name = name

            def run(self):
                calls.append(self.name)
                return ExperimentResult(self.name, rows=[{"ok": 1}])

        stub_registry = {name: Stub(name) for name in ALL_EXPERIMENTS}
        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", stub_registry)
        assert cli.main(["prog", "all"]) == 0
        assert sorted(calls) == sorted(ALL_EXPERIMENTS)


class TestTensorMisc:
    def test_rsub_and_rtruediv_with_arrays(self, rng):
        a = Tensor(rng.normal(size=3) + 5.0)
        np.testing.assert_allclose((10.0 - a).numpy(), 10.0 - a.numpy())
        np.testing.assert_allclose((10.0 / a).numpy(), 10.0 / a.numpy())

    def test_exp_log_inverse(self, rng):
        a = Tensor(rng.normal(size=5))
        np.testing.assert_allclose(a.exp().log().numpy(), a.numpy(), atol=1e-12)
