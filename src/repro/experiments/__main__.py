"""CLI: regenerate any table/figure from the command line.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments fig10        # run one
    python -m repro.experiments fig10 fig12  # run several
    python -m repro.experiments all          # run everything (slow)
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list) -> int:
    names = argv[1:]
    if not names:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            module = ALL_EXPERIMENTS[name]
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:10s} {summary}")
        print("\nusage: python -m repro.experiments <name> [<name> ...] | all")
        return 0
    if names == ["all"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        result = ALL_EXPERIMENTS[name].run()
        print(result.as_table())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
