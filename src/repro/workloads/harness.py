"""Sweep harness: scenario x policy x capacity, one comparison table.

The serving benches each hand-roll one comparison axis (admission
policies, tier stacks, routing).  :class:`ExperimentHarness` promotes
that pattern into a reusable API: declare the deployed models once,
describe each candidate configuration as a :class:`SweepConfig`, and
:meth:`ExperimentHarness.sweep` runs one generated scenario schedule
through every configuration — offline through the
:class:`~repro.serving.CacheSimulator` (fast, deterministic; the CI
mode) or live through a real :class:`~repro.serving.ServingHost`
worker pool — and returns one
:class:`~repro.experiments.common.ExperimentResult` whose rows
compare on the numbers the paper's trade is about (rebuild seconds,
hit rate, throughput).

Both modes support tenancy: give the harness ``quotas`` (or tenant
names in the scenario) and every run books into a fresh
:class:`~repro.tenancy.TenantLedger`, whose per-tenant usage rides
the result rows; live runs count quota rejections instead of crashing
the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.observability import ReplayRequest
from repro.serving.batching import CostAwareBatchPolicy, StaticBatchPolicy
from repro.serving.host import ServingHost
from repro.serving.registry import ModelRegistry
from repro.serving.simulator import CacheSimulator
from repro.workloads.scenarios import Scenario, coalesce_schedule, make_scenario

__all__ = ["ExperimentHarness", "SweepConfig"]


@dataclass(frozen=True)
class SweepConfig:
    """One candidate serving configuration in a sweep.

    ``capacity_fraction`` sizes each engine's dense rebuild cache as a
    fraction of its bundle's dense bytes (``None`` = unbounded);
    ``batch`` picks the batch policy family (``static`` /
    ``cost-aware``), which in offline mode sets how
    :func:`~repro.workloads.coalesce_schedule` groups install passes.
    """

    name: str
    admission: str = "lru"
    routing: str = "round-robin"
    batch: str = "static"
    capacity_fraction: Optional[float] = 0.8
    tiers: Optional[str] = None
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    workers: int = 2

    def batch_policy(self):
        if self.batch == "cost-aware":
            return CostAwareBatchPolicy(
                max_batch_size=self.max_batch_size,
                max_wait_s=max(self.max_wait_s, 0.01),
            )
        if self.batch == "static":
            return StaticBatchPolicy(
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_s,
            )
        raise ValueError(f"unknown batch policy family {self.batch!r}")


class ExperimentHarness:
    """Run scenarios against candidate configs over one model fleet.

    ``registry`` supplies the published bundles; ``deployments`` maps
    each served model name to a zero-argument skeleton factory (the
    architecture its weights install into).  ``sample_shape`` is the
    single-sample input shape live submissions send (offline replay
    never materializes samples).  ``quotas`` (optional) arm per-tenant
    enforcement in live runs and metering in both modes.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        deployments: Mapping[str, Callable[[], object]],
        sample_shape: Sequence[int] = (4,),
        quotas=None,
    ) -> None:
        if not deployments:
            raise ValueError("harness needs at least one deployment")
        self.registry = registry
        self.deployments = dict(deployments)
        self.sample_shape = tuple(sample_shape)
        self.quotas = dict(quotas) if quotas else None

    # ------------------------------------------------------------------
    def _ledger(self):
        from repro.tenancy import TenantLedger

        return TenantLedger(quotas=self.quotas)

    def _capacity(self, handle, config: SweepConfig) -> Optional[int]:
        if config.capacity_fraction is None:
            return None
        return int(handle.total_dense_bytes * config.capacity_fraction)

    # ------------------------------------------------------------------
    def run_offline(
        self,
        rows: Sequence[ReplayRequest],
        config: SweepConfig,
        with_tenancy: bool = True,
    ) -> Dict:
        """Replay one schedule through simulators (one per model).

        The schedule is coalesced into batches under the config's
        static dial first (batch amortization matters to rebuild
        totals), then each model's rows replay against that model's
        candidate cache.  All simulators share one cost-model clone
        source (the registry's) and, when tenancy is on, one ledger —
        so per-tenant charges aggregate across the fleet exactly like
        a live host's.
        """
        ledger = self._ledger() if with_tenancy else None
        # Every config must price rebuilds with the same rates: seed
        # the shared cost model once (idempotent per codec) before any
        # simulator clones it.  Left to the configs, only the
        # cost-requiring admission policies would trigger calibration,
        # and the sweep would compare pricing schemes, not policies.
        for model in sorted(self.deployments):
            handle = self.registry.get(model)
            self.registry.cost_model.calibrate(
                handle.payloads, handle.layer_specs
            )
        batched = coalesce_schedule(
            rows,
            max_batch_size=config.max_batch_size,
            # The offline stand-in for cost-aware batching: with an
            # expensive cache a cost-aware policy waits longer, so
            # batches grow toward the cap.
            max_wait_s=(
                config.max_wait_s * 10
                if config.batch == "cost-aware"
                else config.max_wait_s
            ),
        )
        totals = {
            "rebuild_s": 0.0,
            "est_saved_s": 0.0,
            "requests": 0,
            "batches": 0,
            "hits": 0,
            "accesses": 0,
            "evictions": 0,
        }
        for model in sorted(self.deployments):
            handle = self.registry.get(model)
            with CacheSimulator(
                handle,
                capacity_bytes=self._capacity(handle, config),
                admission=config.admission,
                tiers=config.tiers,
                cost_model=self.registry.cost_model,
                name=f"{config.name}:{model}",
                ledger=ledger,
            ) as simulator:
                report = simulator.replay(batched, model=model)
            totals["rebuild_s"] += report.rebuild_seconds
            totals["est_saved_s"] += report.stats.get(
                "est_seconds_saved", 0.0
            )
            totals["requests"] += report.requests
            totals["batches"] += report.batches
            totals["hits"] += report.stats.get("hits", 0)
            totals["accesses"] += report.stats.get("accesses", 0)
            totals["evictions"] += report.stats.get("evictions", 0)
        out = {
            "config": config.name,
            "mode": "offline",
            "admission": config.admission,
            "batching": config.batch,
            "requests": totals["requests"],
            "batches": totals["batches"],
            "rebuild_s": totals["rebuild_s"],
            "est_saved_s": totals["est_saved_s"],
            "hit_rate": (
                totals["hits"] / totals["accesses"]
                if totals["accesses"]
                else 0.0
            ),
            "evictions": totals["evictions"],
            "rejected": 0,
        }
        if ledger is not None:
            out["tenants"] = ledger.summary()
        return out

    # ------------------------------------------------------------------
    def run_live(
        self,
        rows: Sequence[ReplayRequest],
        config: SweepConfig,
        with_tenancy: bool = True,
        timeout_s: float = 60.0,
    ) -> Dict:
        """Serve one schedule through a real host + worker pools.

        A fresh fleet per config: every model deployed with the
        config's batch/admission/capacity knobs, routed under
        ``config.routing``.  Rows are submitted in arrival order
        (back-to-back — the schedule's *order and mix* are what the
        configs compare on; wall-clock pacing would only slow CI).
        Quota rejections are counted, not raised.
        """
        from repro.tenancy import QuotaExceededError

        ledger = self._ledger() if with_tenancy else None
        host = ServingHost(
            self.registry, routing=config.routing, ledger=ledger
        )
        for model, skeleton_factory in sorted(self.deployments.items()):
            handle = self.registry.get(model)
            host.deploy(
                model,
                skeleton_factory(),
                policy=config.batch_policy(),
                cache_bytes=self._capacity(handle, config),
                admission=config.admission,
                tiers=config.tiers,
            )
        rng = np.random.default_rng(0)
        sample = rng.normal(size=self.sample_shape)
        rejected = 0
        tickets = []
        host.start(workers=config.workers)
        try:
            for row in rows:
                try:
                    tickets.append(
                        host.submit(
                            sample, model=row.model, tenant=row.tenant
                        )
                    )
                except QuotaExceededError:
                    rejected += 1
            for ticket in tickets:
                ticket.result(timeout=timeout_s)
        finally:
            host.stop()
        summary = host.summary()
        out = {
            "config": config.name,
            "mode": "live",
            "admission": config.admission,
            "batching": config.batch,
            "routing": config.routing,
            "requests": summary["requests"],
            "rebuild_s": summary["rebuild_seconds"],
            "hit_rate": summary["rebuild_hit_rate"],
            "rejected": rejected,
        }
        if ledger is not None:
            out["tenants"] = ledger.summary()
        for engine in host.engines().values():
            engine.close()
        return out

    # ------------------------------------------------------------------
    def sweep(
        self,
        scenario: Union[str, Scenario],
        configs: Sequence[SweepConfig],
        mode: str = "offline",
        with_tenancy: bool = True,
        scenario_params: Optional[Dict] = None,
    ) -> ExperimentResult:
        """One scenario x N configs -> one comparison table.

        The scenario generates **once**; every config replays the
        identical rows, so row-to-row differences are the config's
        doing alone.  Per-tenant usage dicts ride each row under
        ``tenants`` (dropped from the printed table by
        ``as_table``'s column scan only if absent).
        """
        if mode not in ("offline", "live"):
            raise ValueError(f"mode must be 'offline' or 'live', not {mode!r}")
        resolved = make_scenario(scenario, **(scenario_params or {}))
        rows = resolved.generate()
        runner = self.run_offline if mode == "offline" else self.run_live
        table = [
            runner(rows, config, with_tenancy=with_tenancy)
            for config in configs
        ]
        best = min(table, key=lambda row: row["rebuild_s"])
        return ExperimentResult(
            experiment=(
                f"scenario sweep: {resolved.name} x "
                f"{len(configs)} configs ({mode})"
            ),
            rows=table,
            notes=(
                f"{len(rows)} generated requests; best rebuild cost: "
                f"{best['config']} at {best['rebuild_s']:.4g}s"
            ),
        )
