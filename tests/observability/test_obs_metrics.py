"""Instrument behavior and exporter golden-output tests."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.observability import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_and_reset_for_local_reset_semantics(self):
        counter = MetricsRegistry().counter("repro_test_total")
        counter.set(7)
        assert counter.value == 7.0
        counter.reset()
        assert counter.value == 0.0

    def test_concurrent_increments_all_land(self):
        counter = MetricsRegistry().counter("repro_test_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_bytes")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(56.05)
        # Cumulative: le=0.1 -> 1, le=1.0 -> 3, le=10.0 -> 4, +Inf -> 5.
        assert snapshot["buckets"] == [
            [0.1, 1],
            [1.0, 3],
            [10.0, 4],
            [math.inf, 5],
        ]

    def test_boundary_value_is_inclusive(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0, 2.0)
        )
        histogram.observe(1.0)
        assert histogram.snapshot()["buckets"][0] == [1.0, 1]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_reset_zeroes_everything(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0,)
        )
        histogram.observe(0.5)
        histogram.reset()
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["sum"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", tags={"worker": "0"})
        b = registry.counter("repro_x_total", tags={"worker": "0"})
        c = registry.counter("repro_x_total", tags={"worker": "1"})
        assert a is b
        assert a is not c

    def test_tag_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", tags={"a": "1", "b": "2"})
        b = registry.counter("repro_x_total", tags={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", tags={"worker": "0"})

    def test_series_and_remove(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", tags={"k": "a"})
        registry.counter("repro_x_total", tags={"k": "b"})
        registry.counter("repro_y_total")
        assert len(registry.series("repro_x_total")) == 2
        assert registry.remove("repro_x_total") == 2
        assert registry.series("repro_x_total") == []
        assert len(registry.instruments()) == 1

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0.0
        # Same instrument is handed back after the reset.
        assert registry.counter("repro_x_total") is counter


class TestPrometheusGolden:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_serving_requests_total", "requests served"
        )
        requests.inc(24)
        per_worker = registry.counter(
            "repro_serving_worker_requests_total",
            "per-worker requests",
            tags={"worker": "0"},
        )
        per_worker.inc(10)
        gauge = registry.gauge(
            "repro_rebuild_cached_bytes", "resident dense bytes"
        )
        gauge.set(4096)
        histogram = registry.histogram(
            "repro_serving_batch_size", "formed batch sizes", buckets=(1.0, 8.0)
        )
        histogram.observe(1)
        histogram.observe(4)
        histogram.observe(16)
        return registry

    def test_prometheus_text_golden(self):
        text = self.build().to_prometheus_text()
        assert text == (
            "# HELP repro_rebuild_cached_bytes resident dense bytes\n"
            "# TYPE repro_rebuild_cached_bytes gauge\n"
            "repro_rebuild_cached_bytes 4096\n"
            "# HELP repro_serving_batch_size formed batch sizes\n"
            "# TYPE repro_serving_batch_size histogram\n"
            'repro_serving_batch_size_bucket{le="1"} 1\n'
            'repro_serving_batch_size_bucket{le="8"} 2\n'
            'repro_serving_batch_size_bucket{le="+Inf"} 3\n'
            "repro_serving_batch_size_sum 21\n"
            "repro_serving_batch_size_count 3\n"
            "# HELP repro_serving_requests_total requests served\n"
            "# TYPE repro_serving_requests_total counter\n"
            "repro_serving_requests_total 24\n"
            "# HELP repro_serving_worker_requests_total per-worker requests\n"
            "# TYPE repro_serving_worker_requests_total counter\n"
            'repro_serving_worker_requests_total{worker="0"} 10\n'
        )

    def test_extra_tags_label_every_series(self):
        text = self.build().to_prometheus_text(extra_tags={"source": "m:v1"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'source="m:v1"' in line

    def test_json_export_round_trips_and_sorts(self):
        document = json.loads(self.build().to_json())
        names = [entry["name"] for entry in document["metrics"]]
        assert names == sorted(names)
        by_name = {entry["name"]: entry for entry in document["metrics"]}
        assert by_name["repro_serving_requests_total"]["value"] == 24
        buckets = by_name["repro_serving_batch_size"]["buckets"]
        assert buckets[-1] == ["+Inf", 3]
        # The document itself must be valid JSON end to end (no bare inf).
        assert "Infinity" not in self.build().to_json()

    def test_render_prometheus_merges_sources(self):
        first = MetricsRegistry()
        first.counter("repro_serving_requests_total", "requests").inc(2)
        second = MetricsRegistry()
        second.counter("repro_serving_requests_total", "requests").inc(3)
        merged = first.snapshot(extra_tags={"source": "a"}) + second.snapshot(
            extra_tags={"source": "b"}
        )
        text = render_prometheus(merged)
        # One header, two labelled series.
        assert text.count("# TYPE repro_serving_requests_total counter") == 1
        assert 'repro_serving_requests_total{source="a"} 2' in text
        assert 'repro_serving_requests_total{source="b"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_x_total", tags={"path": 'a"b\\c\nd'}
        ).inc()
        text = registry.to_prometheus_text()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
