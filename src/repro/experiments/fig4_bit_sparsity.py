"""Figure 4: activation bit-level sparsity w/ and w/o 4-bit Booth encoding.

The paper measures six models on three datasets with 8-bit activations:
plain binary zero-bit fractions of 79.8-86.8%, dropping to 66.0-76.9%
under 4-bit (radix-4) Booth recoding.  We measure the same statistics on
the CI-scale trained models over their synthetic test sets.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, ci_model
from repro.nn.introspect import collect_activations
from repro.sparsity.booth import booth_term_sparsity
from repro.sparsity.metrics import bit_sparsity, quantize_to_fixed

MODELS = ("vgg11", "resnet50", "mobilenetv2", "vgg19", "resnet164")

PAPER_VALUES = {
    "vgg11": (86.5, 76.6),
    "resnet50": (85.2, 73.9),
    "mobilenetv2": (79.8, 66.0),
    "vgg19": (86.8, 76.9),
    "resnet164": (84.1, 73.0),
    "deeplabv3plus": (86.7, 76.1),
}


def measure_model(name: str, sample_count: int = 12) -> dict:
    trained = ci_model(name)
    images = trained.dataset.test_images[:sample_count]
    activations = collect_activations(trained.model, images)
    plain_values = []
    booth_values = []
    weights = []
    for act in activations.values():
        codes = quantize_to_fixed(act, bits=8)
        plain_values.append(bit_sparsity(codes, bits=8))
        booth_values.append(booth_term_sparsity(codes, bits=8))
        weights.append(codes.size)
    weights = np.asarray(weights, dtype=np.float64)
    paper_plain, paper_booth = PAPER_VALUES.get(name, (np.nan, np.nan))
    return {
        "model": name,
        "bit_sparsity_pct": 100 * float(np.average(plain_values, weights=weights)),
        "booth_sparsity_pct": 100 * float(np.average(booth_values, weights=weights)),
        "paper_bit_pct": paper_plain,
        "paper_booth_pct": paper_booth,
    }


def run(models=MODELS) -> ExperimentResult:
    table = ExperimentResult(
        "Figure 4 — activation bit sparsity w/o and w/ 4-bit Booth encoding"
    )
    for name in models:
        table.rows.append(measure_model(name))
    table.notes = (
        "Booth recoding uses half as many digits as there are bits, so "
        "its zero-term fraction is systematically lower than the plain "
        "zero-bit fraction — the paper's headline observation."
    )
    return table
