"""Batch normalization layers.

The BN scale factors (``gamma``) drive SmartExchange's channel-wise
pruning step (Section III-B, Step 3 of the paper): channels whose scaling
factor falls below a per-layer threshold are pruned once at the first
re-training epoch.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        self._check_ndim(x)
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def _check_ndim(self, x: Tensor) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def scale_factors(self) -> np.ndarray:
        """Absolute BN scale per channel (the channel-pruning signal)."""
        return np.abs(self.gamma.data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm2d(_BatchNorm):
    """BN over (N, H, W) for each channel of a 4-D activation."""

    def _check_ndim(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.ndim}-D")


class BatchNorm1d(_BatchNorm):
    """BN over the batch axis of a 2-D activation."""

    def _check_ndim(self, x: Tensor) -> None:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects 2-D input, got {x.ndim}-D")
