"""Functional model of one PE line's 1-D row-stationary schedule (Fig. 6).

The paper's Figure 6 shows how a PE line computes a 1-D convolution:
``dim_f`` MACs sit behind a FIFO of input activations; each cycle one
weight element is broadcast to every MAC, the input window shifts by one,
and every MAC accumulates into its local partial sum.  After ``S`` cycles
(one per weight element) each MAC holds one output pixel.

This module executes that schedule literally — cycle by cycle — so tests
can check both the *result* (equals the reference 1-D convolution) and
the *timing* (S cycles per 1-D conv; R*S per 2-D window, the paper's
"<= (S x R) cycles" claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class PELineRun:
    """Outcome of one scheduled 1-D (or 2-D) convolution."""

    outputs: np.ndarray  # one value per MAC
    cycles: int
    weight_broadcasts: int
    fifo_shifts: int
    schedule: List[str] = field(default_factory=list)


def run_1d_convolution(
    weights: np.ndarray,
    inputs: np.ndarray,
    dim_f: int = 8,
    record_schedule: bool = False,
) -> PELineRun:
    """Execute Fig. 6's temporal schedule for one 1-D convolution.

    ``weights`` has S elements; ``inputs`` must hold ``dim_f + S - 1``
    activations (the FIFO depth the paper specifies).  Returns ``dim_f``
    output pixels: ``out[f] = sum_s weights[s] * inputs[f + s]``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    inputs = np.asarray(inputs, dtype=np.float64)
    s = len(weights)
    expected = dim_f + s - 1
    if len(inputs) != expected:
        raise ValueError(
            f"FIFO must hold dim_f + S - 1 = {expected} inputs, "
            f"got {len(inputs)}"
        )
    accumulators = np.zeros(dim_f)
    run = PELineRun(outputs=accumulators, cycles=0, weight_broadcasts=0,
                    fifo_shifts=0)
    for cycle in range(s):
        weight = weights[cycle]  # one weight broadcast per cycle
        window = inputs[cycle : cycle + dim_f]  # FIFO view after shifts
        accumulators += weight * window
        run.cycles += 1
        run.weight_broadcasts += 1
        if cycle > 0:
            run.fifo_shifts += 1
        if record_schedule:
            run.schedule.append(
                f"cycle {cycle}: W{cycle} x I[{cycle}:{cycle + dim_f}]"
            )
    return run


def run_2d_window(
    weights: np.ndarray,
    inputs: np.ndarray,
    dim_f: int = 8,
) -> PELineRun:
    """R stacked 1-D convolutions = one 2-D window row of outputs.

    ``weights`` is (R, S); ``inputs`` is (R, dim_f + S - 1).  Partial sums
    stay local in the MACs across the R row passes, so the total takes
    exactly R * S cycles — the paper's "one 2-D CONV computation in
    <= (S x R) cycles".
    """
    weights = np.asarray(weights, dtype=np.float64)
    inputs = np.asarray(inputs, dtype=np.float64)
    if weights.ndim != 2 or inputs.ndim != 2:
        raise ValueError("expected (R, S) weights and (R, F+S-1) inputs")
    total = PELineRun(outputs=np.zeros(dim_f), cycles=0,
                      weight_broadcasts=0, fifo_shifts=0)
    for row in range(weights.shape[0]):
        partial = run_1d_convolution(weights[row], inputs[row], dim_f)
        total.outputs = total.outputs + partial.outputs
        total.cycles += partial.cycles
        total.weight_broadcasts += partial.weight_broadcasts
        total.fifo_shifts += partial.fifo_shifts
    return total


def reference_1d_convolution(
    weights: np.ndarray, inputs: np.ndarray, dim_f: int
) -> np.ndarray:
    """Direct computation of the same 1-D conv, for verification."""
    weights = np.asarray(weights, dtype=np.float64)
    inputs = np.asarray(inputs, dtype=np.float64)
    return np.array([
        float(np.dot(weights, inputs[f : f + len(weights)]))
        for f in range(dim_f)
    ])
