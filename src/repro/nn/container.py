"""Composite modules: Sequential, Flatten, Identity."""

from __future__ import annotations

from typing import Iterator

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for index, layer in enumerate(layers):
            setattr(self, str(index), layer)
        self._length = len(layers)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Module]:
        for index in range(self._length):
            yield self._modules[str(index)]

    def __getitem__(self, index: int) -> Module:
        if index < 0:
            index += self._length
        return self._modules[str(index)]

    def append(self, layer: Module) -> None:
        setattr(self, str(self._length), layer)
        object.__setattr__(self, "_length", self._length + 1)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self:
            x = layer(x)
        return x


class Flatten(Module):
    """Flatten all axes after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
