"""Table III: SmartExchange on the compact models.

MobileNetV2 and EfficientNet-B0 have little weight redundancy, so the
paper reports CR ~6.6x with *zero* vector sparsity — the gains come from
the decomposition + 4-bit power-of-2 coefficients alone.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import SmartExchangeConfig, SmartExchangeModel, retrain
from repro.experiments.common import ExperimentResult, fresh_ci_model
from repro.nn.train import evaluate

# No sparsity targets: compact models keep every coefficient row.
COMPACT_CONFIG = SmartExchangeConfig(max_iterations=6, theta=1e-4)

PAPER_ROWS: Dict[str, Tuple[float, float]] = {
    "mobilenetv2": (6.57, 0.0),
    "efficientnet_b0": (6.67, 0.0),
}


def run(epochs: int = 2) -> ExperimentResult:
    table = ExperimentResult("Table III — SmartExchange on compact models")
    for name, (paper_cr, paper_sparsity) in PAPER_ROWS.items():
        trained = fresh_ci_model(name)
        dataset = trained.dataset
        original = evaluate(trained.model, dataset.test_images, dataset.test_labels)
        se_model = SmartExchangeModel(trained.model, COMPACT_CONFIG, model_name=name)
        outcome = retrain(
            se_model,
            dataset.train_images,
            dataset.train_labels,
            dataset.test_images,
            dataset.test_labels,
            epochs=epochs,
            lr=0.01,
            momentum=0.5,
        )
        report = outcome.final_report
        table.rows.append({
            "model": name,
            "acc_orig_pct": 100 * original,
            "acc_se_pct": 100 * outcome.best_projected_accuracy,
            "cr_x": report.compression_rate,
            "param_mb": report.param_mb,
            "b_mb": report.basis_mb,
            "ce_mb": report.coefficient_mb,
            "sparsity_pct": 100 * report.vector_sparsity,
            "paper_cr_x": paper_cr,
            "paper_sparsity_pct": paper_sparsity,
        })
    table.notes = (
        "Compression on compact models comes from decomposition + 4-bit "
        "power-of-2 coefficients, not sparsity (paper: ~6.6x CR, 0% "
        "sparsity, ~2% top-1 drop)."
    )
    return table
