"""Figure 3(b) quantified: index overhead at element vs vector granularity.

The paper illustrates that vector-wise sparsity needs far fewer index
bits than unstructured sparsity (18 vs 6 indices in the cartoon).  This
experiment measures it on real decomposed coefficient matrices: the
1-bit direct index at vector granularity vs element granularity vs RLC
vs CRS, for several sparsity levels.
"""

from __future__ import annotations

import numpy as np

from repro.core import SmartExchangeConfig, smart_exchange_decompose
from repro.experiments.common import ExperimentResult
from repro.sparsity.encoding import (
    crs_overhead_bits,
    direct_index_overhead_bits,
    rlc_overhead_bits,
)

SPARSITY_LEVELS = (0.3, 0.5, 0.7, 0.9)


def run(rows: int = 192, seed: int = 0) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    weight = rng.normal(scale=0.1, size=(rows, 3))
    table = ExperimentResult(
        "Fig. 3b quantified — index bits per encoding (one Ce matrix)"
    )
    for sparsity in SPARSITY_LEVELS:
        config = SmartExchangeConfig(max_iterations=6,
                                     target_row_sparsity=sparsity)
        coefficient = smart_exchange_decompose(weight, config).coefficient
        table.rows.append({
            "row_sparsity_pct": 100 * sparsity,
            "direct_vector_bits": direct_index_overhead_bits(rows),
            "direct_element_bits": direct_index_overhead_bits(coefficient.size),
            "rlc_bits": rlc_overhead_bits(coefficient),
            "crs_bits": crs_overhead_bits(coefficient),
        })
    table.notes = (
        "Vector-granular 1-bit direct indexing costs S x fewer bits than "
        "element-granular indexing and beats RLC/CRS once the zeros "
        "cluster into whole rows — the paper's reason for choosing it."
    )
    return table
