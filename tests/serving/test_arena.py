"""Shared-memory payload arena: placement, attach, lifecycle, leaks.

The contract the process backend stands on: a bundle's compressed
payloads are packed into one ``/dev/shm`` segment exactly once, readers
attach zero-copy and read-only after checksum validation, and no
teardown path — refcount, ``close()``, or interpreter exit — leaves a
segment behind.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.serving import ModelRegistry
from repro.serving.arena import (
    ArenaError,
    ArenaPayloadMap,
    SharedPayloadArena,
    live_arenas,
    shm_segments,
)


@pytest.fixture
def handle(published):
    store, manifest, *_ = published
    return ModelRegistry(store).get(manifest.name)


@pytest.fixture
def arena(handle):
    arena = SharedPayloadArena.from_payloads(handle.payloads, key=handle.key)
    yield arena
    arena.close()


class TestPlacement:
    def test_round_trips_every_payload_array(self, handle, arena):
        attached = SharedPayloadArena.attach(arena.manifest)
        try:
            assert set(attached) == set(handle.payloads)
            for name in handle.payloads:
                original, shared = handle.payloads[name], attached[name]
                assert shared.codec == original.codec
                assert tuple(shared.weight_shape) == tuple(
                    original.weight_shape
                )
                assert shared.meta == original.meta
                assert set(shared.arrays) == set(original.arrays)
                for key, array in original.arrays.items():
                    np.testing.assert_array_equal(shared.arrays[key], array)
        finally:
            attached.close()

    def test_attached_views_are_read_only_and_zero_copy(self, arena):
        attached = SharedPayloadArena.attach(arena.manifest)
        try:
            name = arena.manifest.layers[0].name
            payload = attached[name]
            for array in payload.arrays.values():
                assert not array.flags.writeable
                assert not array.flags.owndata  # view over the segment
                with pytest.raises(ValueError):
                    array[(0,) * array.ndim] = 0
        finally:
            attached.close()

    def test_owner_payload_view_needs_no_reattach(self, handle, arena):
        payloads = arena.payloads()
        assert isinstance(payloads, ArenaPayloadMap)
        assert arena.payloads() is payloads  # cached, one view per owner
        name = next(iter(handle.payloads))
        assert payloads[name].codec == handle.payloads[name].codec

    def test_mapping_protocol(self, handle, arena):
        attached = SharedPayloadArena.attach(arena.manifest)
        try:
            assert len(attached) == len(handle.payloads)
            assert set(iter(attached)) == set(handle.payloads)
            assert next(iter(handle.payloads)) in attached
            with pytest.raises(KeyError):
                attached["no-such-layer"]
        finally:
            attached.close()

    def test_manifest_travels_by_pickle(self, arena):
        manifest = pickle.loads(pickle.dumps(arena.manifest))
        assert manifest == arena.manifest
        attached = SharedPayloadArena.attach(manifest)
        attached.close()


class TestAttachValidation:
    def test_checksum_mismatch_refuses_to_serve(self, arena):
        stale = dataclasses.replace(
            arena.manifest, checksum=arena.manifest.checksum ^ 0xDEADBEEF
        )
        with pytest.raises(ArenaError, match="checksum"):
            SharedPayloadArena.attach(stale)

    def test_missing_segment_raises_not_garbage(self, arena):
        ghost = dataclasses.replace(
            arena.manifest, segment="repro_arena_missing_segment"
        )
        with pytest.raises(ArenaError, match="does not exist"):
            SharedPayloadArena.attach(ghost)

    def test_truncated_segment_rejected(self, arena):
        bloated = dataclasses.replace(
            arena.manifest, nbytes=arena.manifest.nbytes + (1 << 20)
        )
        with pytest.raises(ArenaError, match="bytes"):
            SharedPayloadArena.attach(bloated)


class TestLifecycle:
    def test_refcount_tears_down_with_last_release(self, handle):
        arena = SharedPayloadArena.from_payloads(
            handle.payloads, key=handle.key
        )
        segment = arena.segment_name
        arena.acquire()
        arena.acquire()
        arena.release()
        assert not arena.closed
        assert segment in shm_segments()
        arena.release()
        assert arena.closed
        assert segment not in shm_segments()

    def test_close_is_idempotent_and_wins_over_refs(self, handle):
        arena = SharedPayloadArena.from_payloads(
            handle.payloads, key=handle.key
        )
        arena.acquire()
        arena.close()
        arena.close()
        assert arena.closed
        assert arena.segment_name not in shm_segments()
        with pytest.raises(ArenaError):
            arena.acquire()
        with pytest.raises(ArenaError):
            arena.payloads()

    def test_context_manager_unlinks(self, handle):
        with SharedPayloadArena.from_payloads(handle.payloads) as arena:
            segment = arena.segment_name
            assert segment in shm_segments()
        assert segment not in shm_segments()

    def test_no_segments_or_live_arenas_leak(self, handle):
        before = live_arenas()
        arenas = [
            SharedPayloadArena.from_payloads(handle.payloads, key=str(i))
            for i in range(3)
        ]
        assert live_arenas() == before + 3
        for arena in arenas:
            arena.close()
        assert live_arenas() == before
        assert shm_segments() == ()
