"""Section III-C post-processing experiment.

The paper applies SmartExchange *without re-training* to a VGG19
pre-trained on CIFAR-10 with theta = 4e-3, tol = 1e-10 and at most 30
iterations: >10x compression with a 3.21% accuracy drop, in ~30 s.
We reproduce the protocol on the CI-scale VGG19.
"""

from __future__ import annotations

import time

from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.experiments.common import ExperimentResult, fresh_ci_model
from repro.nn.train import evaluate


def run(max_iterations: int = 30) -> ExperimentResult:
    trained = fresh_ci_model("vgg19")
    dataset = trained.dataset
    before = evaluate(trained.model, dataset.test_images, dataset.test_labels)
    # The paper's post-hoc protocol is threshold-only (theta = 4e-3, no
    # explicit sparsity budget); sparsity emerges from the thresholds.
    config = SmartExchangeConfig(
        theta=4e-3, tol=1e-10, max_iterations=max_iterations,
    )
    start = time.perf_counter()
    _, report = apply_smartexchange(trained.model, config, model_name="vgg19")
    elapsed = time.perf_counter() - start
    after = evaluate(trained.model, dataset.test_images, dataset.test_labels)
    table = ExperimentResult("§III-C — post-hoc SmartExchange on VGG19/CIFAR-10")
    table.rows.append({
        "acc_before_pct": 100 * before,
        "acc_after_pct": 100 * after,
        "acc_drop_pct": 100 * (before - after),
        "cr_x": report.compression_rate,
        "runtime_s": elapsed,
        "paper_drop_pct": 3.21,
        "paper_cr_x": 10.0,
        "paper_runtime_s": 30.0,
    })
    table.notes = (
        "No re-training; the paper reports >10x CR at a 3.21% drop in "
        "about 30 seconds on the full-size network."
    )
    return table
