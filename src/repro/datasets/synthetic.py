"""Core synthetic data generators.

Classification: each class is a smooth low-frequency prototype image;
samples are the prototype plus per-sample noise, contrast jitter and a
small spatial shift.  The task is linearly non-trivial but learnable by
small conv nets in a few epochs, which is exactly what the compression
experiments need (a meaningful accuracy to preserve).

Segmentation: images contain textured geometric shapes on a background;
the label map marks each shape's class per pixel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ClassificationDataset:
    """Train/test split of a synthetic classification task."""

    name: str
    train_images: np.ndarray  # (N, C, H, W) float64
    train_labels: np.ndarray  # (N,) int64
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])


@dataclass
class SegmentationDataset:
    """Train/test split of a synthetic segmentation task."""

    name: str
    train_images: np.ndarray  # (N, C, H, W)
    train_masks: np.ndarray  # (N, H, W) int64, class per pixel
    test_images: np.ndarray
    test_masks: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])


def _smooth_prototype(
    rng: np.random.Generator, channels: int, size: int, grid: int = 4
) -> np.ndarray:
    """A low-frequency pattern: coarse random grid upsampled bilinearly."""
    coarse = rng.normal(size=(channels, grid, grid))
    # Bilinear upsample via linear interpolation on both axes.
    src = np.linspace(0, grid - 1, size)
    lo = np.floor(src).astype(int)
    hi = np.minimum(lo + 1, grid - 1)
    frac = src - lo
    rows = coarse[:, lo] * (1 - frac)[None, :, None] + coarse[:, hi] * frac[None, :, None]
    out = (
        rows[:, :, lo] * (1 - frac)[None, None, :]
        + rows[:, :, hi] * frac[None, None, :]
    )
    return out


def _sample_from_prototype(
    rng: np.random.Generator, prototype: np.ndarray, noise: float, max_shift: int
) -> np.ndarray:
    sample = prototype.copy()
    if max_shift > 0:
        shift_h = int(rng.integers(-max_shift, max_shift + 1))
        shift_w = int(rng.integers(-max_shift, max_shift + 1))
        sample = np.roll(sample, (shift_h, shift_w), axis=(1, 2))
    contrast = float(rng.uniform(0.8, 1.2))
    sample = sample * contrast + rng.normal(scale=noise, size=sample.shape)
    return sample


def make_classification(
    name: str,
    num_classes: int,
    image_size: int,
    channels: int = 3,
    train_per_class: int = 20,
    test_per_class: int = 8,
    noise: float = 0.25,
    seed: int = 0,
) -> ClassificationDataset:
    """Build a deterministic synthetic classification dataset."""
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    prototypes = [
        _smooth_prototype(rng, channels, image_size) for _ in range(num_classes)
    ]
    max_shift = max(1, image_size // 16)

    def build(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        images = np.empty(
            (per_class * num_classes, channels, image_size, image_size)
        )
        labels = np.empty(per_class * num_classes, dtype=np.int64)
        index = 0
        for cls, proto in enumerate(prototypes):
            for _ in range(per_class):
                images[index] = _sample_from_prototype(rng, proto, noise, max_shift)
                labels[index] = cls
                index += 1
        order = rng.permutation(len(labels))
        return images[order], labels[order]

    train_x, train_y = build(train_per_class)
    test_x, test_y = build(test_per_class)
    return ClassificationDataset(
        name=name,
        train_images=train_x,
        train_labels=train_y,
        test_images=test_x,
        test_labels=test_y,
        num_classes=num_classes,
    )


def _draw_shape(
    rng: np.random.Generator,
    image: np.ndarray,
    mask: np.ndarray,
    cls: int,
    intensity: np.ndarray,
) -> None:
    """Paint one random rectangle or disc of class ``cls`` in place."""
    _, h, w = image.shape
    ch = int(rng.integers(h // 6, h // 2))
    cw = int(rng.integers(w // 6, w // 2))
    top = int(rng.integers(0, h - ch))
    left = int(rng.integers(0, w - cw))
    if rng.random() < 0.5:
        region = (slice(top, top + ch), slice(left, left + cw))
        image[:, region[0], region[1]] = intensity[:, None, None]
        mask[region] = cls
    else:
        yy, xx = np.mgrid[0:h, 0:w]
        radius = min(ch, cw) / 2
        disc = ((yy - (top + ch / 2)) ** 2 + (xx - (left + cw / 2)) ** 2) <= radius**2
        image[:, disc] = intensity[:, None]
        mask[disc] = cls


def make_segmentation(
    name: str,
    num_classes: int,
    height: int,
    width: int,
    channels: int = 3,
    train_count: int = 24,
    test_count: int = 8,
    shapes_per_image: int = 4,
    noise: float = 0.15,
    seed: int = 0,
) -> SegmentationDataset:
    """Build a deterministic synthetic segmentation dataset.

    Class 0 is background; classes ``1..num_classes-1`` are shape classes
    painted with a class-specific colour so the task is learnable.
    """
    if num_classes < 2:
        raise ValueError("segmentation needs background + at least one class")
    rng = np.random.default_rng(seed)
    class_colours = rng.uniform(-1.5, 1.5, size=(num_classes, channels))

    def build(count: int) -> Tuple[np.ndarray, np.ndarray]:
        images = np.empty((count, channels, height, width))
        masks = np.zeros((count, height, width), dtype=np.int64)
        for index in range(count):
            image = np.full(
                (channels, height, width), class_colours[0][:, None, None]
            ).astype(np.float64)
            mask = np.zeros((height, width), dtype=np.int64)
            for _ in range(shapes_per_image):
                cls = int(rng.integers(1, num_classes))
                _draw_shape(rng, image, mask, cls, class_colours[cls])
            image += rng.normal(scale=noise, size=image.shape)
            images[index] = image
            masks[index] = mask
        return images, masks

    train_x, train_y = build(train_count)
    test_x, test_y = build(test_count)
    return SegmentationDataset(
        name=name,
        train_images=train_x,
        train_masks=train_y,
        test_images=test_x,
        test_masks=test_y,
        num_classes=num_classes,
    )
