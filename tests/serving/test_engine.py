"""End-to-end serving: transform -> publish -> serve -> verify.

Covers the acceptance criteria: engine outputs match direct inference
on the compressed model within fp tolerance, the rebuild cache hits
when a layer is reused, and stats/telemetry are coherent.
"""

import numpy as np
import pytest

from repro import nn
from repro.serving import (
    StaticBatchPolicy,
    InferenceEngine,
    ModelRegistry,
    ServingError,
)

from tests.serving.conftest import build_model


@pytest.fixture
def engine(published):
    store, manifest, *_ = published
    handle = ModelRegistry(store).get(manifest.name)
    # Fresh skeleton with different init: all served weights must come
    # from the bundle, not the skeleton.
    return InferenceEngine(
        build_model(seed=123),
        handle,
        policy=StaticBatchPolicy(max_batch_size=4, max_wait_s=0.01),
    )


@pytest.fixture
def inputs(rng):
    return list(rng.normal(size=(10, 3, 8, 8)))


class TestEndToEnd:
    def test_outputs_match_direct_inference(self, published, engine, inputs):
        _, _, model, _, _ = published
        model.eval()
        direct = model(np.stack(inputs)).data
        served = np.stack(engine.predict_many(inputs, batched=True))
        assert served.shape == direct.shape
        # Only the 8-bit basis quantization of the serialized form
        # separates the two.
        scale = max(np.abs(direct).max(), 1e-9)
        assert np.abs(served - direct).max() < 0.05 * scale

    def test_batched_and_unbatched_agree(self, engine, inputs):
        batched = np.stack(engine.predict_many(inputs, batched=True))
        unbatched = np.stack(engine.predict_many(inputs, batched=False))
        np.testing.assert_allclose(batched, unbatched, atol=1e-10)

    def test_cache_hits_when_layer_reused(self, engine, inputs):
        engine.predict(np.stack(inputs[:2]))
        assert engine.rebuild.stats.hits == 0  # first pass: all misses
        engine.predict(np.stack(inputs[2:4]))
        assert engine.rebuild.stats.hits >= 1

    def test_residual_state_applied(self, published, engine):
        """BN statistics must come from the published model."""
        _, _, model, _, _ = published
        source = dict(model.named_modules())
        served = dict(engine.model.named_modules())
        for name, module in source.items():
            if isinstance(module, nn.BatchNorm2d):
                np.testing.assert_array_equal(
                    served[name].running_mean, module.running_mean
                )

    def test_online_matches_offline(self, engine, inputs):
        offline = engine.predict_many(inputs, batched=True)
        with engine:
            tickets = [engine.submit(sample) for sample in inputs]
            online = [ticket.result(timeout=30.0) for ticket in tickets]
        np.testing.assert_allclose(
            np.stack(online), np.stack(offline), atol=1e-10
        )

    def test_bad_request_fails_ticket_not_worker(self, engine, inputs):
        """A malformed sample fails its own ticket; serving continues."""
        with engine:
            bad = engine.submit(np.zeros((5, 5)))  # wrong input rank
            with pytest.raises(Exception):
                bad.result(timeout=30.0)
            good = engine.submit(inputs[0])
            row = good.result(timeout=30.0)
        assert row.shape == (4,)
        assert engine.stats.failed_requests >= 1
        assert engine.summary()["failed_requests"] >= 1

    def test_offline_predict_safe_while_started(self, engine, inputs):
        """predict() and the worker serialize on the forward lock."""
        reference = np.stack(engine.predict_many(inputs, batched=True))
        with engine:
            tickets = [engine.submit(sample) for sample in inputs]
            offline = [engine.predict(np.stack(inputs[:4]))
                       for _ in range(5)]
            online = [ticket.result(timeout=30.0) for ticket in tickets]
        np.testing.assert_allclose(np.stack(online), reference, atol=1e-10)
        for chunk in offline:
            np.testing.assert_allclose(chunk, reference[:4], atol=1e-10)

    def test_online_coalesces(self, engine, inputs):
        with engine:
            tickets = [engine.submit(sample) for sample in inputs]
            for ticket in tickets:
                ticket.result(timeout=30.0)
        assert engine.stats.batch_count < len(inputs)
        assert engine.stats.mean_batch_size > 1.0


class TestEngineGuards:
    def test_submit_before_start(self, engine):
        with pytest.raises(ServingError, match="not started"):
            engine.submit(np.zeros((3, 8, 8)))

    def test_double_start(self, engine):
        with engine:
            with pytest.raises(ServingError, match="already started"):
                engine.start()

    def test_stop_without_start_is_noop(self, engine):
        engine.stop()

    def test_mismatched_skeleton_rejected(self, published):
        store, manifest, *_ = published
        handle = ModelRegistry(store).get(manifest.name)
        rng = np.random.default_rng(0)
        wrong = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=rng),
            nn.Flatten(),
        )
        with pytest.raises(ServingError):
            InferenceEngine(wrong, handle)


class TestTelemetry:
    def test_summary_counters(self, engine, inputs):
        engine.predict_many(inputs, batched=True)
        summary = engine.summary()
        assert summary["requests"] == len(inputs)
        assert summary["batches"] == 3  # ceil(10 / 4)
        assert summary["throughput_rps"] > 0
        assert summary["request_latency_p50_ms"] > 0
        assert summary["rebuild_hit_rate"] > 0
        assert summary["bundle_bytes_saved"] > 0
        assert summary["rebuilt_bytes_per_request"] > 0

    def test_report_renders(self, engine, inputs):
        engine.predict_many(inputs[:2], batched=True)
        text = engine.report()
        assert "throughput_rps" in text
        assert "rebuild_hit_rate" in text

    def test_stats_reset(self, engine, inputs):
        engine.predict_many(inputs, batched=True)
        engine.stats.reset()
        assert engine.stats.request_count == 0
        assert engine.summary()["requests"] == 0
