"""Bench: Fig. 3b quantified (index encoding overheads)."""

from benchmarks.conftest import run_and_print
from repro.experiments import index_overhead


def bench_index_overhead(benchmark):
    result = run_and_print(benchmark, index_overhead.run)
    for row in result.rows:
        assert row["direct_vector_bits"] < row["direct_element_bits"]
