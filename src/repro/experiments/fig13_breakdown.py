"""Figure 13: SmartExchange accelerator energy breakdown.

(a) CONV + squeeze-and-excite layers only; (b) all layers (FC included).
Expected shapes: activation DRAM dominates for most models, weight DRAM
dominates for the very large models (ResNet50/ImageNet, VGG19/CIFAR-10
conv stack), and RE + index-selector energy is negligible (<~1%).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult
from repro.hardware import SmartExchangeAccelerator, build_workloads
from repro.hardware.workloads import BENCHMARK_SUITE

GROUPS = {
    "dram_act_pct": ("dram_input", "dram_output"),
    "dram_weight_pct": ("dram_weight", "dram_index"),
    "gb_pct": (
        "gb_input_read", "gb_input_write", "gb_output_read", "gb_output_write",
        "gb_weight_read", "gb_weight_write",
    ),
    "pe_pct": ("pe", "accumulator", "booth_encoder", "control"),
    "re_pct": ("re",),
    "index_sel_pct": ("index_selector",),
}


def _breakdown_row(model: str, breakdown: Dict[str, float]) -> Dict[str, float]:
    total = sum(breakdown.values())
    row: Dict[str, float] = {"model": model}
    for group, keys in GROUPS.items():
        row[group] = 100.0 * sum(breakdown.get(k, 0.0) for k in keys) / total
    return row


def run(include_fc: bool = False) -> ExperimentResult:
    part = "b (all layers)" if include_fc else "a (CONV + SE layers)"
    table = ExperimentResult(f"Figure 13{part} — SE accelerator energy breakdown (%)")
    accelerator = SmartExchangeAccelerator()
    for model_name, _dataset in BENCHMARK_SUITE:
        workloads = build_workloads(model_name, include_fc=include_fc)
        result = accelerator.simulate_model(workloads, model_name)
        table.rows.append(_breakdown_row(model_name, result.energy_breakdown()))
    table.notes = (
        "Paper shapes: activation DRAM dominates most models; weight DRAM "
        "dominates the very large ones; RE < ~1% and index selector "
        "< 0.05% of total energy."
    )
    return table
