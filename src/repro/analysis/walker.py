"""Project walker: file discovery, parse-once AST cache, suppressions.

The :class:`Analyzer` feeds every rule the same :class:`SourceFile`
objects, so a file is read and parsed exactly once per run no matter
how many rules inspect it.  Inline suppressions use the repo-wide
comment form::

    self._depth = depth  # repro: ignore[LCK001]

A bare ``# repro: ignore`` (no rule list) silences every rule on that
line.  A suppression on a comment-only line applies to the following
line, so a rationale can ride above the code it excuses::

    # Captured racily on purpose: depth is advisory.
    # repro: ignore[LCK001]
    return len(self._queue)
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.core import ERROR, Finding, Rule, sort_findings

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"
)

#: Pseudo rule id attached to files that fail to parse.
PARSE_RULE_ID = "PARSE001"


class SourceFile:
    """One parsed Python file, shared by every rule in a run."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        # line (1-based) -> rule ids silenced there; None = all rules.
        self.suppressions: Dict[int, Optional[Set[str]]] = {}
        self._parse()
        self._scan_suppressions()

    # ------------------------------------------------------------------
    def _parse(self) -> None:
        try:
            self.tree = ast.parse(self.text, filename=str(self.path))
        except SyntaxError as error:
            self.parse_error = error

    def _scan_suppressions(self) -> None:
        for index, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            ids: Optional[Set[str]] = None
            if rules is not None:
                ids = {part.strip() for part in rules.split(",") if part.strip()}
            targets = [index]
            if line.lstrip().startswith("#"):
                # Comment-only line: the suppression covers the next line.
                targets.append(index + 1)
            for target in targets:
                existing = self.suppressions.get(target, set())
                if ids is None or existing is None:
                    self.suppressions[target] = None
                else:
                    self.suppressions[target] = existing | ids

    # ------------------------------------------------------------------
    def suppressed(self, rule_id: str, line: int) -> bool:
        for candidate in (line,):
            if candidate in self.suppressions:
                ids = self.suppressions[candidate]
                if ids is None or rule_id in ids:
                    return True
        return False

    def segment(self, node: ast.AST) -> str:
        """Source text spanned by ``node`` (empty if location missing)."""
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            return ""
        return "\n".join(self.lines[lineno - 1 : end])


def iter_python_files(
    paths: Sequence[Path], root: Path
) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` (files pass through), skipping
    hidden directories and ``__pycache__``."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in parts
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class Analyzer:
    """Run a set of rules over a set of paths.

    ``root`` anchors the relative paths findings report (and the
    baseline stores); it defaults to the current working directory so
    CI and local runs agree on file keys.
    """

    def __init__(self, rules: Sequence[Rule], root: Optional[Path] = None) -> None:
        self.rules = list(rules)
        self.root = (root or Path.cwd()).resolve()
        self.sources: Dict[str, SourceFile] = {}

    # ------------------------------------------------------------------
    def _relative(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def load(self, path: Path) -> SourceFile:
        rel = self._relative(path)
        cached = self.sources.get(rel)
        if cached is not None:
            return cached
        text = path.read_text(encoding="utf-8")
        source = SourceFile(path=path, rel=rel, text=text)
        self.sources[rel] = source
        return source

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[Path]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths, self.root):
            source = self.load(path)
            if source.parse_error is not None:
                error = source.parse_error
                findings.append(
                    Finding(
                        rule=PARSE_RULE_ID,
                        file=source.rel,
                        line=int(error.lineno or 1),
                        message=f"file does not parse: {error.msg}",
                        severity=ERROR,
                    )
                )
                continue
            for rule in self.rules:
                findings.extend(rule.visit(source))
        for rule in self.rules:
            findings.extend(rule.finalize())
        return sort_findings(self._filter_suppressed(findings))

    def _filter_suppressed(
        self, findings: Iterable[Finding]
    ) -> List[Finding]:
        kept = []
        for finding in findings:
            source = self.sources.get(finding.file)
            if source is not None and source.suppressed(
                finding.rule, finding.line
            ):
                continue
            kept.append(finding)
        return kept
