"""Software-hardware interface (paper Fig. 7): Parser + Compiler.

``parse_model`` extracts layer types and dimensions from a live ``nn``
model (the Parser); ``compile_workloads`` combines them with a
SmartExchange compression report into the per-layer workloads + dataflow
choices the accelerator consumes (the Compiler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import nn
from repro.core.model_transform import ModelCompressionReport
from repro.hardware.layers import (
    LayerKind,
    LayerSparsity,
    LayerSpec,
    LayerWorkload,
    smartexchange_storage_bits,
    trace_layer_specs,
)
from repro.hardware.smartexchange.config import SmartExchangeAcceleratorConfig


def parse_model(model: nn.Module, input_shape: Tuple[int, ...]) -> List[LayerSpec]:
    """The DNN Parser: layer kinds and dimensions from a live model."""
    return trace_layer_specs(model, input_shape)


@dataclass(frozen=True)
class LayerInstruction:
    """One compiled layer: workload + the dataflow the controller uses."""

    workload: LayerWorkload
    dataflow: str  # "row-stationary" | "depthwise-rows" | "fc-cluster"


@dataclass
class CompiledProgram:
    """Everything the accelerator controller needs to run a model."""

    model_name: str
    instructions: List[LayerInstruction] = field(default_factory=list)

    @property
    def workloads(self) -> List[LayerWorkload]:
        return [instruction.workload for instruction in self.instructions]


def _dataflow_for(spec: LayerSpec, config: SmartExchangeAcceleratorConfig) -> str:
    if spec.kind == LayerKind.DEPTHWISE:
        return "depthwise-rows" if config.dedicated_compact_dataflow else "row-stationary"
    if spec.is_fc_like:
        return "fc-cluster" if config.dedicated_compact_dataflow else "row-stationary"
    return "row-stationary"


def compile_workloads(
    specs: List[LayerSpec],
    report: Optional[ModelCompressionReport] = None,
    activation_sparsity: Optional[Dict[str, LayerSparsity]] = None,
    config: Optional[SmartExchangeAcceleratorConfig] = None,
    model_name: str = "model",
    batch: int = 1,
) -> CompiledProgram:
    """The DNN Compiler: fuse parsed specs with measured sparsities.

    ``report`` supplies measured weight vector sparsity and exact storage
    bits per layer (matched by layer name); ``activation_sparsity``
    optionally supplies measured activation statistics.  Missing layers
    fall back to dense.
    """
    config = config or SmartExchangeAcceleratorConfig()
    by_name = {}
    if report is not None:
        by_name = {layer.name: layer for layer in report.layers}
    program = CompiledProgram(model_name=model_name)
    for spec in specs:
        compression = by_name.get(spec.name)
        act = (activation_sparsity or {}).get(spec.name)
        weight_vector = compression.vector_sparsity if compression else 0.0
        weight_element = compression.element_sparsity if compression else 0.0
        sparsity = LayerSparsity(
            weight_element=weight_element,
            weight_vector=weight_vector,
            act_element=act.act_element if act else 0.0,
            act_vector=act.act_vector if act else 0.0,
            act_bit=act.act_bit if act else 0.0,
            act_booth=act.act_booth if act else 0.0,
        )
        storage_bits = (
            compression.storage.total_bits
            if compression
            else smartexchange_storage_bits(spec, weight_vector)
        )
        workload = LayerWorkload(
            spec=spec,
            sparsity=sparsity,
            se_storage_bits=storage_bits,
            batch=batch,
        )
        program.instructions.append(
            LayerInstruction(workload=workload, dataflow=_dataflow_for(spec, config))
        )
    return program
