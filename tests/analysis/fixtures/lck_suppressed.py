"""The same torn read, but with an inline suppression — the analyzer
must honor ``# repro: ignore[LCK001]`` on the flagged line."""

import threading


class AdvisoryCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._cached_bytes = 0

    def admit(self, nbytes):
        with self._lock:
            self._cached_bytes += int(nbytes)

    @property
    def cached_bytes_hint(self):
        # Advisory reading for dashboards; staleness is acceptable.
        return self._cached_bytes  # repro: ignore[LCK001]
