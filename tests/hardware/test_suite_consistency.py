"""Cross-accelerator consistency invariants over the benchmark suite.

These hold regardless of calibration: the same workload must present the
same nominal work to every design, skipped work can only shrink, and the
traffic each design reports must be self-consistent.
"""

import pytest

from repro.experiments.hardware_comparison import suite_results
from repro.hardware import build_workloads
from repro.hardware.workloads import BENCHMARK_SUITE


@pytest.fixture(scope="module")
def suite():
    return suite_results()


class TestWorkConsistency:
    def test_same_nominal_macs_everywhere(self, suite):
        for model, per_model in suite.items():
            macs = {name: result.total_macs for name, result in per_model.items()}
            assert len(set(macs.values())) == 1, (model, macs)

    def test_effective_never_exceeds_nominal(self, suite):
        for per_model in suite.values():
            for result in per_model.values():
                for layer in result.layers:
                    assert layer.effective_macs <= layer.macs + 1e-6

    def test_layer_counts_match(self, suite):
        for model, per_model in suite.items():
            counts = {len(r.layers) for r in per_model.values()}
            assert len(counts) == 1, model


class TestTrafficConsistency:
    def test_dram_weight_at_least_storage(self, suite):
        """No design can fetch fewer weight bytes than it stores."""
        for model, per_model in suite.items():
            workloads = build_workloads(model)
            se = per_model["smartexchange"]
            stored = sum(w.se_storage_bits for w in workloads) / 8
            fetched = sum(l.dram_bytes.get("weight", 0)
                          + l.dram_bytes.get("index", 0)
                          for l in se.layers)
            assert fetched >= stored * 0.999, model

    def test_energy_positive_everywhere(self, suite):
        for per_model in suite.values():
            for result in per_model.values():
                for layer in result.layers:
                    assert layer.total_energy_pj > 0
                    assert all(v >= 0 for v in layer.energy_pj.values())

    def test_latency_at_least_compute_bound(self, suite):
        for per_model in suite.values():
            for result in per_model.values():
                for layer in result.layers:
                    assert layer.cycles >= layer.compute_cycles


class TestSuiteCoverage:
    def test_all_seven_models_simulated(self, suite):
        assert set(suite) == {model for model, _ in BENCHMARK_SUITE}

    def test_scnn_skipped_only_for_efficientnet(self, suite):
        for model, per_model in suite.items():
            if model == "efficientnet_b0":
                assert "scnn" not in per_model
            else:
                assert "scnn" in per_model

    def test_five_designs_otherwise(self, suite):
        assert len(suite["resnet50"]) == 5
