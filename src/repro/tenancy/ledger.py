"""Per-tenant metering: who paid which side of the trade.

:class:`TenantLedger` is the accounting spine of multi-tenant serving.
Every number it tracks lives on a metric instrument in one
:class:`~repro.observability.MetricsRegistry` (series below), following
the serving-stats pattern: summaries and :class:`~repro.tenancy.
pricing.UsageReport` bills are read *back out of the instruments*, so a
Prometheus export of the ledger's registry reconciles with the reports
by construction.

Series (``tenant`` is always a label dimension):

- ``repro_tenant_requests_total`` — submissions that entered a queue;
- ``repro_tenant_served_total`` / ``repro_tenant_failed_total`` —
  completions, matching the engines' own served/failed counts;
- ``repro_tenant_rejected_total{reason=...}`` — quota refusals;
- ``repro_tenant_rebuild_seconds_total`` — rebuild compute *charged*
  to the tenant: when a worker installs weights for a batch it
  activates the batch's tenant shares (:meth:`TenantLedger.activate`,
  a thread-local), and the rebuild engine charges each actual
  rebuild's seconds to the active shares at the moment it books them
  into its own ``rebuild_seconds`` counter — so the fleet total and
  the per-tenant totals are the *same events*, split, and summing the
  tenant series reproduces the fleet series;
- ``repro_tenant_est_seconds_saved_total`` — estimated rebuild seconds
  the tenant's cache hits avoided (the value residency delivered);
- ``repro_tenant_resident_bytes`` (gauge) /
  ``repro_tenant_resident_byte_seconds_total`` — dense cache bytes a
  tenant's admissions currently hold, and that occupancy integrated
  over time (what storage is billed on);
- ``repro_tenant_routed_total{model=...}`` — routing decisions.

Charges arriving with no tenant context (a ``warm()`` pass, untraced
direct traffic) book to the reserved :data:`UNATTRIBUTED` tenant
rather than vanishing — reconciliation against fleet totals must hold
for every run, not just all-tenanted ones.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability import MetricsRegistry
from repro.tenancy.pricing import PricingModel, UsageReport
from repro.tenancy.quota import QuotaExceededError, TenantQuota

__all__ = ["TenantLedger", "UNATTRIBUTED"]

UNATTRIBUTED = "unattributed"
"""Reserved tenant name for charges with no tenant context."""


class _Account:
    """One tenant's instruments plus quota-enforcement state."""

    __slots__ = (
        "name",
        "requests",
        "served",
        "failed",
        "rebuild_seconds",
        "est_seconds_saved",
        "resident_bytes",
        "resident_byte_seconds",
        "tokens",
        "token_stamp",
        "residency_stamp",
    )

    def __init__(self, name: str, metrics: MetricsRegistry, now: float) -> None:
        tags = {"tenant": name}
        self.name = name
        self.requests = metrics.counter(
            "repro_tenant_requests_total",
            "submissions per tenant that entered an engine queue",
            tags=tags,
        )
        self.served = metrics.counter(
            "repro_tenant_served_total",
            "requests completed per tenant",
            tags=tags,
        )
        self.failed = metrics.counter(
            "repro_tenant_failed_total",
            "requests failed per tenant (batch execution errors)",
            tags=tags,
        )
        self.rebuild_seconds = metrics.counter(
            "repro_tenant_rebuild_seconds_total",
            "rebuild compute charged to the tenant's traffic",
            tags=tags,
        )
        self.est_seconds_saved = metrics.counter(
            "repro_tenant_est_seconds_saved_total",
            "estimated rebuild seconds the tenant's cache hits avoided",
            tags=tags,
        )
        self.resident_bytes = metrics.gauge(
            "repro_tenant_resident_bytes",
            "dense cache bytes the tenant's admissions hold right now",
            tags=tags,
        )
        self.resident_byte_seconds = metrics.counter(
            "repro_tenant_resident_byte_seconds_total",
            "tenant cache occupancy integrated over time",
            tags=tags,
        )
        self.tokens: Optional[float] = None  # lazily seeded from quota
        self.token_stamp = now
        self.residency_stamp = now

    def settle_residency(self, now: float) -> None:
        """Integrate occupancy up to ``now`` (ledger lock held)."""
        dt = now - self.residency_stamp
        if dt > 0:
            held = self.resident_bytes.value
            if held > 0:
                self.resident_byte_seconds.inc(held * dt)
            self.residency_stamp = now


class TenantLedger:
    """Thread-safe per-tenant meters, quotas, and billing.

    ``quotas`` maps tenant name → :class:`~repro.tenancy.quota.
    TenantQuota`; tenants without one are unlimited.  ``clock`` is
    injectable (monotonic seconds) so quota and occupancy arithmetic
    is deterministic under test.  One ledger is shared by a whole
    fleet: pass it to :class:`~repro.serving.host.ServingHost` (which
    hands it to every engine it deploys) or directly to
    :class:`~repro.serving.engine.InferenceEngine` /
    :class:`~repro.serving.simulator.CacheSimulator`.
    """

    UNATTRIBUTED = UNATTRIBUTED

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._accounts: Dict[str, _Account] = {}
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        # layer residency attribution: key -> (nbytes, shares) so an
        # eviction can release exactly what admission attributed.
        self._residency: Dict[object, Tuple[int, Dict[str, float]]] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Accounts and quotas
    # ------------------------------------------------------------------
    def _account(self, tenant: str) -> _Account:
        # Caller holds self._lock.
        account = self._accounts.get(tenant)
        if account is None:
            account = self._accounts[tenant] = _Account(
                tenant, self.metrics, self._clock()
            )
        return account

    def tenants(self) -> List[str]:
        """Every tenant with an account, sorted (quota-only tenants
        included once traffic or an explicit quota touched them)."""
        with self._lock:
            return sorted(set(self._accounts) | set(self._quotas))

    def set_quota(self, tenant: str, quota: Optional[TenantQuota]) -> None:
        """Install (or clear, with ``None``) one tenant's quota."""
        with self._lock:
            if quota is None:
                self._quotas.pop(tenant, None)
            else:
                self._quotas[tenant] = quota
                # Re-seed the bucket: a raised rate takes effect now.
                account = self._accounts.get(tenant)
                if account is not None:
                    account.tokens = None

    def quota(self, tenant: str) -> Optional[TenantQuota]:
        with self._lock:
            return self._quotas.get(tenant)

    # ------------------------------------------------------------------
    # Front-door enforcement
    # ------------------------------------------------------------------
    def admit(self, tenant: str, model: Optional[str] = None) -> None:
        """Gate one submission; raises :class:`QuotaExceededError`.

        Checked *before* the request is traced or routed.  The rate
        check is a token bucket (``quota.bucket_depth`` tokens,
        refilled at ``max_requests_per_second``); the budget check
        compares the tenant's cumulative charged rebuild seconds
        against ``max_rebuild_seconds``.  Refusals are counted on
        ``repro_tenant_rejected_total{reason=...}``.
        """
        with self._lock:
            quota = self._quotas.get(tenant)
            if quota is None:
                return
            account = self._account(tenant)
            budget = quota.max_rebuild_seconds
            if budget is not None and account.rebuild_seconds.value >= budget:
                self._count_rejected(tenant, "rebuild-budget")
                raise QuotaExceededError(
                    tenant,
                    "rebuild-budget",
                    f"{account.rebuild_seconds.value:.4g}s of "
                    f"{budget:.4g}s budget spent",
                )
            depth = quota.bucket_depth
            if depth is not None:
                now = self._clock()
                if account.tokens is None:
                    account.tokens = depth
                else:
                    elapsed = max(0.0, now - account.token_stamp)
                    account.tokens = min(
                        depth,
                        account.tokens
                        + elapsed * quota.max_requests_per_second,
                    )
                account.token_stamp = now
                if account.tokens < 1.0:
                    self._count_rejected(tenant, "rate")
                    raise QuotaExceededError(
                        tenant,
                        "rate",
                        f"limit {quota.max_requests_per_second:g} req/s",
                    )
                account.tokens -= 1.0

    def _count_rejected(self, tenant: str, reason: str) -> None:
        # Caller holds self._lock.
        self.metrics.counter(
            "repro_tenant_rejected_total",
            "submissions refused at the front door, by quota reason",
            tags={"tenant": tenant, "reason": reason},
        ).inc()

    # ------------------------------------------------------------------
    # Request metering
    # ------------------------------------------------------------------
    def record_submitted(self, tenant: Optional[str]) -> None:
        with self._lock:
            self._account(tenant or UNATTRIBUTED).requests.inc()

    def record_served(self, tenant: Optional[str], count: int = 1) -> None:
        with self._lock:
            self._account(tenant or UNATTRIBUTED).served.inc(count)

    def record_failed(self, tenant: Optional[str], count: int = 1) -> None:
        with self._lock:
            self._account(tenant or UNATTRIBUTED).failed.inc(count)

    def record_routed(self, tenant: Optional[str], model: str) -> None:
        with self._lock:
            self.metrics.counter(
                "repro_tenant_routed_total",
                "requests routed per tenant and model",
                tags={"tenant": tenant or UNATTRIBUTED, "model": model},
            ).inc()

    # ------------------------------------------------------------------
    # Attribution context (worker threads)
    # ------------------------------------------------------------------
    @staticmethod
    def shares(tenants: Iterable[Optional[str]]) -> Dict[str, float]:
        """Equal-split attribution shares for one batch's tenants.

        A batch's install pass is shared work: each request carries
        ``1/n`` of whatever the pass rebuilds, so a tenant with k of
        the n requests is charged ``k/n`` of each rebuild.
        """
        counts: Dict[str, int] = {}
        total = 0
        for tenant in tenants:
            name = tenant or UNATTRIBUTED
            counts[name] = counts.get(name, 0) + 1
            total += 1
        if not total:
            return {UNATTRIBUTED: 1.0}
        return {name: count / total for name, count in counts.items()}

    @contextmanager
    def activate(self, shares: Optional[Dict[str, float]]):
        """Attach attribution shares to the calling thread for the
        duration of one batch's install pass; the rebuild engine reads
        them back with :meth:`current_shares` when it books costs."""
        previous = getattr(self._local, "shares", None)
        self._local.shares = shares
        try:
            yield self
        finally:
            self._local.shares = previous

    def current_shares(self) -> Optional[Dict[str, float]]:
        return getattr(self._local, "shares", None)

    def _resolve_shares(
        self, shares: Optional[Dict[str, float]]
    ) -> Dict[str, float]:
        if shares is None:
            shares = self.current_shares()
        if not shares:
            return {UNATTRIBUTED: 1.0}
        return shares

    # ------------------------------------------------------------------
    # Cost attribution (called by the rebuild engine, under its lock)
    # ------------------------------------------------------------------
    def charge_rebuild(
        self, seconds: float, shares: Optional[Dict[str, float]] = None
    ) -> None:
        """Split one actual rebuild's measured seconds across shares —
        called at the same moment the engine books the seconds into
        its own counter, so fleet and tenant totals are the same
        events."""
        shares = self._resolve_shares(shares)
        with self._lock:
            for tenant, fraction in shares.items():
                self._account(tenant).rebuild_seconds.inc(seconds * fraction)

    def credit_saved(
        self, seconds: float, shares: Optional[Dict[str, float]] = None
    ) -> None:
        """Split one cache hit's estimated avoided-rebuild seconds."""
        shares = self._resolve_shares(shares)
        with self._lock:
            for tenant, fraction in shares.items():
                self._account(tenant).est_seconds_saved.inc(
                    seconds * fraction
                )

    # ------------------------------------------------------------------
    # Residency attribution
    # ------------------------------------------------------------------
    def attribute_residency(
        self,
        key: object,
        nbytes: int,
        shares: Optional[Dict[str, float]] = None,
    ) -> None:
        """A layer entered a dense cache on behalf of the active
        shares; ``key`` must be unique per (engine, layer) so release
        undoes exactly this attribution."""
        shares = self._resolve_shares(shares)
        now = self._clock()
        with self._lock:
            stale = self._residency.pop(key, None)
            if stale is not None:
                self._release_locked(stale, now)
            self._residency[key] = (int(nbytes), dict(shares))
            for tenant, fraction in shares.items():
                account = self._account(tenant)
                account.settle_residency(now)
                account.resident_bytes.inc(nbytes * fraction)

    def release_residency(self, key: object) -> None:
        """The layer left the dense cache (evicted, cleared, closed)."""
        now = self._clock()
        with self._lock:
            held = self._residency.pop(key, None)
            if held is not None:
                self._release_locked(held, now)

    def _release_locked(
        self, held: Tuple[int, Dict[str, float]], now: float
    ) -> None:
        nbytes, shares = held
        for tenant, fraction in shares.items():
            account = self._account(tenant)
            account.settle_residency(now)
            account.resident_bytes.inc(-nbytes * fraction)

    # ------------------------------------------------------------------
    # Totals and reports
    # ------------------------------------------------------------------
    def _series_total(self, name: str) -> float:
        return sum(
            instrument.value for instrument in self.metrics.series(name)
        )

    def total_rebuild_seconds(self) -> float:
        """Σ over tenants (``unattributed`` included) — the number that
        must reconcile with the fleet's ``rebuild_seconds``."""
        return self._series_total("repro_tenant_rebuild_seconds_total")

    def total_served(self) -> int:
        return int(self._series_total("repro_tenant_served_total"))

    def total_requests(self) -> int:
        return int(self._series_total("repro_tenant_requests_total"))

    def routed_by_model(self, tenant: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for instrument in self.metrics.series("repro_tenant_routed_total"):
            tags = instrument.tag_dict
            if tags.get("tenant") != tenant:
                continue
            count = int(instrument.value)
            if count:
                out[tags.get("model", "")] = count
        return out

    def rejected_counts(self, tenant: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for instrument in self.metrics.series("repro_tenant_rejected_total"):
            tags = instrument.tag_dict
            if tags.get("tenant") != tenant:
                continue
            count = int(instrument.value)
            if count:
                out[tags.get("reason", "")] = count
        return out

    def usage_report(
        self, tenant: str, pricing: Optional[PricingModel] = None
    ) -> UsageReport:
        """One tenant's itemized usage, occupancy settled to now and
        priced through ``pricing`` (defaults)."""
        now = self._clock()
        with self._lock:
            account = self._account(tenant)
            account.settle_residency(now)
            report = UsageReport(
                tenant=tenant,
                requests=int(account.requests.value),
                served=int(account.served.value),
                failed=int(account.failed.value),
                rebuild_seconds=account.rebuild_seconds.value,
                est_seconds_saved=account.est_seconds_saved.value,
                resident_bytes=int(account.resident_bytes.value),
                resident_byte_seconds=account.resident_byte_seconds.value,
            )
        report.rejected = sum(self.rejected_counts(tenant).values())
        report.routed_by_model = self.routed_by_model(tenant)
        return report.price(pricing or PricingModel())

    def usage_reports(
        self, pricing: Optional[PricingModel] = None
    ) -> Dict[str, UsageReport]:
        pricing = pricing or PricingModel()
        return {
            tenant: self.usage_report(tenant, pricing)
            for tenant in self.tenants()
        }

    def summary(self, pricing: Optional[PricingModel] = None) -> Dict:
        """``{tenant: usage dict}`` — what host summaries embed."""
        return {
            tenant: report.as_dict()
            for tenant, report in self.usage_reports(pricing).items()
        }

    def reset(self) -> None:
        """Zero every instrument and drop residency attribution (quota
        definitions kept; token buckets re-seed on next admit)."""
        now = self._clock()
        with self._lock:
            for instrument in self.metrics.instruments():
                instrument.reset()
            self._residency.clear()
            for account in self._accounts.values():
                account.tokens = None
                account.token_stamp = now
                account.residency_stamp = now
