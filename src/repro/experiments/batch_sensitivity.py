"""Batch-size sensitivity (paper §I motivation).

The paper motivates SmartExchange with the observation that data
movement dominates "especially when the inference batch size is small or
just one": at batch 1 every weight fetched from DRAM is used once, while
larger batches amortize weight traffic across images.  This experiment
sweeps the batch size on ResNet-50 and reports how the SmartExchange
advantage over DianNao changes — it must be largest at batch 1.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware import DianNao, SmartExchangeAccelerator, build_workloads

BATCH_SIZES = (1, 2, 4, 8, 16)


def run(model_name: str = "resnet50") -> ExperimentResult:
    table = ExperimentResult(
        f"Batch-size sensitivity — {model_name} (SE gain vs DianNao)"
    )
    smartexchange = SmartExchangeAccelerator()
    diannao = DianNao()
    for batch in BATCH_SIZES:
        workloads = build_workloads(model_name, batch=batch)
        se = smartexchange.simulate_model(workloads, model_name)
        dn = diannao.simulate_model(workloads, model_name)
        table.rows.append({
            "batch": batch,
            "energy_gain_x": dn.total_energy_pj / se.total_energy_pj,
            "speedup_x": dn.total_cycles / se.total_cycles,
            "dn_dram_mb_per_img": dn.total_dram_bytes / batch / 2**20,
            "se_dram_mb_per_img": se.total_dram_bytes / batch / 2**20,
        })
    table.notes = (
        "Per-image DRAM traffic falls with batch for both designs "
        "(weight amortization), so the SmartExchange weight-compression "
        "advantage is largest at batch 1 — the paper's §I motivation."
    )
    return table
