"""Index selector cost model.

The index selector pairs non-zero coefficient rows with non-zero
activation rows (the same scheme as Cambricon-S, but at vector instead
of scalar granularity) so both the computation and the data movement of
zero pairs are skipped.  One 1-bit comparison per (coefficient row,
activation row) candidate pair; <0.05% of total energy in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.energy import EnergyModel
from repro.hardware.layers import LayerSpec, se_geometry

# A 1-bit AND/valid check is far below an 8-bit RF access; scale down.
INDEX_CHECK_FRACTION_OF_RF = 0.125


@dataclass(frozen=True)
class IndexSelectCost:
    comparisons: int

    def energy_pj(self, energy: EnergyModel) -> float:
        return self.comparisons * energy.register_file * INDEX_CHECK_FRACTION_OF_RF


def index_select_cost(spec: LayerSpec, basis_size: int | None = None) -> IndexSelectCost:
    """One index check per coefficient row per output tile."""
    geometry = se_geometry(spec, basis_size)
    output_tiles = max(1, spec.out_h * spec.out_w)
    return IndexSelectCost(comparisons=geometry.total_rows * min(output_tiles, 4096))


@dataclass(frozen=True)
class SkipProfile:
    """Fractions of row pairs skipped by the index selector."""

    weight_rows_skipped: float
    act_rows_skipped: float

    @property
    def pair_survival(self) -> float:
        """Fraction of (coefficient row, activation row) pairs computed."""
        return (1.0 - self.weight_rows_skipped) * (1.0 - self.act_rows_skipped)
