"""LCK001 — lock-coverage / race detection.

For every class that creates a ``threading.Lock``/``RLock`` on an
instance attribute, infer which attributes that lock guards (the set
written while it is held) and flag any access to a guarded attribute
at a point where the lock is not held.  This is exactly the bug class
the serving stack has fixed ad hoc over several PRs — the torn
``bytes_saved`` read, the stop/restart join race — promoted from
reviewer lore to a machine check.

The rule understands the repo's locking idioms:

- ``self._cond = threading.Condition(self._lock)`` aliases the
  condition to its lock, so ``with self._cond:`` counts as holding
  ``self._lock``.
- Methods named ``*_locked`` are caller-holds-lock helpers: their
  bodies are analyzed as if the class's lock were held (the single
  lock when the class has one; every lock when ambiguous).
- A ``# Caller holds self._lock.`` comment (or docstring sentence)
  marks the same contract explicitly, naming the lock.
- ``__init__``/``__post_init__`` are exempt — no concurrency exists
  before construction returns.

Accesses the code *means* to leave unsynchronized (advisory reads,
happens-before provided elsewhere) carry ``# repro: ignore[LCK001]``
with a rationale, which is the point: the exception is written down
where it happens.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    build_parents,
    iter_class_defs,
    iter_methods,
    leaf_name,
    self_attr,
)
from repro.analysis.core import Finding, Rule
from repro.analysis.walker import SourceFile

_LOCK_CTORS = {"Lock", "RLock"}
_CONDITION_CTORS = {"Condition"}

#: Method calls on an attribute that mutate the object it names —
#: ``self._pending.append(x)`` is a write to ``_pending`` for
#: coverage-inference purposes.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}

_CALLER_HOLDS_RE = re.compile(
    r"caller\s+(?:must\s+)?hold\w*\b[^.\n]*?self\.(\w+)", re.IGNORECASE
)


@dataclass
class _Access:
    attr: str
    node: ast.AST
    held: FrozenSet[str]
    write: bool
    method: str
    exempt: bool = False


@dataclass
class _ClassModel:
    name: str
    locks: Set[str] = field(default_factory=set)
    # condition attr -> underlying lock attr
    aliases: Dict[str, str] = field(default_factory=dict)
    accesses: List[_Access] = field(default_factory=list)

    def lock_of(self, attr: str) -> Optional[str]:
        if attr in self.locks:
            return attr
        return self.aliases.get(attr)


class LockCoverageRule(Rule):
    id = "LCK001"
    name = "lock-coverage"
    description = (
        "attribute written under a lock must not be accessed without it"
    )

    # ------------------------------------------------------------------
    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        parents = build_parents(source.tree)
        findings: List[Finding] = []
        for cls in iter_class_defs(source.tree):
            model = self._build_model(cls)
            if not model.locks:
                continue
            self._collect_accesses(source, cls, model, parents)
            findings.extend(self._judge(source, model))
        return findings

    # ------------------------------------------------------------------
    def _build_model(self, cls: ast.ClassDef) -> _ClassModel:
        model = _ClassModel(name=cls.name)
        for method in iter_methods(cls):
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                ctor = leaf_name(value.func)
                for target in node.targets:
                    attr = self_attr(target)
                    if attr is None:
                        continue
                    if ctor in _LOCK_CTORS:
                        model.locks.add(attr)
                    elif ctor in _CONDITION_CTORS:
                        if value.args:
                            lock = self_attr(value.args[0])
                            if lock is not None:
                                model.aliases[attr] = lock
                                continue
                        # Bare Condition() owns its lock; treat the
                        # condition attribute itself as a lock.
                        model.locks.add(attr)
        return model

    # ------------------------------------------------------------------
    def _base_held(
        self, source: SourceFile, method: ast.FunctionDef, model: _ClassModel
    ) -> FrozenSet[str]:
        """Locks the caller contract says are held on entry."""
        held: Set[str] = set()
        segment = source.segment(method)
        for match in _CALLER_HOLDS_RE.finditer(segment):
            lock = model.lock_of(match.group(1))
            if lock is not None:
                held.add(lock)
        if method.name.endswith("_locked") and not held:
            # Single-lock classes are unambiguous; with several locks,
            # assume all are held rather than guess (under-flagging
            # beats false alarms for a caller-documented contract).
            held.update(model.locks)
        return frozenset(held)

    def _collect_accesses(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        model: _ClassModel,
        parents: Dict[ast.AST, ast.AST],
    ) -> None:
        for method in iter_methods(cls):
            exempt = method.name in _EXEMPT_METHODS
            base = self._base_held(source, method, model)
            self._walk(method.body, base, model, parents, method.name, exempt)

    def _walk(
        self,
        body: List[ast.stmt],
        held: FrozenSet[str],
        model: _ClassModel,
        parents: Dict[ast.AST, ast.AST],
        method: str,
        exempt: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: Set[str] = set()
                for item in stmt.items:
                    self._scan_expr(
                        item.context_expr, held, model, parents, method, exempt
                    )
                    attr = self_attr(item.context_expr)
                    if attr is not None:
                        lock = model.lock_of(attr)
                        if lock is not None:
                            acquired.add(lock)
                self._walk(
                    stmt.body,
                    held | frozenset(acquired),
                    model,
                    parents,
                    method,
                    exempt,
                )
                continue
            # Recurse into compound statements, scanning their
            # non-statement children (tests, iterables, targets).
            for _field_name, value in ast.iter_fields(stmt):
                children = value if isinstance(value, list) else [value]
                for child in children:
                    if isinstance(child, ast.stmt):
                        self._walk(
                            [child], held, model, parents, method, exempt
                        )
                    elif isinstance(child, ast.excepthandler):
                        if child.type is not None:
                            self._scan_expr(
                                child.type, held, model, parents, method,
                                exempt,
                            )
                        self._walk(
                            child.body, held, model, parents, method, exempt
                        )
                    elif isinstance(child, ast.AST):
                        self._scan_expr(
                            child, held, model, parents, method, exempt
                        )

    def _scan_expr(
        self,
        expr: ast.AST,
        held: FrozenSet[str],
        model: _ClassModel,
        parents: Dict[ast.AST, ast.AST],
        method: str,
        exempt: bool,
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Attribute):
                continue
            attr = self_attr(node)
            if attr is None:
                continue
            if attr in model.locks or attr in model.aliases:
                continue
            model.accesses.append(
                _Access(
                    attr=attr,
                    node=node,
                    held=held,
                    write=self._is_write(node, parents),
                    method=method,
                    exempt=exempt,
                )
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_write(node: ast.Attribute, parents: Dict[ast.AST, ast.AST]) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parent = parents.get(node)
        # self._cache[k] = v / del self._cache[k]
        if (
            isinstance(parent, ast.Subscript)
            and parent.value is node
            and isinstance(parent.ctx, (ast.Store, ast.Del))
        ):
            return True
        # self.stats.hits += 1 — mutation through the attribute
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and isinstance(parent.ctx, (ast.Store, ast.Del))
        ):
            return True
        # self._pending.append(x) and friends
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and parent.attr in _MUTATORS
        ):
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return True
        return False

    # ------------------------------------------------------------------
    def _judge(
        self, source: SourceFile, model: _ClassModel
    ) -> Iterable[Finding]:
        guarded: Dict[str, Set[str]] = {lock: set() for lock in model.locks}
        for access in model.accesses:
            if access.write:
                for lock in access.held:
                    guarded.setdefault(lock, set()).add(access.attr)
        attr_locks: Dict[str, Set[str]] = {}
        for lock, attrs in guarded.items():
            for attr in attrs:
                attr_locks.setdefault(attr, set()).add(lock)
        if not attr_locks:
            return
        seen: Set[Tuple[str, int]] = set()
        for access in model.accesses:
            if access.exempt:
                continue
            locks = attr_locks.get(access.attr)
            if locks is None:
                continue
            if access.held & locks:
                continue
            line = getattr(access.node, "lineno", 1)
            if (access.attr, line) in seen:
                continue
            seen.add((access.attr, line))
            lock_names = "/".join(sorted(locks))
            verb = "written" if access.write else "read"
            yield self.finding(
                source,
                access.node,
                f"{model.name}.{access.attr} is guarded by "
                f"self.{lock_names} but {verb} in {access.method}() "
                f"without holding it",
            )
