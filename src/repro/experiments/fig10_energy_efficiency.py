"""Figure 10: normalized energy efficiency (over DianNao).

Paper values for the SmartExchange bar: VGG11 6.7, ResNet50 3.4,
MBV2 2.3, EffB0 2.0, VGG19 5.0, ResNet164 3.3, DeepLabV3+ 5.2
(geometric mean 3.7); SE must be the best design on every model.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geometric_mean
from repro.experiments.hardware_comparison import ACCELERATOR_ORDER, suite_results

PAPER_SMARTEXCHANGE = {
    "vgg11": 6.7, "resnet50": 3.4, "mobilenetv2": 2.3, "efficientnet_b0": 2.0,
    "vgg19": 5.0, "resnet164": 3.3, "deeplabv3plus": 5.2,
}


def run() -> ExperimentResult:
    results = suite_results(include_fc=False)
    table = ExperimentResult("Figure 10 — normalized energy efficiency (vs DianNao)")
    per_accelerator = {name: [] for name in ACCELERATOR_ORDER}
    for model, per_model in results.items():
        base = per_model["diannao"].total_energy_pj
        row = {"model": model}
        for name in ACCELERATOR_ORDER:
            if name not in per_model:
                row[name] = float("nan")
                continue
            gain = base / per_model[name].total_energy_pj
            row[name] = gain
            per_accelerator[name].append(gain)
        row["paper_se"] = PAPER_SMARTEXCHANGE[model]
        table.rows.append(row)
    geomean_row = {"model": "geomean"}
    for name in ACCELERATOR_ORDER:
        geomean_row[name] = geometric_mean(per_accelerator[name])
    geomean_row["paper_se"] = 3.7
    table.rows.append(geomean_row)
    table.notes = (
        "CONV (+ squeeze-and-excite) layers only, batch 1, 8-bit "
        "activations, 4-bit/8-bit coefficient/basis precision; SCNN is "
        "skipped on EfficientNet-B0 as in the paper."
    )
    return table
