"""Sparsity metrics, Booth encoding, and sparse-index encodings."""

from repro.sparsity.booth import (
    booth_decode,
    booth_digits,
    booth_encode,
    booth_nonzero_terms,
    booth_term_sparsity,
)
from repro.sparsity.encoding import (
    crs_encode,
    crs_decode,
    crs_overhead_bits,
    direct_index_decode,
    direct_index_encode,
    direct_index_overhead_bits,
    rlc_decode,
    rlc_encode,
    rlc_overhead_bits,
)
from repro.sparsity.metrics import (
    bit_sparsity,
    channel_sparsity,
    element_sparsity,
    quantize_to_fixed,
    vector_sparsity,
)

__all__ = [
    "element_sparsity",
    "vector_sparsity",
    "channel_sparsity",
    "bit_sparsity",
    "quantize_to_fixed",
    "booth_digits",
    "booth_encode",
    "booth_decode",
    "booth_nonzero_terms",
    "booth_term_sparsity",
    "rlc_encode",
    "rlc_decode",
    "rlc_overhead_bits",
    "direct_index_encode",
    "direct_index_decode",
    "direct_index_overhead_bits",
    "crs_encode",
    "crs_decode",
    "crs_overhead_bits",
]
