"""Tests for the energy model and the layer-spec abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.energy import (
    DEFAULT_ENERGY_MODEL,
    EnergyModel,
    sram_energy_per_8bit,
)
from repro.hardware.layers import (
    LayerKind,
    LayerSparsity,
    LayerSpec,
    LayerWorkload,
    dense_storage_bits,
    se_geometry,
    smartexchange_storage_bits,
    smartexchange_storage_breakdown,
)


class TestEnergyModel:
    def test_table1_constants(self):
        model = DEFAULT_ENERGY_MODEL
        assert model.dram == 100.0
        assert model.mac == 0.143
        assert model.multiplier == 0.124
        assert model.adder == 0.019

    def test_memory_hierarchy_ordering(self):
        """Table I's central claim: DRAM >> SRAM >> compute."""
        model = DEFAULT_ENERGY_MODEL
        assert model.dram / model.sram(512) > 40
        assert model.sram(2) / model.mac > 9  # paper: >= 9.5x
        assert model.mac > model.multiplier > model.adder

    def test_sram_interpolation_endpoints(self):
        assert sram_energy_per_8bit(2) == pytest.approx(1.36)
        assert sram_energy_per_8bit(512) == pytest.approx(2.45)

    def test_sram_monotone_in_size(self):
        sizes = [2, 4, 16, 64, 256, 512]
        energies = [sram_energy_per_8bit(s) for s in sizes]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_sram_clamps_out_of_range(self):
        assert sram_energy_per_8bit(1) == pytest.approx(1.36)
        assert sram_energy_per_8bit(10_000) == pytest.approx(2.45)

    def test_sram_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sram_energy_per_8bit(0)

    def test_table1_rows_complete(self):
        names = [row[0] for row in DEFAULT_ENERGY_MODEL.table1_rows()]
        assert names == ["DRAM", "SRAM (2KB)", "SRAM (512KB)", "MAC",
                         "multiplier", "adder"]


def conv_spec(**kwargs) -> LayerSpec:
    defaults = dict(name="conv", kind=LayerKind.CONV, in_channels=16,
                    out_channels=32, kernel=3, stride=1, padding=1,
                    in_h=14, in_w=14)
    defaults.update(kwargs)
    return LayerSpec(**defaults)


class TestLayerSpec:
    def test_conv_output_shape(self):
        spec = conv_spec(stride=2)
        assert (spec.out_h, spec.out_w) == (7, 7)

    def test_conv_counts(self):
        spec = conv_spec()
        assert spec.weight_count == 32 * 16 * 9
        assert spec.input_count == 16 * 14 * 14
        assert spec.output_count == 32 * 14 * 14
        assert spec.macs == 32 * 14 * 14 * 16 * 9
        assert spec.reduction_depth == 16 * 9

    def test_depthwise_counts(self):
        spec = conv_spec(kind=LayerKind.DEPTHWISE, in_channels=32,
                         out_channels=32)
        assert spec.weight_count == 32 * 9
        assert spec.macs == 32 * 14 * 14 * 9
        assert spec.reduction_depth == 9

    def test_fc_counts(self):
        spec = LayerSpec(name="fc", kind=LayerKind.FC, in_channels=128,
                         out_channels=10)
        assert spec.out_h == spec.out_w == 1
        assert spec.weight_count == 1280
        assert spec.macs == 1280
        assert spec.is_fc_like

    def test_squeeze_excite_is_fc_like(self):
        spec = LayerSpec(name="se", kind=LayerKind.SQUEEZE_EXCITE,
                         in_channels=64, out_channels=16)
        assert spec.is_fc_like

    def test_dilation_changes_output(self):
        base = conv_spec(padding=0)
        dilated = conv_spec(padding=0, dilation=2)
        assert dilated.out_h < base.out_h

    def test_validation(self):
        with pytest.raises(ValueError):
            conv_spec(in_channels=0)
        with pytest.raises(ValueError):
            conv_spec(kernel=0)


class TestLayerSparsity:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            LayerSparsity(weight_element=1.5)
        with pytest.raises(ValueError):
            LayerSparsity(act_booth=-0.1)

    def test_workload_with_sparsity(self):
        workload = LayerWorkload(spec=conv_spec())
        updated = workload.with_sparsity(weight_vector=0.5)
        assert updated.sparsity.weight_vector == 0.5
        assert workload.sparsity.weight_vector == 0.0  # original frozen


class TestSEGeometry:
    def test_conv_geometry(self):
        geometry = se_geometry(conv_spec())
        assert geometry.matrices == 32
        assert geometry.rows == 16 * 3
        assert geometry.basis_size == 3
        assert geometry.total_rows == 32 * 48

    def test_fc_geometry_with_padding(self):
        spec = LayerSpec(name="fc", kind=LayerKind.FC, in_channels=10,
                         out_channels=4)
        geometry = se_geometry(spec)
        assert geometry.matrices == 4
        assert geometry.rows == 4  # ceil(10 / 3)

    def test_depthwise_geometry(self):
        spec = conv_spec(kind=LayerKind.DEPTHWISE, in_channels=32,
                         out_channels=32, kernel=5)
        geometry = se_geometry(spec)
        assert geometry.rows == 5
        assert geometry.basis_size == 5

    def test_pointwise_uses_fc_rule(self):
        spec = conv_spec(kernel=1, padding=0)
        geometry = se_geometry(spec)
        assert geometry.rows == int(np.ceil(16 / 3))


class TestSEStorage:
    def test_breakdown_fields(self):
        spec = conv_spec()
        breakdown = smartexchange_storage_breakdown(spec, 0.0)
        assert breakdown["basis"] == 32 * 9 * 8
        assert breakdown["index"] == 32 * 48
        assert breakdown["coefficient"] == 32 * 48 * 3 * 4

    def test_sparsity_shrinks_coefficients_only(self):
        spec = conv_spec()
        dense = smartexchange_storage_breakdown(spec, 0.0)
        sparse = smartexchange_storage_breakdown(spec, 0.5)
        assert sparse["coefficient"] < dense["coefficient"]
        assert sparse["basis"] == dense["basis"]
        assert sparse["index"] == dense["index"]

    def test_total_is_sum(self):
        spec = conv_spec()
        assert smartexchange_storage_bits(spec, 0.3) == sum(
            smartexchange_storage_breakdown(spec, 0.3).values()
        )

    def test_compressed_beats_dense_8bit(self):
        spec = conv_spec()
        assert smartexchange_storage_bits(spec, 0.0) < dense_storage_bits(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            smartexchange_storage_bits(conv_spec(), 1.5)

    @settings(max_examples=30)
    @given(sparsity=st.floats(0.0, 1.0))
    def test_monotone_in_sparsity(self, sparsity):
        spec = conv_spec()
        assert (smartexchange_storage_bits(spec, sparsity)
                <= smartexchange_storage_bits(spec, 0.0))
