"""Tests for the Section III-C reshaping rules (exact round trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reshape import (
    from_matrices,
    plan_conv,
    plan_fc,
    to_matrices,
)


class TestConvPlan:
    def test_plan_fields(self):
        plan = plan_conv((8, 4, 3, 3))
        assert plan.kind == "conv"
        assert plan.basis_size == 3
        assert plan.unit_rows == 12  # C * R
        assert plan.total_matrices == 8

    def test_non_square_kernel_rejected(self):
        with pytest.raises(ValueError, match="square"):
            plan_conv((8, 4, 3, 5))

    def test_1x1_rejected(self):
        with pytest.raises(ValueError, match="plan_fc"):
            plan_conv((8, 4, 1, 1))

    def test_roundtrip(self, rng):
        weight = rng.normal(size=(6, 5, 3, 3))
        plan = plan_conv(weight.shape)
        matrices = to_matrices(weight, plan)
        assert all(m.shape == (15, 3) for m in matrices)
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_roundtrip_5x5(self, rng):
        weight = rng.normal(size=(2, 3, 5, 5))
        plan = plan_conv(weight.shape)
        matrices = to_matrices(weight, plan)
        assert all(m.shape == (15, 5) for m in matrices)
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_slicing_tall_matrices(self, rng):
        weight = rng.normal(size=(2, 16, 3, 3))  # 48 rows per filter
        plan = plan_conv(weight.shape, max_rows_per_slice=20)
        assert plan.matrices_per_unit == 3
        matrices = to_matrices(weight, plan)
        assert len(matrices) == 6
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_channel_blocks_are_contiguous(self, rng):
        weight = rng.normal(size=(1, 4, 3, 3))
        plan = plan_conv(weight.shape)
        matrix = to_matrices(weight, plan)[0]
        # Rows 3c..3c+2 must be channel c's kernel rows.
        for channel in range(4):
            np.testing.assert_array_equal(
                matrix[3 * channel : 3 * channel + 3], weight[0, channel]
            )


class TestFCPlan:
    def test_divisible_roundtrip(self, rng):
        weight = rng.normal(size=(4, 12))
        plan = plan_fc(weight.shape, 3)
        matrices = to_matrices(weight, plan)
        assert all(m.shape == (4, 3) for m in matrices)
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_padding_roundtrip(self, rng):
        weight = rng.normal(size=(3, 10))  # 10 not divisible by 3
        plan = plan_fc(weight.shape, 3)
        assert plan.padded_cols == 12
        matrices = to_matrices(weight, plan)
        assert all(m.shape == (4, 3) for m in matrices)
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_padding_is_zero(self, rng):
        weight = rng.normal(size=(1, 7))
        plan = plan_fc(weight.shape, 3)
        matrix = to_matrices(weight, plan)[0]
        assert matrix.reshape(-1)[7:].sum() == 0.0

    def test_slicing(self, rng):
        weight = rng.normal(size=(2, 30))
        plan = plan_fc(weight.shape, 3, max_rows_per_slice=4)
        assert plan.matrices_per_unit == 3
        matrices = to_matrices(weight, plan)
        assert len(matrices) == 6
        np.testing.assert_array_equal(from_matrices(matrices, plan), weight)

    def test_invalid_basis_size(self):
        with pytest.raises(ValueError):
            plan_fc((2, 10), 0)

    def test_wrong_matrix_count_raises(self, rng):
        weight = rng.normal(size=(4, 12))
        plan = plan_fc(weight.shape, 3)
        matrices = to_matrices(weight, plan)
        with pytest.raises(ValueError, match="expected"):
            from_matrices(matrices[:-1], plan)

    def test_wrong_weight_shape_raises(self, rng):
        plan = plan_fc((4, 12), 3)
        with pytest.raises(ValueError, match="does not match"):
            to_matrices(rng.normal(size=(4, 13)), plan)


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 5),
    c=st.integers(1, 8),
    k=st.sampled_from([3, 5]),
    max_rows=st.sampled_from([None, 4, 7]),
)
def test_conv_roundtrip_property(m, c, k, max_rows):
    rng = np.random.default_rng(m * 100 + c * 10 + k)
    weight = rng.normal(size=(m, c, k, k))
    plan = plan_conv(weight.shape, max_rows)
    rebuilt = from_matrices(to_matrices(weight, plan), plan)
    np.testing.assert_array_equal(rebuilt, weight)


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 6),
    c=st.integers(1, 25),
    s=st.integers(1, 6),
    max_rows=st.sampled_from([None, 3]),
)
def test_fc_roundtrip_property(m, c, s, max_rows):
    rng = np.random.default_rng(m * 1000 + c * 10 + s)
    weight = rng.normal(size=(m, c))
    plan = plan_fc(weight.shape, s, max_rows)
    rebuilt = from_matrices(to_matrices(weight, plan), plan)
    np.testing.assert_array_equal(rebuilt, weight)
