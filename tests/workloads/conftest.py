"""Shared fixtures for the workload-harness tests.

The sweeps need a *mixed* bundle (smartexchange convs + quant-linear
head) so a cost-aware admission policy has something to exploit; the
bundle is published once per module because the smartexchange encode
dominates fixture time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.codecs import SmartExchangeCodec, get_codec
from repro.core import SmartExchangeConfig
from repro.serving import ArtifactStore, ModelRegistry

MODEL_NAME = "cnn"


def build_mixed_model(seed: int = 0) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


@pytest.fixture(scope="module")
def mixed_registry(tmp_path_factory) -> ModelRegistry:
    store = ArtifactStore(tmp_path_factory.mktemp("harness") / "artifacts")
    model = build_mixed_model(seed=0)
    config = SmartExchangeConfig(max_iterations=4, target_row_sparsity=0.5)
    se, ql = SmartExchangeCodec(config), get_codec("quant-linear")
    payloads = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            payloads[name] = se.encode(module.weight.data)
        elif isinstance(module, nn.Linear):
            payloads[name] = ql.encode(module.weight.data)
    store.publish_payloads(payloads, name=MODEL_NAME, model=model)
    return ModelRegistry(store)
