"""A minimal reverse-mode autograd tensor.

This is the substrate that replaces PyTorch for the reproduction: a NumPy
array wrapped with a gradient tape.  Every differentiable operation builds
a node whose ``_backward`` closure scatters the output gradient to the
parents; :meth:`Tensor.backward` runs a topological sort over the tape and
accumulates ``grad`` arrays on every tensor with ``requires_grad=True``.

Only the operations needed by the SmartExchange model zoo are provided;
convolution, pooling and normalization live in :mod:`repro.nn.functional`
because they need layer-level bookkeeping (im2col caches, running stats).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic: exp is only ever taken of -|x|."""
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes.

    NumPy broadcasting prepends length-1 axes and stretches them; the
    adjoint of broadcasting is therefore a sum over the stretched axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional gradient tape entry.

    Parameters
    ----------
    data:
        Array (or scalar) holding the value.  Stored as ``float64`` unless
        the input already has a floating dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self.op = op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}, op={self.op!r})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=np.float64)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (appropriate for a scalar loss).
        """
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
        topo: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, pgrad in node._backward(node_grad):
                if not (parent.requires_grad or parent._parents):
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = pgrad if existing is None else existing + pgrad

    @staticmethod
    def _node(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], Iterable[Tuple["Tensor", np.ndarray]]],
        op: str,
    ) -> "Tensor":
        """Create a tape node; the node requires grad if any parent does."""
        needs = any(p.requires_grad or p._parents for p in parents)
        out = Tensor(data, requires_grad=False, _parents=parents if needs else (), op=op)
        if needs:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(g, other.shape)),
            )

        return self._node(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(-g, other.shape)),
            )

        return self._node(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g * other.data, self.shape)),
                (other, _unbroadcast(g * self.data, other.shape)),
            )

        return self._node(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g / other.data, self.shape)),
                (other, _unbroadcast(-g * self.data / (other.data**2), other.shape)),
            )

        return self._node(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return self._node(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return self._node(self.data**exponent, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(g: np.ndarray):
            return (
                (self, g @ other.data.swapaxes(-1, -2)),
                (other, self.data.swapaxes(-1, -2) @ g),
            )

        return self._node(self.data @ other.data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(g: np.ndarray):
            return ((self, g.reshape(original)),)

        return self._node(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray):
            return ((self, g.transpose(inverse)),)

        return self._node(self.data.transpose(axes), (self,), backward, "transpose")

    def flatten_batch(self) -> "Tensor":
        """Flatten all axes except the leading (batch) axis."""
        return self.reshape(self.shape[0], -1)

    def __getitem__(self, key) -> "Tensor":
        def backward(g: np.ndarray):
            full = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(full, key, g)
            return ((self, full),)

        return self._node(self.data[key], (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Reductions & elementwise nonlinearities
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(g: np.ndarray):
            if axis is None:
                grad = np.broadcast_to(g, self.shape).copy()
            else:
                g_expanded = g if keepdims else np.expand_dims(g, axis)
                grad = np.broadcast_to(g_expanded, self.shape).copy()
            return ((self, grad),)

        return self._node(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, int):
            count = self.shape[axis]
        else:
            count = int(np.prod([self.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray):
            return ((self, g * out_data),)

        return self._node(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g / self.data),)

        return self._node(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray):
            return ((self, g * 0.5 / out_data),)

        return self._node(out_data, (self,), backward, "sqrt")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return self._node(self.data * mask, (self,), backward, "relu")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return self._node(np.clip(self.data, low, high), (self,), backward, "clip")

    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)

        def backward(g: np.ndarray):
            return ((self, g * out_data * (1.0 - out_data)),)

        return self._node(out_data, (self,), backward, "sigmoid")

    def silu(self) -> "Tensor":
        """SiLU / swish: ``x * sigmoid(x)`` (used by EfficientNet)."""
        sig = _stable_sigmoid(self.data)
        out_data = self.data * sig

        def backward(g: np.ndarray):
            return ((self, g * (sig + self.data * sig * (1.0 - sig))),)

        return self._node(out_data, (self,), backward, "silu")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                mask = self.data == out_data
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = self.data == expanded
                g = g if keepdims else np.expand_dims(g, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            return ((self, mask * g / counts),)

        return self._node(out_data, (self,), backward, "max")


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with a differentiable split."""
    tensors = [Tensor._wrap(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        out = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            out.append((tensor, g[tuple(index)]))
        return tuple(out)

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._node(data, tuple(tensors), backward, "concat")


def stack_parameters(tensors: Sequence[Tensor]) -> List[np.ndarray]:
    """Convenience: the raw arrays of a sequence of tensors."""
    return [t.data for t in tensors]
