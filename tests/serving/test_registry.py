"""Model registry: lazy loading, caching, version resolution."""

import threading

import pytest

from repro.serving import ArtifactNotFoundError, ModelRegistry


class TestRegistry:
    def test_lazy_load_and_cache(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        assert registry.loaded() == []
        handle = registry.get(manifest.name)
        assert registry.loaded() == [f"{manifest.name}:{manifest.version}"]
        assert registry.get(manifest.name) is handle  # cached object

    def test_handle_contents(self, published):
        store, manifest, _, report, _ = published
        handle = ModelRegistry(store).get(manifest.name)
        assert handle.key == f"{manifest.name}:{manifest.version}"
        assert set(handle.payloads) == {l.name for l in report.layers}
        assert set(handle.layer_specs) == {l.name for l in report.layers}
        assert handle.residual is not None

    def test_latest_resolution_tracks_new_publishes(self, published):
        store, manifest, model, report, config = published
        registry = ModelRegistry(store)
        first = registry.get(manifest.name)
        store.publish(report, config, name=manifest.name, model=model)
        second = registry.get(manifest.name)
        assert first.version == "v1"
        assert second.version == "v2"
        # Both stay resident under their concrete versions.
        assert len(registry.loaded()) == 2

    def test_pinned_version(self, published):
        store, manifest, model, report, config = published
        store.publish(report, config, name=manifest.name, model=model)
        registry = ModelRegistry(store)
        assert registry.get(manifest.name, "v1").version == "v1"

    def test_unload(self, published):
        store, manifest, model, report, config = published
        store.publish(report, config, name=manifest.name, model=model)
        registry = ModelRegistry(store)
        registry.get(manifest.name, "v1")
        registry.get(manifest.name, "v2")
        registry.unload(manifest.name, "v1")
        assert registry.loaded() == [f"{manifest.name}:v2"]
        registry.unload(manifest.name)
        assert registry.loaded() == []

    def test_models_and_versions_passthrough(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        assert registry.models() == [manifest.name]
        assert registry.versions(manifest.name) == [manifest.version]

    def test_unknown_model(self, published):
        store, *_ = published
        with pytest.raises(ArtifactNotFoundError):
            ModelRegistry(store).get("nope")


class TestSingleFlightLoads:
    """Concurrent ``get``s of one unloaded bundle load it exactly once.

    Regression: two threads racing on a cold key both used to run the
    full SHA-256 verify + npz open, with one handle (and its open lazy
    payload file) silently discarded by ``setdefault``.
    """

    def _count_verifies(self, store):
        counter = {"verifies": 0}
        counter_lock = threading.Lock()
        original = store.verify

        def counting_verify(name, version):
            with counter_lock:
                counter["verifies"] += 1
            return original(name, version)

        store.verify = counting_verify
        return counter

    def test_concurrent_gets_verify_once(self, published):
        store, manifest, *_ = published
        counter = self._count_verifies(store)
        registry = ModelRegistry(store)
        handles, errors = [], []
        barrier = threading.Barrier(8)

        def fetch():
            try:
                barrier.wait()
                handles.append(registry.get(manifest.name))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counter["verifies"] == 1
        assert len(handles) == 8
        assert all(handle is handles[0] for handle in handles)

    def test_single_flight_stress(self, published):
        """50 iterations with a fresh registry: never more than one load."""
        store, manifest, *_ = published
        counter = self._count_verifies(store)
        for iteration in range(50):
            registry = ModelRegistry(store)
            results = [None] * 4
            barrier = threading.Barrier(4)

            def fetch(index, registry=registry, barrier=barrier,
                      results=results):
                barrier.wait()
                results[index] = registry.get(manifest.name)

            threads = [
                threading.Thread(target=fetch, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r is results[0] for r in results)
            assert counter["verifies"] == iteration + 1

    def test_failed_load_releases_waiters_to_retry(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        attempts = {"count": 0}
        original = store.verify

        def flaky_verify(name, version):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient checksum failure")
            return original(name, version)

        store.verify = flaky_verify
        with pytest.raises(RuntimeError, match="transient"):
            registry.get(manifest.name)
        handle = registry.get(manifest.name)  # retried, not wedged
        assert handle.name == manifest.name
        assert attempts["count"] == 2


class TestLifecycle:
    """Explicit close() / context-manager support (handles + registry)."""

    def test_handle_close_releases_lazy_payload_file(self, published):
        store, manifest, *_ = published
        handle = ModelRegistry(store).get(manifest.name)
        first = next(iter(handle.payloads))
        loaded = handle.payloads[first]  # fault one layer in
        assert not handle.payloads.closed
        handle.close()
        assert handle.payloads.closed
        # Already-loaded layers stay readable after close.
        assert handle.payloads[first] is loaded

    def test_handle_context_manager(self, published):
        store, manifest, *_ = published
        with ModelRegistry(store).get(manifest.name) as handle:
            assert not handle.payloads.closed
        assert handle.payloads.closed

    def test_handle_close_is_noop_for_dict_payloads(self, published):
        store, manifest, *_ = published
        lazy = ModelRegistry(store).get(manifest.name)
        from repro.serving import CompressedModelHandle

        eager = CompressedModelHandle(
            manifest=lazy.manifest,
            payloads=dict(lazy.payloads),
            residual=lazy.residual,
        )
        eager.close()  # must not raise

    def test_payload_file_context_manager(self, published):
        store, manifest, *_ = published
        with store.load_payloads(manifest.name) as payloads:
            assert not payloads.closed
            list(payloads)  # index access only
        assert payloads.closed

    def test_registry_close_drops_and_closes_handles(self, published):
        store, manifest, model, report, config = published
        store.publish(report, config, name=manifest.name, model=model)
        registry = ModelRegistry(store)
        v1 = registry.get(manifest.name, "v1")
        v2 = registry.get(manifest.name, "v2")
        assert len(registry.loaded()) == 2
        registry.close()
        assert registry.loaded() == []
        assert v1.payloads.closed and v2.payloads.closed
        # The registry stays usable: the next get reloads fresh.
        fresh = registry.get(manifest.name, "v1")
        assert fresh is not v1
        assert not fresh.payloads.closed

    def test_registry_context_manager(self, published):
        store, manifest, *_ = published
        with ModelRegistry(store) as registry:
            handle = registry.get(manifest.name)
        assert registry.loaded() == []
        assert handle.payloads.closed

    def test_unload_does_not_close_payloads(self, published):
        store, manifest, *_ = published
        registry = ModelRegistry(store)
        handle = registry.get(manifest.name)
        registry.unload(manifest.name)
        # unload only forgets; a live engine holding the handle keeps
        # reading (the file closes itself when fully cached or on GC).
        assert not handle.payloads.closed
