"""Bench: regenerate the §III-C post-hoc VGG19 experiment."""

from benchmarks.conftest import run_and_print
from repro.experiments import posthoc_vgg19


def bench_posthoc_vgg19(benchmark):
    result = run_and_print(benchmark, lambda: posthoc_vgg19.run(max_iterations=10))
    # Threshold-only post-processing: >4x from the 4-bit quantization
    # alone (paper reaches >10x on the much more redundant full-size net).
    assert result.rows[0]["cr_x"] > 4.0
