"""Training / evaluation loops shared by experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.loss import accuracy, cross_entropy, top_k_accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor


@dataclass
class TrainHistory:
    """Per-epoch record of a training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    eval_accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        if self.eval_accuracies:
            return self.eval_accuracies[-1]
        if self.train_accuracies:
            return self.train_accuracies[-1]
        return 0.0


def iterate_minibatches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled minibatches covering the dataset once."""
    count = len(images)
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield images[index], labels[index]


def train_epoch(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    optimizer,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    loss_fn: Callable = cross_entropy,
    epoch_hook: Optional[Callable[[], None]] = None,
) -> Tuple[float, float]:
    """One epoch of SGD; returns (mean loss, train accuracy)."""
    model.train()
    losses = []
    correct = 0
    for batch_x, batch_y in iterate_minibatches(images, labels, batch_size, rng):
        optimizer.zero_grad()
        logits = model(Tensor(batch_x))
        loss = loss_fn(logits, batch_y)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
        correct += int((logits.numpy().argmax(axis=1) == batch_y).sum())
    if epoch_hook is not None:
        epoch_hook()
    return float(np.mean(losses)), correct / len(images)


def evaluate(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
    top_k: int = 1,
) -> float:
    """Top-k accuracy of the model over a dataset."""
    model.eval()
    logits_all = predict(model, images, batch_size=batch_size)
    if top_k == 1:
        return accuracy(logits_all, labels)
    return top_k_accuracy(logits_all, labels, k=top_k)


def predict(model: Module, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
    """Raw logits of the model over a dataset (eval mode)."""
    model.eval()
    chunks = []
    for start in range(0, len(images), batch_size):
        logits = model(Tensor(images[start : start + batch_size]))
        chunks.append(logits.numpy())
    return np.concatenate(chunks, axis=0)


def fit(
    model: Module,
    train_images: np.ndarray,
    train_labels: np.ndarray,
    eval_images: Optional[np.ndarray] = None,
    eval_labels: Optional[np.ndarray] = None,
    epochs: int = 5,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    batch_size: int = 32,
    seed: int = 0,
    verbose: bool = False,
) -> TrainHistory:
    """Train ``model`` with SGD and record the history."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    history = TrainHistory()
    for epoch in range(epochs):
        loss, train_acc = train_epoch(
            model, train_images, train_labels, optimizer, batch_size, rng
        )
        history.losses.append(loss)
        history.train_accuracies.append(train_acc)
        if eval_images is not None:
            eval_acc = evaluate(model, eval_images, eval_labels)
            history.eval_accuracies.append(eval_acc)
        if verbose:  # pragma: no cover - console output only
            eval_txt = (
                f" eval={history.eval_accuracies[-1]:.3f}"
                if history.eval_accuracies
                else ""
            )
            print(f"epoch {epoch}: loss={loss:.4f} train={train_acc:.3f}{eval_txt}")
    return history
