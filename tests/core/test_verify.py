"""Tests for the compression-invariant verifier."""

import numpy as np
import pytest

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.core.verify import verify_compression

FAST = SmartExchangeConfig(max_iterations=4)


@pytest.fixture
def compressed(rng):
    model = nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(6),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(6, 4, rng=rng),
    )
    _, report = apply_smartexchange(model, FAST)
    return model, report


class TestVerifyCompression:
    def test_clean_after_compression(self, compressed):
        model, report = compressed
        assert verify_compression(model, report) == []

    def test_detects_weight_drift(self, compressed):
        model, report = compressed
        model[0].weight.data += 0.01
        violations = verify_compression(model, report)
        assert any("drifted" in v for v in violations)

    def test_detects_tampered_coefficient(self, compressed):
        model, report = compressed
        decomposition = report.layers[0].decompositions[0]
        live = np.flatnonzero(np.any(decomposition.coefficient != 0, axis=1))
        decomposition.coefficient[live[0], 0] = 0.3  # not a power of two
        violations = verify_compression(model, report)
        assert any("powers of two" in v for v in violations)

    def test_detects_stale_storage(self, compressed):
        model, report = compressed
        report.layers[0].storage.coefficient_bits += 4
        violations = verify_compression(model, report)
        assert any("stale" in v for v in violations)

    def test_detects_missing_module(self, compressed):
        model, report = compressed
        object.__setattr__(report.layers[0], "name", "ghost")
        violations = verify_compression(model, report)
        assert any("missing" in v for v in violations)

    def test_clean_after_retraining_projection(self, rng):
        from repro.core import SmartExchangeModel, retrain
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(6, 4, rng=rng),
        )
        wrapper = SmartExchangeModel(model, FAST)
        images = rng.normal(size=(24, 3, 8, 8))
        labels = rng.integers(0, 4, size=24)
        result = retrain(wrapper, images, labels, epochs=1, lr=0.01)
        # The loop ends on a projection: the model must verify clean.
        assert verify_compression(model, result.final_report) == []


class TestBoundAnalysis:
    def test_fractions_sum_to_one(self):
        from repro.hardware import SmartExchangeAccelerator, build_workloads
        result = SmartExchangeAccelerator().simulate_model(
            build_workloads("resnet50"), "resnet50"
        )
        bounds = result.bound_analysis()
        assert bounds["compute_bound"] + bounds["dram_bound"] == pytest.approx(1.0)

    def test_sufficient_bandwidth_is_all_compute_bound(self):
        from repro.hardware import (
            SmartExchangeAccelerator,
            SmartExchangeAcceleratorConfig,
            build_workloads,
        )
        config = SmartExchangeAcceleratorConfig(sufficient_dram_bandwidth=True)
        result = SmartExchangeAccelerator(config).simulate_model(
            build_workloads("resnet50"), "resnet50"
        )
        assert result.bound_analysis()["compute_bound"] == pytest.approx(1.0)

    def test_empty_model(self):
        from repro.hardware.accelerator import ModelResult
        bounds = ModelResult("a", "m").bound_analysis()
        assert bounds == {"compute_bound": 0.0, "dram_bound": 0.0}
