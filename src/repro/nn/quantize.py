"""Activation quantization (the paper's 8-bit fixed-point activations).

The SmartExchange models run with 8-bit input/output activations
(Table II, note 2).  :func:`activation_quantization` is a context
manager that fake-quantizes the output of every activation module to
``bits``-bit symmetric fixed point, so accuracy can be measured under
the same precision regime the accelerator uses.

The quantizer is a straight-through estimator: values are snapped in
the forward pass, gradients pass through unchanged — so the context is
also usable during (re-)training.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Tuple, Type

import numpy as np

from repro.nn.activation import ReLU, ReLU6, SiLU
from repro.nn.module import Module
from repro.nn.tensor import Tensor

DEFAULT_ACTIVATION_KINDS: Tuple[Type[Module], ...] = (ReLU, ReLU6, SiLU)


def fake_quantize(x: Tensor, bits: int = 8) -> Tensor:
    """Symmetric per-tensor fake quantization with a straight-through
    gradient."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    data = x.data
    max_abs = np.abs(data).max()
    if max_abs == 0.0:
        return x
    qmax = 2 ** (bits - 1) - 1
    scale = max_abs / qmax
    quantized = np.round(data / scale) * scale

    def backward(grad: np.ndarray):
        return ((x, grad),)  # straight-through

    return Tensor._node(quantized, (x,), backward, "fake_quantize")


@contextmanager
def activation_quantization(
    model: Module,
    bits: int = 8,
    kinds: Tuple[Type[Module], ...] = DEFAULT_ACTIVATION_KINDS,
):
    """Quantize every activation module's output while the context is open.

    Implemented by temporarily shadowing each matching module's
    ``forward`` with a wrapper; the original behaviour is restored on
    exit even if an exception escapes.
    """
    wrapped: List[Module] = []

    def make_wrapper(original):
        def forward(x: Tensor) -> Tensor:
            return fake_quantize(original(x), bits)

        return forward

    try:
        for _, module in model.named_modules():
            if isinstance(module, kinds):
                object.__setattr__(module, "forward",
                                   make_wrapper(module.forward))
                wrapped.append(module)
        yield model
    finally:
        for module in wrapped:
            object.__delattr__(module, "forward")


def evaluate_quantized(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    act_bits: int = 8,
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy with ``act_bits``-bit activations."""
    from repro.nn.train import evaluate

    with activation_quantization(model, act_bits):
        return evaluate(model, images, labels, batch_size=batch_size)
