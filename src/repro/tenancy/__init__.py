"""Multi-tenant metering, quotas, and usage billing for serving.

SmartExchange's storage-vs-compute trade becomes a *marketplace*
problem once many clients share one fleet: bounded dense-cache
capacity and rebuild compute are contended, priced resources (the
Memtrade framing).  This package supplies the accounting layer:

- :mod:`repro.tenancy.ledger` — :class:`TenantLedger`: per-tenant
  requests / rebuild-seconds / resident-cache-bytes / routed-model
  meters, all backed by metric instruments so fleet Prometheus totals
  and per-tenant reports reconcile by construction;
- :mod:`repro.tenancy.quota` — :class:`TenantQuota` (request rate,
  rebuild-seconds budget) with the typed
  :class:`QuotaExceededError` the host front door raises;
- :mod:`repro.tenancy.pricing` — :class:`PricingModel` /
  :class:`UsageReport`: the meters turned into an itemized bill, with
  rates derivable from :class:`~repro.costs.HardwareCostBridge`.

Typical use::

    from repro.tenancy import TenantLedger, TenantQuota

    ledger = TenantLedger(quotas={"alice": TenantQuota(
        max_requests_per_second=100, max_rebuild_seconds=5.0)})
    host = ServingHost(registry, ledger=ledger)
    ...
    host.submit(sample, model="vgg19", tenant="alice")
    print(ledger.usage_report("alice").as_dict())
"""

from repro.tenancy.ledger import TenantLedger, UNATTRIBUTED
from repro.tenancy.pricing import PricingModel, UsageReport
from repro.tenancy.quota import QuotaExceededError, TenantQuota

__all__ = [
    "PricingModel",
    "QuotaExceededError",
    "TenantLedger",
    "TenantQuota",
    "UNATTRIBUTED",
    "UsageReport",
]
