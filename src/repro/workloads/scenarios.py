"""Seedable workload scenario generators for the serving stack.

A *scenario* turns a handful of parameters (rate, duration, model mix,
tenant mix, a seed) into a deterministic request schedule — a list of
:class:`~repro.observability.ReplayRequest` rows sorted in the same
canonical ``(arrival_s, model, trace_id)`` order
:meth:`~repro.observability.TraceReader.schedule` produces.  The same
rows drive all three consumers of a schedule:

- the offline :class:`~repro.serving.CacheSimulator` (replay directly,
  or after :func:`coalesce_schedule` assigns batch ids);
- a live :class:`~repro.serving.ServingHost` (submit each row's sample
  with its model/tenant);
- the JSONL trace format (:func:`write_schedule` round-trips through
  :class:`~repro.observability.TraceReader` bit-for-bit).

Determinism contract: ``generate()`` builds a fresh
``np.random.default_rng(seed)`` on every call, so repeated calls — and
separate processes — produce bit-identical schedules.  The shapes:

- :class:`UniformScenario` — Poisson arrivals, uniform model mix; the
  null hypothesis every other scenario deviates from.
- :class:`DiurnalScenario` — sinusoidal intensity (day/night load)
  via thinning, so the *shape* is exact, not binned.
- :class:`FlashCrowdScenario` — steady background plus a burst window
  multiplying the rate, optionally focused on one model/tenant (the
  retry-storm / viral-event case capacity planning cares about).
- :class:`HotModelSkewScenario` — Zipf model popularity
  (``p_i ∝ (i+1)^-s``): a few hot models and a long cold tail, the
  regime where cost-aware admission/routing beats LRU.
- :class:`ColdStartStormScenario` — round-robin over the model list
  (maximal anti-locality): every access lands on the least-recently-
  used model, the worst case for any bounded rebuild cache.
- :class:`MixedScenario` — overlay of component scenarios (e.g. a
  diurnal baseline plus a flash crowd) with per-component time offsets.

``SCENARIOS`` / :func:`make_scenario` follow the serving stack's
policy-registry idiom so benches and CI can pick scenarios by name.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.observability import ReplayRequest, TraceRecorder

__all__ = [
    "SCENARIOS",
    "ColdStartStormScenario",
    "DiurnalScenario",
    "FlashCrowdScenario",
    "HotModelSkewScenario",
    "MixedScenario",
    "Scenario",
    "UniformScenario",
    "coalesce_schedule",
    "make_scenario",
    "write_schedule",
]

# Tenant mixes accept a plain list (uniform) or {tenant: weight}.
TenantMix = Union[Sequence[str], Mapping[str, float], None]


@runtime_checkable
class Scenario(Protocol):
    """A deterministic request-schedule generator.

    ``generate()`` must be a pure function of the scenario's
    parameters (fresh rng from ``seed`` per call) returning rows in
    the canonical ``(arrival_s, model, trace_id)`` sort order.
    """

    name: str

    def generate(self) -> List[ReplayRequest]:
        ...  # pragma: no cover - protocol


def _sorted_rows(rows: List[ReplayRequest]) -> List[ReplayRequest]:
    rows.sort(key=lambda row: (row.arrival_s, row.model or "", row.trace_id))
    return rows


def _poisson_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, duration)."""
    if rate_rps <= 0 or duration_s <= 0:
        return np.empty(0)
    # Draw in chunks of the expected count (+ margin) until past the end.
    times: List[np.ndarray] = []
    t = 0.0
    chunk = max(16, int(rate_rps * duration_s * 1.2))
    while t < duration_s:
        gaps = rng.exponential(1.0 / rate_rps, size=chunk)
        arrivals = t + np.cumsum(gaps)
        times.append(arrivals)
        t = float(arrivals[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < duration_s]


def _pick_models(
    rng: np.random.Generator,
    models: Sequence[str],
    count: int,
    weights: Optional[np.ndarray] = None,
) -> List[str]:
    if not models:
        return [None] * count  # type: ignore[list-item]
    if len(models) == 1:
        return [models[0]] * count
    index = rng.choice(len(models), size=count, p=weights)
    return [models[i] for i in index]


def _pick_tenants(
    rng: np.random.Generator, tenants: TenantMix, count: int
) -> List[Optional[str]]:
    if not tenants:
        return [None] * count
    if isinstance(tenants, Mapping):
        names = sorted(tenants)
        raw = np.array([float(tenants[name]) for name in names])
        if raw.sum() <= 0:
            raise ValueError("tenant weights must sum to > 0")
        weights = raw / raw.sum()
    else:
        names = list(tenants)
        weights = None
    if len(names) == 1:
        return [names[0]] * count
    index = rng.choice(len(names), size=count, p=weights)
    return [names[i] for i in index]


def _rows_from(
    name: str,
    arrivals: np.ndarray,
    models: List[str],
    tenants: List[Optional[str]],
) -> List[ReplayRequest]:
    # Ids are assigned in arrival order so the canonical sort is also
    # generation order — stable across runs by construction.
    order = np.argsort(arrivals, kind="stable")
    rows = [
        ReplayRequest(
            arrival_s=float(arrivals[i]),
            model=models[i],
            trace_id=f"{name}-{position:06d}",
            tenant=tenants[i],
        )
        for position, i in enumerate(order)
    ]
    return _sorted_rows(rows)


@dataclass(frozen=True)
class UniformScenario:
    """Poisson arrivals, uniform model and tenant mixes."""

    rate_rps: float = 50.0
    duration_s: float = 10.0
    models: Sequence[str] = ()
    tenants: TenantMix = None
    seed: int = 0

    name = "uniform"

    def generate(self) -> List[ReplayRequest]:
        rng = np.random.default_rng(self.seed)
        arrivals = _poisson_arrivals(rng, self.rate_rps, self.duration_s)
        n = len(arrivals)
        return _rows_from(
            self.name,
            arrivals,
            _pick_models(rng, list(self.models), n),
            _pick_tenants(rng, self.tenants, n),
        )


@dataclass(frozen=True)
class DiurnalScenario:
    """Sinusoidal intensity: ``rate(t) = rate_rps * (1 + amplitude *
    sin(2π t / period_s))``, realized exactly by thinning a Poisson
    process at the peak rate (no binning artifacts)."""

    rate_rps: float = 50.0
    duration_s: float = 10.0
    period_s: float = 10.0
    amplitude: float = 0.8
    models: Sequence[str] = ()
    tenants: TenantMix = None
    seed: int = 0

    name = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")

    def generate(self) -> List[ReplayRequest]:
        rng = np.random.default_rng(self.seed)
        peak = self.rate_rps * (1.0 + self.amplitude)
        candidates = _poisson_arrivals(rng, peak, self.duration_s)
        if len(candidates):
            intensity = self.rate_rps * (
                1.0
                + self.amplitude
                * np.sin(2.0 * np.pi * candidates / self.period_s)
            )
            keep = rng.random(len(candidates)) < intensity / peak
            arrivals = candidates[keep]
        else:
            arrivals = candidates
        n = len(arrivals)
        return _rows_from(
            self.name,
            arrivals,
            _pick_models(rng, list(self.models), n),
            _pick_tenants(rng, self.tenants, n),
        )


@dataclass(frozen=True)
class FlashCrowdScenario:
    """Steady background plus a burst window at a multiplied rate.

    During ``[burst_start_s, burst_start_s + burst_duration_s)`` an
    *additional* Poisson stream at ``(burst_multiplier - 1) x`` the
    base rate arrives, pinned to ``burst_model`` / ``burst_tenant``
    when given (a single model going viral) and drawn from the normal
    mixes otherwise.
    """

    rate_rps: float = 30.0
    duration_s: float = 10.0
    burst_start_s: float = 4.0
    burst_duration_s: float = 2.0
    burst_multiplier: float = 5.0
    burst_model: Optional[str] = None
    burst_tenant: Optional[str] = None
    models: Sequence[str] = ()
    tenants: TenantMix = None
    seed: int = 0

    name = "flash-crowd"

    def __post_init__(self) -> None:
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")

    def generate(self) -> List[ReplayRequest]:
        rng = np.random.default_rng(self.seed)
        base = _poisson_arrivals(rng, self.rate_rps, self.duration_s)
        extra_rate = self.rate_rps * (self.burst_multiplier - 1.0)
        burst = self.burst_start_s + _poisson_arrivals(
            rng, extra_rate, self.burst_duration_s
        )
        burst = burst[burst < self.duration_s]
        arrivals = np.concatenate([base, burst])
        models = _pick_models(rng, list(self.models), len(base))
        tenants = _pick_tenants(rng, self.tenants, len(base))
        if self.burst_model is not None:
            models += [self.burst_model] * len(burst)
        else:
            models += _pick_models(rng, list(self.models), len(burst))
        if self.burst_tenant is not None:
            tenants += [self.burst_tenant] * len(burst)
        else:
            tenants += _pick_tenants(rng, self.tenants, len(burst))
        return _rows_from(self.name, arrivals, models, tenants)


@dataclass(frozen=True)
class HotModelSkewScenario:
    """Zipf model popularity: ``p_i ∝ (i + 1) ** -exponent`` over the
    model list *in order* (first model hottest).  The explicit
    normalized mass (not ``rng.zipf``, which is unbounded) keeps every
    draw inside the deployed model set."""

    rate_rps: float = 50.0
    duration_s: float = 10.0
    exponent: float = 1.1
    models: Sequence[str] = ()
    tenants: TenantMix = None
    seed: int = 0

    name = "hot-skew"

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("exponent must be > 0")
        if not self.models:
            raise ValueError("hot-skew needs a non-empty model list")

    def popularity(self) -> Dict[str, float]:
        """The exact model mass the generator draws from."""
        raw = np.array(
            [(i + 1.0) ** -self.exponent for i in range(len(self.models))]
        )
        mass = raw / raw.sum()
        return {model: float(p) for model, p in zip(self.models, mass)}

    def generate(self) -> List[ReplayRequest]:
        rng = np.random.default_rng(self.seed)
        arrivals = _poisson_arrivals(rng, self.rate_rps, self.duration_s)
        n = len(arrivals)
        mass = np.array(list(self.popularity().values()))
        return _rows_from(
            self.name,
            arrivals,
            _pick_models(rng, list(self.models), n, weights=mass),
            _pick_tenants(rng, self.tenants, n),
        )


@dataclass(frozen=True)
class ColdStartStormScenario:
    """Round-robin over the model list: every access targets the
    least-recently-seen model, so any cache smaller than the whole
    fleet's working set misses maximally — the adversarial floor a
    policy sweep should include."""

    rate_rps: float = 50.0
    duration_s: float = 10.0
    models: Sequence[str] = ()
    tenants: TenantMix = None
    seed: int = 0

    name = "cold-storm"

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("cold-storm needs a non-empty model list")

    def generate(self) -> List[ReplayRequest]:
        rng = np.random.default_rng(self.seed)
        arrivals = _poisson_arrivals(rng, self.rate_rps, self.duration_s)
        n = len(arrivals)
        models = [self.models[i % len(self.models)] for i in range(n)]
        return _rows_from(
            self.name,
            arrivals,
            models,
            _pick_tenants(rng, self.tenants, n),
        )


@dataclass(frozen=True)
class MixedScenario:
    """Overlay of component scenarios, each optionally time-shifted.

    ``components`` holds scenarios or ``(scenario, offset_s)`` pairs;
    each component generates with its own seed, its rows are shifted
    by its offset, trace ids are namespaced ``m<i>:`` so two
    components of the same class never collide, and the merged
    schedule is re-sorted canonically.
    """

    components: Sequence[Union[Scenario, Tuple[Scenario, float]]] = ()
    seed: int = 0  # unused; kept so make_scenario treats it uniformly

    name = "mixed"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("mixed scenario needs at least one component")

    def generate(self) -> List[ReplayRequest]:
        merged: List[ReplayRequest] = []
        for index, component in enumerate(self.components):
            if isinstance(component, tuple):
                scenario, offset_s = component
            else:
                scenario, offset_s = component, 0.0
            for row in scenario.generate():
                merged.append(
                    dataclasses.replace(
                        row,
                        arrival_s=row.arrival_s + float(offset_s),
                        trace_id=f"m{index}:{row.trace_id}",
                    )
                )
        return _sorted_rows(merged)


SCENARIOS = {
    UniformScenario.name: UniformScenario,
    DiurnalScenario.name: DiurnalScenario,
    FlashCrowdScenario.name: FlashCrowdScenario,
    HotModelSkewScenario.name: HotModelSkewScenario,
    ColdStartStormScenario.name: ColdStartStormScenario,
    MixedScenario.name: MixedScenario,
}


def make_scenario(scenario: Union[str, Scenario], **params) -> Scenario:
    """Resolve a scenario from a registry name (or pass one through).

    ``params`` are forwarded to the named scenario's constructor; with
    an instance they must be empty (an instance is already configured).
    """
    if isinstance(scenario, str):
        try:
            cls = SCENARIOS[scenario]
        except KeyError:
            raise ValueError(
                f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}"
            ) from None
        return cls(**params)
    if params:
        raise ValueError(
            "params only apply when the scenario is given by name"
        )
    return scenario


def coalesce_schedule(
    rows: Sequence[ReplayRequest],
    max_batch_size: int = 8,
    max_wait_s: float = 0.02,
) -> List[ReplayRequest]:
    """Assign ``(engine, batch_id)`` to a generated schedule by
    emulating per-model static batching.

    A generated schedule carries no batch ids, so the simulator would
    replay it one install pass per request — the pathological floor.
    This walks each model's rows in arrival order and closes a batch
    when it reaches ``max_batch_size`` or spans more than
    ``max_wait_s``, exactly the :class:`~repro.serving.
    StaticBatchPolicy` dial — giving offline replays the live path's
    batch amortization.  ``engine`` is set to the model name (one
    engine per model, the harness's deployment shape).
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    batch_ids: Dict[Optional[str], int] = {}
    state: Dict[Optional[str], Tuple[int, float, int]] = {}
    out: List[ReplayRequest] = []
    for row in _sorted_rows(list(rows)):
        count, opened_at, batch_id = state.get(row.model, (0, 0.0, 0))
        if (
            count == 0
            or count >= max_batch_size
            or row.arrival_s - opened_at > max_wait_s
        ):
            batch_id = batch_ids.get(row.model, 0) + 1
            batch_ids[row.model] = batch_id
            count, opened_at = 0, row.arrival_s
        state[row.model] = (count + 1, opened_at, batch_id)
        out.append(
            dataclasses.replace(
                row, engine=row.model, batch_id=batch_id
            )
        )
    return out


def write_schedule(rows: Sequence[ReplayRequest], path) -> int:
    """Persist a schedule as canonical JSONL (the trace format), so a
    generated workload round-trips through
    :meth:`~repro.observability.TraceReader.schedule`; returns the row
    count."""
    with TraceRecorder(path) as recorder:
        for row in rows:
            recorder.record_request(
                trace_id=row.trace_id,
                model=row.model,
                engine=row.engine,
                arrival_s=row.arrival_s,
                latency_s=row.latency_s,
                rebuild_s=row.rebuild_s,
                batch_id=row.batch_id,
                tenant=row.tenant,
                spans=None,
            )
        return recorder.records_written
