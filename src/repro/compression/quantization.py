"""Quantization baselines.

- :class:`LinearQuantizer` — symmetric linear quantization (the S8 /
  WAGEU-BN8 family at 8 bits).
- :class:`DoReFaQuantizer` — DoReFa-Net's tanh-normalized k-bit weights.
- :class:`FP8Quantizer` — 8-bit floating point (1-4-3 by default, the
  FP8-training format).
- :class:`Pow2Quantizer` — power-of-two weights (the [40] baseline; this
  is the quantization half of SmartExchange without the decomposition).

All operate post-training (weights are snapped in place) and account
storage at the target bit width.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.codecs import DenseCodec, FP8Codec, LinearQuantCodec, Pow2QuantCodec
from repro.compression.base import (
    CompressionReport,
    count_other_elements,
    record_payload,
    weight_layers,
)
from repro.core.omega import fit_omega, quantize_to_omega
from repro.core.storage import FP32_BITS


def _finish(report: CompressionReport, model: nn.Module) -> CompressionReport:
    other = count_other_elements(model)
    report.original_elements += other
    report.compressed_bits += other * FP32_BITS
    return report


class LinearQuantizer:
    """Per-layer symmetric linear quantization to ``bits`` bits."""

    def __init__(self, bits: int = 8, name: str | None = None) -> None:
        if bits < 2:
            raise ValueError("bits must be >= 2")
        self.bits = bits
        self.name = name or f"linear-int{bits}"
        # Beyond 32 bits the grid is finer than FP32 itself; the dense
        # passthrough stores the snapped weights exactly.
        self._codec = LinearQuantCodec(bits) if bits <= 32 else DenseCodec()

    def quantize(self, weight: np.ndarray) -> np.ndarray:
        max_abs = np.abs(weight).max()
        if max_abs == 0:
            return weight
        qmax = 2 ** (self.bits - 1) - 1
        scale = max_abs / qmax
        return np.round(weight / scale) * scale

    def compress(self, model: nn.Module, model_name: str = "model") -> CompressionReport:
        report = CompressionReport(self.name, model_name)
        for layer_name, module in weight_layers(model):
            weight = module.weight.data
            weight[...] = self.quantize(weight)
            record_payload(report, layer_name, weight, self._codec)
            bits = weight.size * self.bits
            report.layer_bits[layer_name] = bits
            report.compressed_bits += bits
            report.original_elements += weight.size
        return _finish(report, model)


class DoReFaQuantizer:
    """DoReFa-Net weight quantization: tanh-normalize then k-bit uniform."""

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        self.name = f"dorefa-w{bits}"
        # DoReFa's k-bit grid has 2**k - 1 symmetric steps, which is a
        # (k+1)-bit symmetric linear grid: scale = denom / (2**k - 1);
        # past 32 code bits, dense FP32 stores the grid exactly.
        self._codec = (
            LinearQuantCodec(bits + 1) if bits + 1 <= 32 else DenseCodec()
        )

    def quantize(self, weight: np.ndarray) -> np.ndarray:
        if self.bits == 1:
            scale = np.abs(weight).mean()
            return np.where(weight >= 0, scale, -scale)
        tanh = np.tanh(weight)
        denom = np.abs(tanh).max()
        if denom == 0:
            return weight
        normalized = tanh / (2 * denom) + 0.5  # in [0, 1]
        levels = 2**self.bits - 1
        quantized = np.round(normalized * levels) / levels
        return (2 * quantized - 1) * denom

    def compress(self, model: nn.Module, model_name: str = "model") -> CompressionReport:
        report = CompressionReport(self.name, model_name)
        for layer_name, module in weight_layers(model):
            weight = module.weight.data
            weight[...] = self.quantize(weight)
            record_payload(report, layer_name, weight, self._codec)
            bits = weight.size * self.bits
            report.layer_bits[layer_name] = bits
            report.compressed_bits += bits
            report.original_elements += weight.size
        return _finish(report, model)


class FP8Quantizer:
    """8-bit floating point (sign / exponent / mantissa) value snapping."""

    def __init__(self, exponent_bits: int = 4, mantissa_bits: int = 3) -> None:
        if exponent_bits + mantissa_bits != 7:
            raise ValueError("FP8 needs exponent_bits + mantissa_bits == 7")
        self.exponent_bits = exponent_bits
        self.mantissa_bits = mantissa_bits
        self.name = f"fp8-e{exponent_bits}m{mantissa_bits}"
        self._codec = FP8Codec(exponent_bits, mantissa_bits)

    def quantize(self, weight: np.ndarray) -> np.ndarray:
        out = np.zeros_like(weight)
        nonzero = weight != 0
        if not np.any(nonzero):
            return out
        values = weight[nonzero]
        bias = 2 ** (self.exponent_bits - 1) - 1
        exponents = np.floor(np.log2(np.abs(values)))
        exponents = np.clip(exponents, -bias, bias)
        scale = 2.0**exponents
        mantissa_steps = 2**self.mantissa_bits
        mantissa = np.round(np.abs(values) / scale * mantissa_steps) / mantissa_steps
        out[nonzero] = np.sign(values) * mantissa * scale
        return out

    def compress(self, model: nn.Module, model_name: str = "model") -> CompressionReport:
        report = CompressionReport(self.name, model_name)
        for layer_name, module in weight_layers(model):
            weight = module.weight.data
            weight[...] = self.quantize(weight)
            record_payload(report, layer_name, weight, self._codec)
            bits = weight.size * 8
            report.layer_bits[layer_name] = bits
            report.compressed_bits += bits
            report.original_elements += weight.size
        return _finish(report, model)


class Pow2Quantizer:
    """Power-of-two weight quantization (sign x 2^p, small exponent set)."""

    def __init__(self, bits: int = 4) -> None:
        if bits < 2:
            raise ValueError("bits must be >= 2")
        self.bits = bits
        self.name = f"pow2-w{bits}"
        self._codec = Pow2QuantCodec(bits)

    def quantize(self, weight: np.ndarray) -> np.ndarray:
        exponent_count = 2 ** (self.bits - 1) - 1
        omega = fit_omega(weight, exponent_count)
        return quantize_to_omega(weight, omega)

    def compress(self, model: nn.Module, model_name: str = "model") -> CompressionReport:
        report = CompressionReport(self.name, model_name)
        for layer_name, module in weight_layers(model):
            weight = module.weight.data
            weight[...] = self.quantize(weight)
            record_payload(report, layer_name, weight, self._codec)
            bits = weight.size * self.bits
            report.layer_bits[layer_name] = bits
            report.compressed_bits += bits
            report.original_elements += weight.size
        return _finish(report, model)
