"""EfficientNet-B0 (MBConv blocks with squeeze-and-excite).

The paper's second compact model.  The squeeze-and-excite layers are the
reason the SmartExchange accelerator grows its PE-line MAC clustering mode
(Section IV-B "handling of compact models"), and the reason SCNN is
excluded from the EfficientNet-B0 hardware comparison.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import nn

# (expansion, output channels, repeats, first stride, kernel) per stage —
# the EfficientNet-B0 table; also consumed by the hardware inventory.
EFFICIENTNET_B0_BLOCKS: List[Tuple[int, int, int, int, int]] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]

STEM_CHANNELS = 32
HEAD_CHANNELS = 1280
SE_RATIO = 0.25


def _scaled(channels: int, width_mult: float) -> int:
    return max(1, int(round(channels * width_mult)))


class SqueezeExcite(nn.Module):
    """Global pool -> reduce FC -> SiLU -> expand FC -> sigmoid gate."""

    def __init__(
        self,
        channels: int,
        reduced: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.pool = nn.GlobalAvgPool2d()
        self.reduce = nn.Conv2d(channels, reduced, 1, rng=rng)
        self.act = nn.SiLU()
        self.expand = nn.Conv2d(reduced, channels, 1, rng=rng)
        self.gate = nn.Sigmoid()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        scale = self.gate(self.expand(self.act(self.reduce(self.pool(x)))))
        return x * scale


class MBConv(nn.Module):
    """Inverted residual with squeeze-and-excite and SiLU activations."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expansion: int,
        kernel: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        hidden = in_channels * expansion
        self.use_residual = stride == 1 and in_channels == out_channels
        layers: List[nn.Module] = []
        if expansion != 1:
            layers += [
                nn.Conv2d(in_channels, hidden, 1, bias=False, rng=rng),
                nn.BatchNorm2d(hidden),
                nn.SiLU(),
            ]
        layers += [
            nn.Conv2d(hidden, hidden, kernel, stride=stride, padding=kernel // 2,
                      groups=hidden, bias=False, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.SiLU(),
        ]
        self.body = nn.Sequential(*layers)
        reduced = max(1, int(in_channels * SE_RATIO))
        self.se = SqueezeExcite(hidden, reduced, rng=rng)
        self.project = nn.Sequential(
            nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.project(self.se(self.body(x)))
        if self.use_residual:
            out = out + x
        return out


class EfficientNet(nn.Module):
    """EfficientNet-B0 by default; other widths via ``width_mult``."""

    def __init__(
        self,
        num_classes: int = 1000,
        in_channels: int = 3,
        width_mult: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        stem = _scaled(STEM_CHANNELS, width_mult)
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, stem, 3, stride=2, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(stem),
            nn.SiLU(),
        )
        blocks: List[nn.Module] = []
        channels = stem
        for expansion, base_out, repeats, first_stride, kernel in EFFICIENTNET_B0_BLOCKS:
            out = _scaled(base_out, width_mult)
            for index in range(repeats):
                stride = first_stride if index == 0 else 1
                blocks.append(MBConv(channels, out, stride, expansion, kernel, rng=rng))
                channels = out
        self.blocks = nn.Sequential(*blocks)
        head = _scaled(HEAD_CHANNELS, width_mult)
        self.head = nn.Sequential(
            nn.Conv2d(channels, head, 1, bias=False, rng=rng),
            nn.BatchNorm2d(head),
            nn.SiLU(),
        )
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(head, num_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.head(self.blocks(self.stem(x)))
        return self.classifier(self.flatten(self.pool(x)))


def efficientnet_b0(num_classes: int = 1000, width_mult: float = 1.0, seed: int = 0,
                    **kwargs) -> EfficientNet:
    rng = np.random.default_rng(seed)
    return EfficientNet(num_classes=num_classes, width_mult=width_mult, rng=rng,
                        **kwargs)
