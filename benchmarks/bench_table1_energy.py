"""Bench: regenerate Table I (unit energies)."""

from benchmarks.conftest import run_and_print
from repro.experiments import table1_energy


def bench_table1_energy(benchmark):
    result = run_and_print(benchmark, table1_energy.run, rounds=3)
    assert len(result.rows) == 6
