"""Serving compressed models: the software side of the paper's trade.

The accelerator stores {B, Ce, index} in DRAM and rebuilds weights in
its PE lines; this package does the same at the systems layer — for
*any* registered weight codec (:mod:`repro.codecs`), not just the
SmartExchange encoding: a bundle's manifest names the codec that
encoded each layer, and the rebuild engine dispatches decode through
the registry, so ``dense`` / ``prune-csr`` / ``quant-*`` baselines
serve through the identical pipeline.

- :mod:`repro.serving.artifacts` — versioned on-disk bundles with a
  manifest, codec field, sizes, and SHA-256 checksums
  (:class:`ArtifactStore`; ``publish`` for SmartExchange reports,
  ``publish_compressed`` for baseline compressors, ``publish_model`` /
  ``publish_payloads`` for anything else).
- :mod:`repro.serving.registry` — named/versioned bundles loaded lazily
  and cached in memory (:class:`ModelRegistry`).
- :mod:`repro.serving.rebuild` — dense weights rebuilt on read behind a
  capacity-bounded LRU cache (:class:`RebuildEngine`).
- :mod:`repro.serving.batching` — request queueing and batch coalescing
  (:class:`BatchPolicy`, :class:`RequestQueue`).
- :mod:`repro.serving.engine` — the batched inference engine
  (:class:`InferenceEngine`), offline, online (worker pool), and async
  (:class:`AsyncInferenceEngine`) paths.
- :mod:`repro.serving.stats` — throughput / latency percentiles /
  per-worker counters / cache behavior / storage-vs-compute telemetry
  (:class:`ServingStats`).

Typical use::

    from repro.serving import ArtifactStore, InferenceEngine, ModelRegistry

    store = ArtifactStore("artifacts/")
    manifest = store.publish(report, config, name="vgg19", model=model)
    store.publish_model(model, name="vgg19-dense", codec="dense")

    registry = ModelRegistry(store)
    engine = InferenceEngine(skeleton, registry.get("vgg19"))
    logits = engine.predict(batch)            # offline
    engine.start(workers=4)                   # online, batched pool
    tickets = [engine.submit(x) for x in samples]
    rows = [t.result(timeout=5) for t in tickets]
    engine.stop()

    async with AsyncInferenceEngine(engine, workers=4) as serving:
        rows = await serving.predict_many(samples)
"""

from repro.serving.artifacts import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactManifest,
    ArtifactNotFoundError,
    ArtifactStore,
    LayerArtifactSpec,
)
from repro.serving.batching import (
    BatchPolicy,
    QueueClosed,
    Request,
    RequestQueue,
    Ticket,
    coalesce,
    per_ticket_error,
    stack_batch,
)
from repro.serving.engine import (
    AsyncInferenceEngine,
    InferenceEngine,
    ServingError,
)
from repro.serving.rebuild import (
    RebuildCacheStats,
    RebuildEngine,
    rebuild_layer_weight,
)
from repro.serving.registry import CompressedModelHandle, ModelRegistry
from repro.serving.stats import ServingStats, WorkerStats, percentiles

__all__ = [
    "ArtifactStore",
    "ArtifactManifest",
    "ArtifactError",
    "ArtifactNotFoundError",
    "ArtifactCorruptionError",
    "LayerArtifactSpec",
    "ModelRegistry",
    "CompressedModelHandle",
    "RebuildEngine",
    "RebuildCacheStats",
    "rebuild_layer_weight",
    "BatchPolicy",
    "RequestQueue",
    "Request",
    "Ticket",
    "QueueClosed",
    "coalesce",
    "per_ticket_error",
    "stack_batch",
    "InferenceEngine",
    "AsyncInferenceEngine",
    "ServingError",
    "ServingStats",
    "WorkerStats",
    "percentiles",
]
