"""Tenancy: quotas, metering, attribution, pricing, reconciliation."""

import re
import threading

import numpy as np
import pytest

from repro.observability import Observability
from repro.serving import ModelRegistry, ServingHost
from repro.tenancy import (
    UNATTRIBUTED,
    PricingModel,
    QuotaExceededError,
    TenantLedger,
    TenantQuota,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestQuotaTypes:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_requests_per_second=0)
        with pytest.raises(ValueError):
            TenantQuota(max_requests_per_second=1, burst=0.5)
        with pytest.raises(ValueError):
            TenantQuota(max_rebuild_seconds=-1)

    def test_bucket_depth(self):
        assert TenantQuota().bucket_depth is None
        assert TenantQuota(max_requests_per_second=5).bucket_depth == 5
        assert TenantQuota(max_requests_per_second=0.2).bucket_depth == 1.0
        assert (
            TenantQuota(max_requests_per_second=2, burst=7).bucket_depth == 7
        )

    def test_error_carries_tenant_and_reason(self):
        err = QuotaExceededError("acme", "rate", "limit 2 req/s")
        assert err.tenant == "acme"
        assert err.reason == "rate"
        assert "acme" in str(err) and "rate" in str(err)


class TestTokenBucket:
    def test_deterministic_under_fake_clock(self):
        clock = FakeClock()
        ledger = TenantLedger(
            quotas={"acme": TenantQuota(max_requests_per_second=2, burst=2)},
            clock=clock,
        )
        ledger.admit("acme")  # bucket seeds full: 2 tokens
        ledger.admit("acme")
        with pytest.raises(QuotaExceededError) as info:
            ledger.admit("acme")
        assert info.value.reason == "rate"
        clock.advance(0.5)  # refills one token at 2 req/s
        ledger.admit("acme")
        with pytest.raises(QuotaExceededError):
            ledger.admit("acme")
        assert ledger.rejected_counts("acme") == {"rate": 2}

    def test_unquotaed_tenant_never_rejected(self):
        ledger = TenantLedger(clock=FakeClock())
        for _ in range(100):
            ledger.admit("free")
        assert ledger.rejected_counts("free") == {}

    def test_set_quota_reseeds_bucket(self):
        clock = FakeClock()
        ledger = TenantLedger(
            quotas={"acme": TenantQuota(max_requests_per_second=1, burst=1)},
            clock=clock,
        )
        ledger.admit("acme")
        with pytest.raises(QuotaExceededError):
            ledger.admit("acme")
        ledger.set_quota("acme", TenantQuota(max_requests_per_second=1, burst=3))
        for _ in range(3):
            ledger.admit("acme")
        ledger.set_quota("acme", None)  # cleared: unlimited again
        for _ in range(10):
            ledger.admit("acme")


class TestRebuildBudget:
    def test_budget_exhaustion_rejects(self):
        ledger = TenantLedger(
            quotas={"acme": TenantQuota(max_rebuild_seconds=1.0)},
            clock=FakeClock(),
        )
        ledger.admit("acme")  # under budget
        ledger.charge_rebuild(1.5, shares={"acme": 1.0})
        with pytest.raises(QuotaExceededError) as info:
            ledger.admit("acme")
        assert info.value.reason == "rebuild-budget"
        assert ledger.rejected_counts("acme") == {"rebuild-budget": 1}
        # Reset clears the meter; the quota definition survives.
        ledger.reset()
        ledger.admit("acme")
        assert ledger.quota("acme") is not None


class TestAttribution:
    def test_shares_equal_split(self):
        shares = TenantLedger.shares(["a", "a", "b", None])
        assert shares == {"a": 0.5, "b": 0.25, UNATTRIBUTED: 0.25}
        assert TenantLedger.shares([]) == {UNATTRIBUTED: 1.0}

    def test_charge_splits_across_active_shares(self):
        ledger = TenantLedger(clock=FakeClock())
        with ledger.activate({"a": 0.75, "b": 0.25}):
            ledger.charge_rebuild(4.0)
            ledger.credit_saved(8.0)
        a = ledger.usage_report("a")
        b = ledger.usage_report("b")
        assert a.rebuild_seconds == pytest.approx(3.0)
        assert b.rebuild_seconds == pytest.approx(1.0)
        assert a.est_seconds_saved == pytest.approx(6.0)
        assert ledger.total_rebuild_seconds() == pytest.approx(4.0)

    def test_unattributed_fallback(self):
        ledger = TenantLedger(clock=FakeClock())
        ledger.charge_rebuild(2.0)  # no active shares anywhere
        assert ledger.usage_report(UNATTRIBUTED).rebuild_seconds == 2.0

    def test_activation_is_thread_local(self):
        ledger = TenantLedger(clock=FakeClock())
        seen = {}

        def worker():
            seen["worker"] = ledger.current_shares()

        with ledger.activate({"a": 1.0}):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert ledger.current_shares() == {"a": 1.0}
        assert seen["worker"] is None
        assert ledger.current_shares() is None

    def test_activation_nests(self):
        ledger = TenantLedger(clock=FakeClock())
        with ledger.activate({"a": 1.0}):
            with ledger.activate({"b": 1.0}):
                assert ledger.current_shares() == {"b": 1.0}
            assert ledger.current_shares() == {"a": 1.0}


class TestResidency:
    def test_byte_seconds_integrate_over_fake_clock(self):
        clock = FakeClock()
        ledger = TenantLedger(clock=clock)
        ledger.attribute_residency("layer0", 1000, shares={"a": 1.0})
        clock.advance(2.0)
        ledger.release_residency("layer0")
        report = ledger.usage_report("a")
        assert report.resident_bytes == 0
        assert report.resident_byte_seconds == pytest.approx(2000.0)

    def test_reattribution_replaces(self):
        clock = FakeClock()
        ledger = TenantLedger(clock=clock)
        ledger.attribute_residency("k", 100, shares={"a": 1.0})
        clock.advance(1.0)
        # Same key re-admitted on behalf of someone else: a's holding
        # is released first, not double-counted.
        ledger.attribute_residency("k", 100, shares={"b": 1.0})
        clock.advance(1.0)
        assert ledger.usage_report("a").resident_bytes == 0
        assert ledger.usage_report("b").resident_bytes == 100
        assert ledger.usage_report("a").resident_byte_seconds == (
            pytest.approx(100.0)
        )

    def test_shared_residency_split(self):
        clock = FakeClock()
        ledger = TenantLedger(clock=clock)
        ledger.attribute_residency("k", 1000, shares={"a": 0.5, "b": 0.5})
        clock.advance(4.0)
        assert ledger.usage_report("a").resident_byte_seconds == (
            pytest.approx(2000.0)
        )

    def test_release_unknown_key_is_noop(self):
        ledger = TenantLedger(clock=FakeClock())
        ledger.release_residency("never-attributed")


class TestPricing:
    def test_report_pricing_arithmetic(self):
        clock = FakeClock()
        ledger = TenantLedger(clock=clock)
        ledger.record_submitted("a")
        ledger.charge_rebuild(10.0, shares={"a": 1.0})
        ledger.attribute_residency("k", int(2e9), shares={"a": 1.0})
        clock.advance(3600.0)
        pricing = PricingModel(
            usd_per_rebuild_second=0.01,
            usd_per_gb_hour=0.5,
            usd_per_million_requests=1e6,
        )
        report = ledger.usage_report("a", pricing=pricing)
        assert report.compute_usd == pytest.approx(0.1)
        assert report.storage_usd == pytest.approx(1.0)  # 2 GB x 1 h x $0.5
        assert report.requests_usd == pytest.approx(1.0)
        assert report.total_usd == pytest.approx(2.1)
        assert report.as_dict()["total_usd"] == pytest.approx(2.1)

    def test_from_hardware_bridge(self):
        class Bridge:
            effective_watts = 360.0

        pricing = PricingModel.from_hardware(Bridge(), usd_per_kwh=0.10)
        # 360 W for 1 s = 0.1 Wh = 1e-4 kWh -> $1e-5.
        assert pricing.usd_per_rebuild_second == pytest.approx(1e-5)
        assert pricing.usd_per_gb_hour == pytest.approx(0.375 * 0.10 / 1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel(usd_per_rebuild_second=-1)

    def test_savings_usd_values_hits(self):
        ledger = TenantLedger(clock=FakeClock())
        ledger.credit_saved(100.0, shares={"a": 1.0})
        pricing = PricingModel(usd_per_rebuild_second=0.01)
        assert ledger.usage_report("a", pricing).savings_usd == (
            pytest.approx(1.0)
        )


def _prom_series_sum(text: str, series: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(series + "{"):
            total += float(line.rsplit(" ", 1)[1])
    return total


class TestLiveHostIntegration:
    @pytest.fixture()
    def host(self, published):
        store, manifest, model, *_ = published
        registry = ModelRegistry(store)
        obs = Observability()
        host = ServingHost(
            registry,
            observability=obs,
            quotas={
                "bursty": TenantQuota(max_requests_per_second=2, burst=2)
            },
        )
        host.deploy(manifest.name, model)
        yield host, obs, manifest.name
        for engine in host.engines().values():
            engine.close()

    def test_quota_rejection_under_worker_pool(self, host):
        """A tight rate quota rejects mid-stream while a 4-worker pool
        serves the admitted traffic; all counters reconcile after."""
        host, obs, model_name = host
        rng = np.random.default_rng(0)
        samples = [rng.normal(size=(3, 6, 6)) for _ in range(12)]
        rejected = 0
        tickets = []
        host.start(workers=4)
        try:
            for i, sample in enumerate(samples):
                tenant = "bursty" if i % 2 == 0 else "steady"
                try:
                    tickets.append(
                        host.submit(sample, model=model_name, tenant=tenant)
                    )
                except QuotaExceededError as err:
                    assert err.tenant == "bursty"
                    assert err.reason == "rate"
                    rejected += 1
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            host.stop()
        ledger = host.ledger
        # Back-to-back submissions against a 2-deep bucket: the bursty
        # tenant gets its burst through, then rejections.
        assert rejected >= 1
        assert sum(ledger.rejected_counts("bursty").values()) == rejected
        assert ledger.rejected_counts("steady") == {}
        assert len(tickets) == 12 - rejected

        # -- reconciliation: ledger == host stats == Prometheus page --
        summary = host.summary()
        assert summary["requests"] == len(tickets)
        assert ledger.total_requests() == len(tickets)
        assert ledger.total_served() == len(tickets)
        assert ledger.total_rebuild_seconds() == pytest.approx(
            summary["rebuild_seconds"], abs=1e-9
        )
        tenants = summary["tenants"]
        assert sum(u["requests"] for u in tenants.values()) == len(tickets)
        assert sum(
            u["rebuild_seconds"] for u in tenants.values()
        ) == pytest.approx(summary["rebuild_seconds"], abs=1e-9)

        text = obs.to_prometheus_text()
        assert _prom_series_sum(
            text, "repro_tenant_requests_total"
        ) == len(tickets)
        assert _prom_series_sum(
            text, "repro_tenant_rebuild_seconds_total"
        ) == pytest.approx(summary["rebuild_seconds"], abs=1e-9)
        assert _prom_series_sum(
            text, "repro_tenant_rejected_total"
        ) == rejected

        # Routing attribution and the human-readable report.
        assert ledger.routed_by_model("steady") == {model_name: 6}
        report = host.report()
        assert "tenant[steady]" in report
        assert "tenant[bursty]" in report

    def test_residency_attribution_through_engine(self, host):
        host, obs, model_name = host
        rng = np.random.default_rng(1)
        out = host.predict(rng.normal(size=(1, 3, 6, 6)), model=model_name)
        assert out is not None
        ledger = host.ledger
        (engine,) = host.engines().values()
        resident = sum(
            report.resident_bytes
            for report in ledger.usage_reports().values()
        )
        assert resident == engine.rebuild.cached_bytes > 0
        # Closing the engine releases every tenant's residency.
        engine.close()
        assert all(
            report.resident_bytes == 0
            for report in ledger.usage_reports().values()
        )
