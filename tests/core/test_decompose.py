"""Tests for Algorithm 1 (the single-matrix decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SmartExchangeConfig
from repro.core.decompose import smart_exchange_decompose


def pow2_or_zero(values: np.ndarray) -> bool:
    nonzero = values[values != 0]
    if nonzero.size == 0:
        return True
    logs = np.log2(np.abs(nonzero))
    return np.allclose(logs, np.round(logs))


class TestDecompositionInvariants:
    def test_coefficient_entries_in_omega(self, rng):
        weight = rng.normal(scale=0.1, size=(30, 3))
        result = smart_exchange_decompose(weight, SmartExchangeConfig(max_iterations=8))
        assert pow2_or_zero(result.coefficient)

    def test_shapes(self, rng):
        weight = rng.normal(size=(24, 3))
        result = smart_exchange_decompose(weight)
        assert result.coefficient.shape == (24, 3)
        assert result.basis.shape == (3, 3)
        assert result.rebuild().shape == (24, 3)

    def test_exponent_window_bounded_by_config(self, rng):
        config = SmartExchangeConfig(ce_bits=4, max_iterations=5)
        weight = rng.normal(size=(20, 3))
        result = smart_exchange_decompose(weight, config)
        assert result.omega.exponent_count <= config.exponent_count == 7

    def test_target_row_sparsity_met(self, rng):
        config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
        weight = rng.normal(size=(40, 3))
        result = smart_exchange_decompose(weight, config)
        assert result.row_sparsity >= 0.5 - 1.0 / 40 - 1e-9

    def test_row_budget_met(self, rng):
        config = SmartExchangeConfig(max_iterations=6, max_row_nonzeros=5)
        weight = rng.normal(size=(30, 3))
        result = smart_exchange_decompose(weight, config)
        alive = int(np.any(result.coefficient != 0, axis=1).sum())
        # The concluding re-quantization may only remove rows, not add.
        assert alive <= 5 + 1  # +1 slack for the final refit/quantize step

    def test_reconstruction_error_reasonable(self, rng):
        # A matrix with genuine low-rank structure decomposes well.
        base = rng.normal(size=(30, 3)) @ rng.normal(size=(3, 3))
        result = smart_exchange_decompose(base, SmartExchangeConfig(max_iterations=15))
        assert result.reconstruction_error < 0.5

    def test_history_lengths_consistent(self, rng):
        config = SmartExchangeConfig(max_iterations=7, tol=0.0)
        result = smart_exchange_decompose(rng.normal(size=(12, 3)), config)
        history = result.history
        # One record per iteration plus the concluding snapshot.
        assert len(history.errors) == result.iterations + 1
        assert len(history.sparsities) == len(history.errors)
        assert len(history.basis_drifts) == len(history.errors)
        assert len(history.deltas) == result.iterations

    def test_tol_stops_early(self, rng):
        # With a generous tolerance the loop stops after one iteration.
        config = SmartExchangeConfig(max_iterations=30, tol=1e9)
        result = smart_exchange_decompose(rng.normal(size=(10, 3)), config)
        assert result.iterations == 1

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            smart_exchange_decompose(rng.normal(size=(4, 3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            smart_exchange_decompose(np.zeros((0, 3)))

    def test_all_zero_weight_gives_zero_coefficient(self):
        result = smart_exchange_decompose(np.zeros((6, 3)))
        assert (result.coefficient == 0).all()

    def test_row_sparsity_property_matches_manual(self, rng):
        config = SmartExchangeConfig(max_iterations=5, target_row_sparsity=0.3)
        result = smart_exchange_decompose(rng.normal(size=(20, 3)), config)
        manual = 1.0 - np.any(result.coefficient != 0, axis=1).mean()
        assert result.row_sparsity == pytest.approx(manual)

    def test_element_sparsity_at_least_row_sparsity(self, rng):
        config = SmartExchangeConfig(max_iterations=5, target_row_sparsity=0.4)
        result = smart_exchange_decompose(rng.normal(size=(20, 3)), config)
        assert result.element_sparsity >= result.row_sparsity - 1e-12


class TestDecompositionQuality:
    def test_identity_weight_recovers_exactly(self):
        weight = np.eye(3)
        result = smart_exchange_decompose(weight, SmartExchangeConfig(max_iterations=10))
        np.testing.assert_allclose(result.rebuild(), weight, atol=1e-8)

    def test_pow2_matrix_is_fixed_point(self):
        # A weight already in SmartExchange form reconstructs (nearly) exactly.
        rng = np.random.default_rng(3)
        exponents = rng.integers(-4, 0, size=(12, 3))
        signs = rng.choice([-1.0, 1.0], size=(12, 3))
        weight = signs * 2.0**exponents
        result = smart_exchange_decompose(weight, SmartExchangeConfig(max_iterations=10))
        assert result.reconstruction_error < 0.05

    def test_better_than_naive_pow2_on_structured_matrix(self, rng):
        # The basis fit must beat directly rounding W to powers of two
        # when W has low-rank structure (the whole point of the method).
        from repro.core.omega import fit_omega, quantize_to_omega

        mixing = rng.normal(size=(3, 3)) + 2 * np.eye(3)
        weight = (rng.normal(size=(40, 3)) @ mixing) * 0.1
        result = smart_exchange_decompose(
            weight, SmartExchangeConfig(max_iterations=20)
        )
        naive = quantize_to_omega(weight, fit_omega(weight, 7))
        naive_error = np.linalg.norm(weight - naive) / np.linalg.norm(weight)
        assert result.reconstruction_error < naive_error


@settings(max_examples=15, deadline=None)
@given(
    rows=st.integers(3, 24),
    seed=st.integers(0, 1000),
    target=st.sampled_from([None, 0.25, 0.5]),
)
def test_decompose_property(rows, seed, target):
    rng = np.random.default_rng(seed)
    weight = rng.normal(scale=0.2, size=(rows, 3))
    config = SmartExchangeConfig(max_iterations=4, target_row_sparsity=target)
    result = smart_exchange_decompose(weight, config)
    assert pow2_or_zero(result.coefficient)
    assert np.isfinite(result.basis).all()
    if target is not None:
        expected_zero = int(np.floor(target * rows))
        zero_rows = rows - int(np.any(result.coefficient != 0, axis=1).sum())
        assert zero_rows >= expected_zero
