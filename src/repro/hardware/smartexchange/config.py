"""SmartExchange accelerator configuration (paper Table V + §IV-B)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SmartExchangeAcceleratorConfig:
    """Architecture parameters and ablation switches.

    Attributes
    ----------
    dim_m / dim_c / dim_f:
        The 3-D PE array: 64 PE slices (parallel filters) x 16 PE lines
        (parallel input channels) x 8 MACs (parallel output pixels) =
        8K bit-serial multipliers.
    act_bits / ce_bits / b_bits:
        Data precisions (8-bit activations, 4-bit coefficients, 8-bit
        basis entries).
    use_compressed_weights / exploit_vector_sparsity / exploit_bit_sparsity:
        The three component techniques of the §V-B contribution ablation;
        all on for the full design.
    dedicated_compact_dataflow:
        The depth-wise / squeeze-and-excite handling of §IV-B (Fig. 15's
        ablation switch).
    sufficient_dram_bandwidth:
        When True latency is compute-bound only (the assumption the paper
        states for its ablation studies).
    control_pj_per_cycle:
        Clock/control overhead charged per active cycle; what the
        dedicated compact dataflow saves on top of pure data movement.
    """

    dim_m: int = 64
    dim_c: int = 16
    dim_f: int = 8
    act_bits: int = 8
    ce_bits: int = 4
    b_bits: int = 8
    use_compressed_weights: bool = True
    exploit_vector_sparsity: bool = True
    exploit_bit_sparsity: bool = True
    dedicated_compact_dataflow: bool = True
    sufficient_dram_bandwidth: bool = False
    dram_bytes_per_cycle: float = 64.0
    control_pj_per_cycle: float = 8.0

    @property
    def bit_serial_lanes(self) -> int:
        return self.dim_m * self.dim_c * self.dim_f

    def with_overrides(self, **kwargs) -> "SmartExchangeAcceleratorConfig":
        return replace(self, **kwargs)


DEFAULT_ACCELERATOR_CONFIG = SmartExchangeAcceleratorConfig()
