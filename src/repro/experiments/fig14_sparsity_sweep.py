"""Figure 14: ResNet-50 under four vector-sparsity ratios.

The paper sweeps 45.0 / 51.7 / 57.5 / 60.0 % vector-wise weight sparsity
and reports the energy breakdown, latency, and model size.  Expected
trends: input-access energy drops ~18% and latency ~42% going from 45%
to 60% sparsity.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware import SmartExchangeAccelerator, build_workloads

SPARSITY_POINTS = (0.45, 0.517, 0.575, 0.60)
# Paper's Table in Fig. 14: (sparsity, top-5 %, params MB).
PAPER_POINTS = {
    0.45: (92.33, 8.88),
    0.517: (92.20, 8.03),
    0.575: (91.83, 7.99),
    0.60: (91.77, 7.68),
}


def run() -> ExperimentResult:
    table = ExperimentResult("Figure 14 — ResNet50 vs vector-sparsity ratio")
    accelerator = SmartExchangeAccelerator()
    baseline = None
    for sparsity in SPARSITY_POINTS:
        workloads = build_workloads(
            "resnet50", include_fc=False, weight_vector_override=sparsity
        )
        result = accelerator.simulate_model(workloads, "resnet50")
        breakdown = result.energy_breakdown()
        total = sum(breakdown.values())
        input_access = (
            breakdown.get("dram_input", 0.0)
            + breakdown.get("gb_input_read", 0.0)
            + breakdown.get("gb_input_write", 0.0)
        )
        weight_bits = sum(w.se_storage_bits for w in workloads)
        row = {
            "sparsity_pct": 100 * sparsity,
            "energy_mj": result.energy_mj(),
            "input_access_mj": input_access * 1e-9,
            "latency_ms": result.latency_ms,
            "weights_mb": weight_bits / 8 / 1024 / 1024,
            "paper_top5_pct": PAPER_POINTS[sparsity][0],
            "paper_params_mb": PAPER_POINTS[sparsity][1],
        }
        if baseline is None:
            baseline = row
        row["energy_vs_45pct"] = row["energy_mj"] / baseline["energy_mj"]
        row["latency_vs_45pct"] = row["latency_ms"] / baseline["latency_ms"]
        table.rows.append(row)
    table.notes = (
        "Higher vector sparsity must monotonically cut input-access "
        "energy and latency (paper: -18.33% energy on input accesses, "
        "-41.83% latency from 45% to 60%)."
    )
    return table
