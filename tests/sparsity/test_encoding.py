"""Tests for sparse index encodings (direct / RLC / CRS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.encoding import (
    crs_decode,
    crs_encode,
    crs_overhead_bits,
    direct_index_decode,
    direct_index_encode,
    direct_index_overhead_bits,
    rlc_decode,
    rlc_encode,
    rlc_overhead_bits,
)

sparse_vectors = st.lists(
    st.one_of(st.just(0.0), st.floats(-10, 10, allow_nan=False)),
    min_size=0, max_size=60,
)


class TestDirectIndex:
    @given(sparse_vectors)
    def test_roundtrip(self, values):
        values = np.asarray(values)
        bitmap, packed = direct_index_encode(values)
        np.testing.assert_array_equal(direct_index_decode(bitmap, packed), values)

    def test_bitmap_population(self):
        bitmap, packed = direct_index_encode(np.array([0, 3, 0, 5]))
        np.testing.assert_array_equal(bitmap, [0, 1, 0, 1])
        np.testing.assert_array_equal(packed, [3, 5])

    def test_mismatched_decode_raises(self):
        with pytest.raises(ValueError):
            direct_index_decode(np.array([1, 1]), np.array([1.0]))

    def test_overhead_is_one_bit_per_element(self):
        assert direct_index_overhead_bits(100) == 100


class TestRLC:
    @given(sparse_vectors)
    def test_roundtrip(self, values):
        values = np.asarray(values)
        encoded = rlc_encode(values)
        np.testing.assert_array_equal(rlc_decode(encoded, len(values)), values)

    def test_long_runs_split(self):
        values = np.zeros(40)
        values[-1] = 7.0
        encoded = rlc_encode(values, run_bits=4)
        # Runs cap at 15, so 39 zeros need filler pairs.
        assert len(encoded) >= 3
        np.testing.assert_array_equal(rlc_decode(encoded, 40), values)

    def test_all_zero_vector(self):
        values = np.zeros(10)
        encoded = rlc_encode(values)
        np.testing.assert_array_equal(rlc_decode(encoded, 10), values)

    def test_decode_overflow_raises(self):
        with pytest.raises(ValueError):
            rlc_decode([(0, 1.0), (0, 2.0)], 1)

    def test_overhead_scales_with_nonzeros(self, rng):
        dense = rng.normal(size=64)
        sparse = dense.copy()
        sparse[rng.random(64) < 0.9] = 0.0
        assert rlc_overhead_bits(sparse) < rlc_overhead_bits(dense)


class TestCRS:
    @given(
        st.integers(1, 8), st.integers(1, 8), st.integers(0, 10000)
    )
    @settings(max_examples=40)
    def test_roundtrip(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(rows, cols))
        matrix[rng.random((rows, cols)) < 0.6] = 0.0
        row_ptr, col_idx, values = crs_encode(matrix)
        decoded = crs_decode(row_ptr, col_idx, values, matrix.shape)
        np.testing.assert_array_equal(decoded, matrix)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            crs_encode(np.zeros(4))

    def test_row_ptr_monotone(self, rng):
        matrix = rng.normal(size=(5, 5))
        row_ptr, _, _ = crs_encode(matrix)
        assert (np.diff(row_ptr) >= 0).all()
        assert row_ptr[-1] == np.count_nonzero(matrix)

    def test_overhead_nonnegative_and_scales(self, rng):
        sparse = np.zeros((8, 8))
        sparse[0, 0] = 1.0
        dense = rng.normal(size=(8, 8))
        assert crs_overhead_bits(sparse) < crs_overhead_bits(dense)


class TestVectorGranularityAdvantage:
    def test_vector_index_cheaper_than_element_index(self):
        """Fig. 3b: vector-granular direct indexing needs fewer index bits
        than element-granular indexing for the same matrix."""
        rows, cols = 6, 3
        element_bits = direct_index_overhead_bits(rows * cols)
        vector_bits = direct_index_overhead_bits(rows)
        assert vector_bits * cols == element_bits
        assert vector_bits < element_bits
