"""Module / Parameter machinery (the PyTorch-like substrate layer)."""

from __future__ import annotations

import copy
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that a module owns and an optimizer updates."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses define ``forward(x)``; parameters and child modules are
    auto-registered via ``__setattr__`` so that :meth:`parameters`,
    :meth:`named_modules`, etc. work without explicit bookkeeping.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BN running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode / gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # State dict (used by the retraining loop to snapshot/restore)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = buf.copy()
        return state

    def load_state_dict(
        self, state: Dict[str, np.ndarray], strict: bool = True
    ) -> None:
        """Install parameters/buffers from ``state``.

        ``strict=False`` skips parameters absent from ``state`` (used
        when another source — e.g. a compressed artifact bundle —
        provides the remaining weights).
        """
        for name, param in self.named_parameters():
            if name not in state:
                if strict:
                    raise KeyError(f"missing parameter {name!r} in state dict")
                continue
            param.data[...] = state[name]
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if key in state:
                    buf[...] = state[key]

    # ------------------------------------------------------------------
    # Cloning (used by the serving worker pool: one skeleton per worker)
    # ------------------------------------------------------------------
    def clone(self) -> "Module":
        """An independent deep copy of this module tree.

        The clone shares no storage with the original: parameters,
        buffers, and child modules are all copied, while the aliasing
        between attribute references and the ``_parameters`` /
        ``_modules`` / ``_buffers`` registries is preserved (so
        ``load_state_dict`` and in-place weight installs keep working
        on the copy).  Gradients are dropped — a clone starts clean.
        """
        cloned = copy.deepcopy(self)
        for param in cloned.parameters():
            param.grad = None
        return cloned

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
