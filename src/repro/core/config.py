"""Configuration for the SmartExchange algorithm."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SmartExchangeConfig:
    """All knobs of the SmartExchange decomposition (paper Section III).

    Attributes
    ----------
    basis_size:
        ``S`` — the width of the basis matrix ``B`` (``r = n = S``).  For
        conv layers this is taken from the kernel automatically; for FC /
        1x1 layers this value is used.
    theta:
        Element-magnitude threshold used when sparsifying ``Ce`` — the
        paper's θ (4e-3 in the VGG19 post-processing experiment).
    row_theta:
        Row-norm threshold for vector-wise sparsity: a row of ``Ce``
        whose max-magnitude falls below it is zeroed entirely.  ``None``
        uses ``theta``.
    channel_theta:
        BN-scale threshold for channel pruning (applied once, at the
        start).  ``None`` disables channel pruning.
    max_row_nonzeros:
        Optional hard cap ``Sc`` on the number of non-zero rows per
        decomposed matrix (the paper's per-layer vector-sparsity budget).
        ``None`` means threshold-only control.
    target_row_sparsity:
        Optional direct control of vector-wise sparsity: the lowest-norm
        fraction of coefficient rows is zeroed every projection.  This is
        the practical face of the paper's "Sc is manually controlled per
        layer" and what the Fig. 14 sparsity sweep dials.
    ce_bits:
        Bit-width of a coefficient code.  One code is reserved for zero;
        the rest encode sign x power-of-2, so the exponent set size is
        ``Np = 2**(ce_bits - 1) - 1``.
    b_bits:
        Bit-width used to store basis-matrix entries (8 in the paper).
    tol:
        Convergence tolerance on the quantization difference ``δ(Ce)``.
    max_iterations:
        Iteration cap of the alternating loop (30 in the paper).
    max_rows_per_slice:
        Decomposed matrices taller than this are sliced along the first
        dimension (Section III-C's imbalance fix).  ``None`` disables
        slicing.
    min_elements:
        Layers with fewer weight scalars than this are left untouched
        (decomposing a tiny layer costs more in basis storage than it
        saves).
    """

    basis_size: int = 3
    theta: float = 4e-3
    row_theta: float | None = None
    channel_theta: float | None = None
    max_row_nonzeros: int | None = None
    target_row_sparsity: float | None = None
    ce_bits: int = 4
    b_bits: int = 8
    tol: float = 1e-10
    max_iterations: int = 30
    max_rows_per_slice: int | None = 1024
    min_elements: int = 32

    def __post_init__(self) -> None:
        if self.basis_size < 1:
            raise ValueError(f"basis_size must be >= 1, got {self.basis_size}")
        if self.ce_bits < 2:
            raise ValueError(f"ce_bits must be >= 2, got {self.ce_bits}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.target_row_sparsity is not None and not (
            0.0 <= self.target_row_sparsity < 1.0
        ):
            raise ValueError("target_row_sparsity must be in [0, 1)")

    @property
    def exponent_count(self) -> int:
        """``Np`` — number of representable exponents for non-zeros."""
        return 2 ** (self.ce_bits - 1) - 1

    @property
    def effective_row_theta(self) -> float:
        return self.theta if self.row_theta is None else self.row_theta

    def with_overrides(self, **kwargs) -> "SmartExchangeConfig":
        """A copy with some fields replaced (per-layer overrides)."""
        return replace(self, **kwargs)
