"""Bench: the workload scenario matrix through the sweep harness.

Publishes one *mixed* bundle (smartexchange convs + a quant-linear
head — the split a cost-aware admission policy can exploit), generates
a matrix of seeded workload scenarios (uniform / diurnal / flash-crowd
/ hot-model-skew), and replays every scenario through every candidate
serving configuration with :class:`repro.workloads.ExperimentHarness`
— one table per scenario, identical generated requests across the
configs, so row-to-row differences are the config's doing alone.

Offline (default) runs the schedule through the deterministic
:class:`repro.serving.CacheSimulator` and asserts the PR's headline on
the skewed scenario: cost-aware admission pays fewer rebuild seconds
than LRU on the identical generated trace.

``--live`` additionally serves a flash-crowd + hot-skew
:class:`~repro.workloads.MixedScenario` through a real
:class:`~repro.serving.ServingHost` worker pool with two metered
tenants — one under a tight rate quota — and asserts the tenancy
contract inline: quota rejections happen at the front door, and the
summed per-tenant rebuild-seconds / request counts reconcile exactly
with the fleet totals.

Runs standalone (``python benchmarks/bench_scenario_matrix.py``,
``--smoke`` for a CI-sized run).
"""

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import nn
from repro.codecs import SmartExchangeCodec, get_codec
from repro.core import SmartExchangeConfig
from repro.serving import ArtifactStore, ModelRegistry
from repro.tenancy import TenantQuota
from repro.workloads import (
    DiurnalScenario,
    ExperimentHarness,
    FlashCrowdScenario,
    HotModelSkewScenario,
    MixedScenario,
    SweepConfig,
    UniformScenario,
)

MODEL_NAME = "bench-cnn"
CAPACITY_FRACTION = 0.95
TENANTS = {"acme": 3.0, "globex": 1.0}


def build_model(seed: int) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


def publish_mixed(store: ArtifactStore) -> None:
    model = build_model(seed=0)
    config = SmartExchangeConfig(max_iterations=4, target_row_sparsity=0.5)
    se, ql = SmartExchangeCodec(config), get_codec("quant-linear")
    payloads = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            payloads[name] = se.encode(module.weight.data)
        elif isinstance(module, nn.Linear):
            payloads[name] = ql.encode(module.weight.data)
    store.publish_payloads(payloads, name=MODEL_NAME, model=model)


def scenario_matrix(rate: float, duration: float):
    common = dict(
        rate_rps=rate, duration_s=duration,
        models=[MODEL_NAME], tenants=TENANTS,
    )
    return [
        UniformScenario(seed=1, **common),
        DiurnalScenario(seed=2, period_s=duration, amplitude=0.8, **common),
        FlashCrowdScenario(
            seed=3, burst_start_s=duration * 0.4,
            burst_duration_s=duration * 0.2, burst_multiplier=4.0,
            burst_tenant="spike", **common,
        ),
        HotModelSkewScenario(seed=4, exponent=1.1, **common),
    ]


def sweep_configs():
    return [
        SweepConfig(name="lru", admission="lru",
                    capacity_fraction=CAPACITY_FRACTION),
        SweepConfig(name="cost-aware", admission="cost-aware",
                    capacity_fraction=CAPACITY_FRACTION),
    ]


def print_result(result) -> None:
    tenant_rows = {
        row["config"]: row.pop("tenants", None) for row in result.rows
    }
    print(result.as_table())
    for config, tenants in tenant_rows.items():
        if not tenants:
            continue
        for tenant, usage in sorted(tenants.items()):
            print(
                f"  {config:>12s} tenant[{tenant}] "
                f"requests={usage['requests']} "
                f"rebuild_s={usage['rebuild_seconds']:.4g} "
                f"total_usd={usage['total_usd']:.3g}"
            )


def reconcile(row) -> None:
    """Σ per-tenant meters must equal the fleet row exactly."""
    tenants = row.get("tenants")
    if not tenants:
        return
    total_rebuild = sum(u["rebuild_seconds"] for u in tenants.values())
    assert abs(total_rebuild - row["rebuild_s"]) < 1e-9, (
        f"tenant rebuild sum {total_rebuild} != fleet {row['rebuild_s']}"
    )
    assert sum(u["requests"] for u in tenants.values()) == row["requests"]


def run_offline(harness: ExperimentHarness, rate: float, duration: float):
    rebuild_by = {}
    for scenario in scenario_matrix(rate, duration):
        result = harness.sweep(scenario, configs=sweep_configs())
        for row in result.rows:
            reconcile(row)
        rebuild_by[scenario.name] = {
            row["config"]: row["rebuild_s"] for row in result.rows
        }
        print_result(result)
        print()
    skew = rebuild_by["hot-skew"]
    assert skew["cost-aware"] < skew["lru"], (
        "cost-aware admission must pay fewer rebuild seconds than LRU "
        f"on the skewed scenario (got {skew})"
    )
    print(
        "offline matrix OK: cost-aware beats lru on hot-skew "
        f"({skew['cost-aware']:.4g}s < {skew['lru']:.4g}s)"
    )


def run_live(harness: ExperimentHarness, rate: float, duration: float):
    mix = MixedScenario(components=[
        (FlashCrowdScenario(
            rate_rps=rate / 2, duration_s=duration,
            burst_start_s=duration * 0.3, burst_duration_s=duration * 0.2,
            burst_multiplier=4.0, burst_tenant="bursty",
            models=[MODEL_NAME], tenants=TENANTS, seed=5,
        ), 0.0),
        (HotModelSkewScenario(
            rate_rps=rate / 2, duration_s=duration,
            models=[MODEL_NAME], tenants=TENANTS, seed=6,
        ), 0.0),
    ])
    result = harness.sweep(
        mix,
        configs=[SweepConfig(name="live", admission="cost-aware",
                             capacity_fraction=CAPACITY_FRACTION,
                             workers=4)],
        mode="live",
    )
    (row,) = result.rows
    reconcile(row)
    assert row["rejected"] > 0, (
        "the bursty tenant's tight rate quota must reject at the front "
        "door under back-to-back submission"
    )
    active_tenants = sum(
        1 for usage in row.get("tenants", {}).values() if usage["requests"]
    )
    print_result(result)
    print(
        f"live mix OK: {row['requests']} served across "
        f"{active_tenants} tenants, "
        f"{row['rejected']} quota-rejected, per-tenant meters reconcile"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (short, low rate)")
    parser.add_argument("--live", action="store_true",
                        help="also run the live host + quota mix")
    parser.add_argument("--rate", type=float, default=None,
                        help="base request rate (req/s)")
    parser.add_argument("--duration", type=float, default=None,
                        help="scenario duration (s)")
    args = parser.parse_args(argv)

    rate = args.rate if args.rate is not None else (60.0 if args.smoke else 150.0)
    duration = (
        args.duration if args.duration is not None
        else (1.0 if args.smoke else 4.0)
    )

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp) / "artifacts")
        publish_mixed(store)
        harness = ExperimentHarness(
            ModelRegistry(store),
            deployments={MODEL_NAME: lambda: build_model(seed=1)},
            sample_shape=(3, 8, 8),
            quotas={
                "bursty": TenantQuota(max_requests_per_second=2, burst=2)
            },
        )
        run_offline(harness, rate, duration)
        if args.live:
            run_live(harness, rate, duration)


if __name__ == "__main__":
    main()
