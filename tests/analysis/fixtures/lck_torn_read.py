"""The historical torn ``bytes_saved`` read, reduced to its skeleton.

Before PR 4, ``RebuildCacheStats.bytes_saved`` subtracted
``_cached_bytes`` — mutated under the engine lock on every admit and
evict — without taking the lock, so a reader racing an eviction saw a
total that never existed.  The lock-coverage rule must re-detect this
shape.
"""

import threading


class TornCache:
    def __init__(self, total_dense_bytes):
        self._lock = threading.Lock()
        self._total_dense_bytes = int(total_dense_bytes)
        self._cached_bytes = 0

    def admit(self, nbytes):
        with self._lock:
            self._cached_bytes += int(nbytes)

    def evict(self, nbytes):
        with self._lock:
            self._cached_bytes -= int(nbytes)

    @property
    def bytes_saved(self):
        return self._total_dense_bytes - self._cached_bytes
