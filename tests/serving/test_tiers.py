"""Lower cache tiers: blobs, residency bookkeeping, cost-gated migration."""

import numpy as np
import pytest

from repro.serving import (
    CompressedRamTier,
    DiskSpillTier,
    LRUPolicy,
    ModelRegistry,
    RebuildEngine,
    make_tiers,
)
from repro.serving.tiers import compress_dense, decompress_dense


@pytest.fixture
def handle(published):
    store, manifest, *_ = published
    return ModelRegistry(store).get(manifest.name)


def make_blob(seed: int = 0, shape=(6, 7)):
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=shape)
    return weight, compress_dense(weight)


def store_weight(tier, name, weight, blob, saved=1.0):
    return tier.store(
        name,
        blob,
        codec="dense",
        dense_nbytes=weight.nbytes,
        dtype=str(weight.dtype),
        shape=tuple(weight.shape),
        saved_seconds=saved,
    )


class NeverAdmit:
    name = "never"
    requires_costs = False

    def admit(self, candidate, resident, free_bytes):
        return False

    def victim(self, candidate, resident):
        return resident[0].name


class TestBlobFormat:
    def test_round_trip(self):
        weight, blob = make_blob()
        out = decompress_dense(
            blob, weight.nbytes, str(weight.dtype), weight.shape
        )
        np.testing.assert_array_equal(out, weight)
        assert not out.flags.writeable

    def test_corrupt_blob_is_none(self):
        weight, blob = make_blob()
        assert (
            decompress_dense(
                b"\x00" + blob[1:], weight.nbytes, str(weight.dtype),
                weight.shape,
            )
            is None
        )

    def test_wrong_size_is_none(self):
        weight, blob = make_blob()
        assert (
            decompress_dense(
                blob, weight.nbytes + 8, str(weight.dtype), weight.shape
            )
            is None
        )

    def test_bad_shape_is_none(self):
        weight, blob = make_blob()
        assert (
            decompress_dense(blob, weight.nbytes, str(weight.dtype), (5, 5))
            is None
        )


class TestCompressedRamTier:
    def test_store_claim_load_round_trip(self):
        tier = CompressedRamTier()
        weight, blob = make_blob()
        verdict, evicted = store_weight(tier, "w", weight, blob)
        assert verdict == "admitted" and evicted == []
        assert "w" in tier and tier.charged_bytes == len(blob)
        entry = tier.claim("w")
        assert "w" not in tier and tier.charged_bytes == 0
        np.testing.assert_array_equal(tier.load(entry), weight)

    def test_claim_is_exclusive(self):
        tier = CompressedRamTier()
        weight, blob = make_blob()
        store_weight(tier, "w", weight, blob)
        assert tier.claim("w") is not None
        assert tier.claim("w") is None

    def test_oversized_blob_refused(self):
        weight, blob = make_blob()
        tier = CompressedRamTier(capacity_bytes=len(blob) - 1)
        verdict, evicted = store_weight(tier, "w", weight, blob)
        assert verdict == "oversized" and evicted == []
        assert tier.entry_count == 0

    def test_placement_policy_can_reject(self):
        weight, blob = make_blob()
        tier = CompressedRamTier(
            capacity_bytes=len(blob) * 4, policy=NeverAdmit()
        )
        verdict, _ = store_weight(tier, "w", weight, blob)
        assert verdict == "rejected"
        assert tier.entry_count == 0

    def test_capacity_evicts_lru_and_returns_entries(self):
        a, blob_a = make_blob(1)
        b, blob_b = make_blob(2)
        tier = CompressedRamTier(
            capacity_bytes=max(len(blob_a), len(blob_b)), policy=LRUPolicy()
        )
        store_weight(tier, "a", a, blob_a)
        verdict, evicted = store_weight(tier, "b", b, blob_b)
        assert verdict == "admitted"
        assert [entry.name for entry in evicted] == ["a"]
        # The evicted entry's blob is still extractable (cascade path).
        np.testing.assert_array_equal(tier.load(evicted[0]), a)
        assert tier.resident_names() == ["b"]
        assert tier.charged_bytes == len(blob_b)

    def test_restore_replaces_stale_entry(self):
        weight, blob = make_blob()
        tier = CompressedRamTier()
        store_weight(tier, "w", weight, blob)
        store_weight(tier, "w", weight, blob)
        assert tier.entry_count == 1
        assert tier.charged_bytes == len(blob)

    def test_clear_releases_everything(self):
        weight, blob = make_blob()
        tier = CompressedRamTier()
        store_weight(tier, "w", weight, blob)
        tier.clear()
        assert tier.entry_count == 0 and tier.charged_bytes == 0

    def test_as_dict_schema(self):
        tier = CompressedRamTier(capacity_bytes=1024)
        snap = tier.as_dict()
        assert snap == {
            "tier": "compressed-ram",
            "policy": "lru",
            "capacity_bytes": 1024,
            "charged_bytes": 0,
            "entries": 0,
        }


class TestDiskSpillTier:
    def test_spills_to_directory_and_loads_back(self, tmp_path):
        tier = DiskSpillTier(directory=str(tmp_path / "spill"))
        weight, blob = make_blob()
        store_weight(tier, "w", weight, blob)
        path = tier._entries["w"].path
        assert path is not None
        with open(path, "rb") as fh:
            assert fh.read() == blob
        claimed = tier.claim("w")
        np.testing.assert_array_equal(tier.load(claimed), weight)
        # Extraction consumes the file.
        import os

        assert not os.path.exists(path)

    def test_private_tempdir_removed_on_close(self):
        tier = DiskSpillTier()
        weight, blob = make_blob()
        store_weight(tier, "w", weight, blob)
        directory = tier.directory
        assert directory is not None
        import os

        assert os.path.isdir(directory)
        tier.close()
        assert not os.path.exists(directory)
        assert tier.directory is None

    def test_close_keeps_caller_owned_directory(self, tmp_path):
        spill = tmp_path / "spill"
        tier = DiskSpillTier(directory=str(spill))
        weight, blob = make_blob()
        store_weight(tier, "w", weight, blob)
        tier.close()
        assert spill.exists()

    def test_cascade_between_tiers_round_trips(self, tmp_path):
        upper = CompressedRamTier()
        lower = DiskSpillTier(directory=str(tmp_path))
        weight, blob = make_blob()
        store_weight(upper, "w", weight, blob)
        entry = upper.claim("w")
        moved = upper.extract(entry)
        assert moved == blob
        store_weight(lower, "w", weight, moved)
        claimed = lower.claim("w")
        np.testing.assert_array_equal(lower.load(claimed), weight)


class TestMakeTiers:
    def test_none_is_empty(self):
        assert make_tiers(None) == []

    def test_spec_string(self, tmp_path):
        tiers = make_tiers(
            "compressed:2048,disk", spill_dir=str(tmp_path)
        )
        assert [t.name for t in tiers] == ["compressed-ram", "disk"]
        assert tiers[0].capacity_bytes == 2048
        assert tiers[1].capacity_bytes is None
        assert tiers[1].directory == str(tmp_path)

    def test_leading_dense_token_skipped(self):
        tiers = make_tiers("dense,compressed,disk")
        assert [t.name for t in tiers] == ["compressed-ram", "disk"]

    def test_dense_not_first_rejected(self):
        with pytest.raises(ValueError, match="dense"):
            make_tiers("compressed,dense")

    def test_compressed_defaults_to_dense_budget(self):
        (tier,) = make_tiers("compressed", default_capacity=4096)
        assert tier.capacity_bytes == 4096

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown cache tier"):
            make_tiers("tape")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_tiers("compressed:0")

    def test_duplicate_tiers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_tiers("disk,disk")

    def test_instances_pass_through(self):
        stack = [CompressedRamTier(), DiskSpillTier()]
        assert make_tiers(stack) == stack
        with pytest.raises(TypeError, match="not a CacheTier"):
            make_tiers(["compressed"])  # strings only as one spec


class TestEngineTierIntegration:
    def layer_sizes(self, handle):
        return {
            name: int(np.prod(spec.weight_shape)) * 8
            for name, spec in handle.layer_specs.items()
        }

    def test_eviction_demotes_and_faults_back(self, handle):
        sizes = self.layer_sizes(handle)
        big = max(sizes.values())
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=big,  # one large layer at a time
            tiers="compressed",
        )
        reference = {
            name: np.array(
                RebuildEngine(
                    payloads=handle.payloads, specs=handle.layer_specs
                ).layer_weight(name)
            )
            for name in engine.layer_names
        }
        for _ in range(3):
            for name in engine.layer_names:
                np.testing.assert_array_equal(
                    engine.layer_weight(name), reference[name]
                )
        stats = engine.stats
        assert stats.tier_count("compressed-ram", "demotions") > 0
        assert stats.tier_count("compressed-ram", "hits") > 0
        # A tier fault that re-enters the dense cache is a promotion.
        assert stats.tier_count("compressed-ram", "promotions") > 0
        # Faults replaced full rebuilds one for one.
        assert (
            stats.rebuilds
            == stats.accesses
            - stats.hits
            - stats.tier_count("compressed-ram", "hits")
        )

    def test_tier_hit_counts_partition_accesses(self, handle):
        sizes = self.layer_sizes(handle)
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=max(sizes.values()),
            tiers="compressed,disk",
        )
        for _ in range(4):
            for name in engine.layer_names:
                engine.layer_weight(name)
        counts = engine.stats.tier_hit_counts()
        assert list(counts) == ["dense-ram", "compressed-ram", "disk", "rebuild"]
        assert sum(counts.values()) == engine.stats.accesses

    def test_negative_savings_gate_blocks_demotion(self, handle):
        from repro.costs import CodecCostModel

        model = CodecCostModel()
        # Price the tier access as ruinously slow: rebuilding from the
        # payload is always cheaper, so nothing should ever demote.
        model.seed_tier("compressed-ram", 1.0)
        sizes = self.layer_sizes(handle)
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=max(sizes.values()),
            cost_model=model,
            tiers="compressed",
        )
        for _ in range(3):
            for name in engine.layer_names:
                engine.layer_weight(name)
        stats = engine.stats
        assert stats.tier_count("compressed-ram", "demotions") == 0
        assert stats.tier_count("compressed-ram", "rejected") == 0
        assert stats.tier_count("compressed-ram", "hits") == 0
        assert engine.tiers[0].entry_count == 0

    def test_compressed_overflow_cascades_to_disk(self, handle):
        probe = RebuildEngine(
            payloads=handle.payloads, specs=handle.layer_specs
        )
        blobs = {
            name: compress_dense(probe.layer_weight(name))
            for name in probe.layer_names
        }
        # Nothing fits the dense tier, so every rebuild demotes; the
        # compressed tier holds one blob at a time, so demoting the
        # second layer evicts the first, which must cascade to disk.
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=min(self.layer_sizes(handle).values()) - 1,
            tiers=f"compressed:{max(len(b) for b in blobs.values())},disk",
        )
        for _ in range(4):
            for name in engine.layer_names:
                engine.layer_weight(name)
        stats = engine.stats
        assert stats.tier_count("disk", "demotions") > 0
        assert stats.tier_count("disk", "hits") > 0
        engine.close()

    def test_oversized_dense_layer_served_from_tier(self, handle):
        sizes = self.layer_sizes(handle)
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=min(sizes.values()) - 1,  # nothing fits dense
            tiers="compressed:1048576",
        )
        for _ in range(3):
            for name in engine.layer_names:
                engine.layer_weight(name)
        stats = engine.stats
        assert stats.hits == 0  # dense tier can never hold a layer
        assert stats.tier_count("compressed-ram", "hits") > 0
        assert stats.rebuilds < stats.accesses

    def test_close_is_idempotent_and_engine_stays_usable(self, handle):
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=1,
            tiers="compressed,disk",
        )
        for name in engine.layer_names:
            engine.layer_weight(name)
        engine.close()
        engine.close()
        for name in engine.layer_names:
            engine.layer_weight(name)
        engine.close()

    def test_clear_empties_tiers(self, handle):
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=1,
            tiers="compressed:1048576",
        )
        for name in engine.layer_names:
            engine.layer_weight(name)
        assert engine.tiers[0].entry_count > 0
        engine.clear()
        assert engine.tiers[0].entry_count == 0

    def test_tier_summaries_snapshot(self, handle):
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            tiers="compressed:1024,disk",
        )
        summaries = engine.tier_summaries()
        assert [s["tier"] for s in summaries] == ["compressed-ram", "disk"]
        assert summaries[0]["capacity_bytes"] == 1024

    def test_stats_as_dict_has_tier_sections_only_with_tiers(self, handle):
        flat = RebuildEngine(
            payloads=handle.payloads, specs=handle.layer_specs
        )
        assert "tiers" not in flat.stats.as_dict()
        tiered = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            tiers="compressed",
        )
        snap = tiered.stats.as_dict()
        assert set(snap["tiers"]) == {"compressed-ram"}
        assert set(snap["tiers"]["compressed-ram"]) == set(
            tiered.stats.TIER_EVENTS
        )

    def test_tier_metrics_pre_registered(self, handle):
        engine = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            tiers="compressed,disk",
        )
        # Every per-tier series exists before any traffic, so exports
        # (and the simulator's schema-match check) see the full schema.
        for metric_name, _ in engine.stats.TIER_EVENTS.values():
            tiers = {
                series.tag_dict.get("tier")
                for series in engine.metrics.series(metric_name)
            }
            assert tiers == {"compressed-ram", "disk"}
