"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main(["prog"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table2" in out

    def test_runs_single_experiment(self, capsys):
        assert main(["prog", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "100" in out

    def test_runs_multiple(self, capsys):
        assert main(["prog", "table1", "table5"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "resources" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["prog", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err
