"""Sparse codec: magnitude-pruned weights as CSR values + bitmap index.

The storage scheme the pruning baselines (Han-style magnitude pruning,
Deep Compression's first stage) assume: surviving values at FP32 plus a
1-bit-per-element presence bitmap.  The per-row ``indptr`` (the CSR row
structure over the ``(out_channels, -1)`` view) is kept so rows can be
located without scanning the bitmap, but it is derivable from the
bitmap and therefore excluded from the analytic byte accounting —
matching :func:`repro.compression.base.bitmap_pruned_bits`.

The codec does not prune: it sparse-encodes whatever zeros the weight
already has, so it composes with any pruner (element, channel, filter).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import (
    LayerPayload,
    check_codec,
    decode_empty,
    empty_payload,
)


class PruneCSRCodec:
    """Nonzero FP32 values + packed presence bitmap (+ CSR ``indptr``)."""

    name = "prune-csr"

    def encode(self, weight: np.ndarray) -> LayerPayload:
        weight = np.asarray(weight)
        if weight.size == 0:
            return empty_payload(self.name, weight.shape)
        rows = weight.shape[0] if weight.ndim > 1 else 1
        flat = weight.reshape(rows, -1)
        mask = flat != 0
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        return LayerPayload(
            codec=self.name,
            weight_shape=tuple(weight.shape),
            arrays={
                "values": flat[mask].astype(np.float32),
                "bitmap": np.packbits(mask.reshape(-1).astype(np.uint8)),
                "indptr": indptr,
            },
            meta={"nnz": int(mask.sum())},
        )

    def decode(self, payload: LayerPayload) -> np.ndarray:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return decode_empty(payload)
        size = int(np.prod(payload.weight_shape, dtype=np.int64))
        mask = np.unpackbits(payload.arrays["bitmap"])[:size].astype(bool)
        out = np.zeros(size)
        out[mask] = payload.arrays["values"].astype(np.float64)
        return out.reshape(payload.weight_shape)

    def payload_bytes(self, payload: LayerPayload) -> int:
        check_codec(payload, self.name)
        if payload.meta.get("empty"):
            return 0
        return int(
            payload.arrays["values"].nbytes + payload.arrays["bitmap"].nbytes
        )
