"""DeepLabV3+ with a ResNet-50 backbone (output stride 16).

The paper's segmentation workload (CamVid).  The ASPP head uses atrous
(dilated) 3x3 convolutions; the decoder fuses a low-level backbone feature
and bilinearly upsamples to the input resolution.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.models.resnet import Bottleneck

ASPP_DILATIONS = (1, 6, 12, 18)


def _scaled(channels: int, width_mult: float) -> int:
    return max(1, int(round(channels * width_mult)))


class _ConvBNReLU(nn.Module):
    def __init__(self, in_channels, out_channels, kernel, dilation=1, rng=None):
        super().__init__()
        padding = dilation * (kernel // 2)
        self.conv = nn.Conv2d(in_channels, out_channels, kernel, padding=padding,
                              dilation=dilation, bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.relu(self.bn(self.conv(x)))


class ASPP(nn.Module):
    """Atrous spatial pyramid pooling: parallel 1x1 + three dilated 3x3 +
    a global-pool image feature, concatenated and projected."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.branch0 = _ConvBNReLU(in_channels, out_channels, 1, rng=rng)
        self.branch1 = _ConvBNReLU(in_channels, out_channels, 3,
                                   dilation=ASPP_DILATIONS[1], rng=rng)
        self.branch2 = _ConvBNReLU(in_channels, out_channels, 3,
                                   dilation=ASPP_DILATIONS[2], rng=rng)
        self.branch3 = _ConvBNReLU(in_channels, out_channels, 3,
                                   dilation=ASPP_DILATIONS[3], rng=rng)
        self.image_pool = nn.GlobalAvgPool2d()
        self.image_proj = _ConvBNReLU(in_channels, out_channels, 1, rng=rng)
        self.project = _ConvBNReLU(5 * out_channels, out_channels, 1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h, w = x.shape[2], x.shape[3]
        image_feat = self.image_proj(self.image_pool(x))
        image_feat = F.upsample_bilinear(image_feat, h, w)
        merged = nn.concat(
            [self.branch0(x), self.branch1(x), self.branch2(x), self.branch3(x),
             image_feat],
            axis=1,
        )
        return self.project(merged)


class DeepLabV3Plus(nn.Module):
    """Encoder-decoder segmentation network.

    The backbone mirrors ResNet-50's four stages but keeps the last stage
    at stride 1, so the encoder output stride is 16 (the paper's setting);
    the ASPP head then supplies the multi-rate dilated context.
    """

    def __init__(
        self,
        num_classes: int = 11,
        in_channels: int = 3,
        width_mult: float = 1.0,
        aspp_channels: int = 256,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        planes = [_scaled(p, width_mult) for p in (64, 128, 256, 512)]
        stem_width = planes[0]
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, stem_width, 7, stride=2, padding=3,
                      bias=False, rng=rng),
            nn.BatchNorm2d(stem_width),
            nn.ReLU(),
            nn.MaxPool2d(3, stride=2, padding=1),
        )

        def make_stage(in_ch: int, width: int, blocks: int, stride: int):
            layers: List[nn.Module] = []
            channels = in_ch
            for index in range(blocks):
                block = Bottleneck(channels, width,
                                   stride=stride if index == 0 else 1, rng=rng)
                layers.append(block)
                channels = block.out_channels
            return nn.Sequential(*layers), channels

        self.stage1, c1 = make_stage(stem_width, planes[0], 3, 1)
        self.stage2, c2 = make_stage(c1, planes[1], 4, 2)
        self.stage3, c3 = make_stage(c2, planes[2], 6, 2)
        # Final stage at stride 1 => encoder output stride 16.
        self.stage4, c4 = make_stage(c3, planes[3], 3, 1)

        aspp_out = _scaled(aspp_channels, width_mult)
        self.aspp = ASPP(c4, aspp_out, rng=rng)
        low_level_out = _scaled(48, width_mult)
        self.low_level_proj = _ConvBNReLU(c1, low_level_out, 1, rng=rng)
        self.decoder = nn.Sequential(
            _ConvBNReLU(aspp_out + low_level_out, aspp_out, 3, rng=rng),
            nn.Conv2d(aspp_out, num_classes, 1, rng=rng),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        in_h, in_w = x.shape[2], x.shape[3]
        x = self.stem(x)
        low = self.stage1(x)
        deep = self.stage4(self.stage3(self.stage2(low)))
        aspp = self.aspp(deep)
        aspp_up = F.upsample_bilinear(aspp, low.shape[2], low.shape[3])
        fused = nn.concat([aspp_up, self.low_level_proj(low)], axis=1)
        logits = self.decoder(fused)
        return F.upsample_bilinear(logits, in_h, in_w)

    def predict_labels(self, images: np.ndarray) -> np.ndarray:
        """Per-pixel argmax labels for a batch of images."""
        self.eval()
        logits = self(nn.Tensor(images))
        return logits.numpy().argmax(axis=1)


def deeplabv3plus(num_classes: int = 11, width_mult: float = 1.0, seed: int = 0,
                  **kwargs) -> DeepLabV3Plus:
    rng = np.random.default_rng(seed)
    return DeepLabV3Plus(num_classes=num_classes, width_mult=width_mult, rng=rng,
                         **kwargs)
