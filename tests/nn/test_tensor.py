"""Tests for the autograd tensor: forward values and taped gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat
from tests.conftest import assert_grad_matches


class TestForwardValues:
    def test_add_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).numpy(), a + b)

    def test_scalar_add_broadcasts(self, rng):
        a = rng.normal(size=(2, 3))
        np.testing.assert_allclose((Tensor(a) + 2.5).numpy(), a + 2.5)

    def test_sub_and_rsub(self, rng):
        a = rng.normal(size=4)
        np.testing.assert_allclose((1.0 - Tensor(a)).numpy(), 1.0 - a)
        np.testing.assert_allclose((Tensor(a) - 1.0).numpy(), a - 1.0)

    def test_mul_div_pow_neg(self, rng):
        a = rng.normal(size=(2, 2)) + 3.0
        t = Tensor(a)
        np.testing.assert_allclose((t * t).numpy(), a * a)
        np.testing.assert_allclose((t / 2.0).numpy(), a / 2.0)
        np.testing.assert_allclose((2.0 / t).numpy(), 2.0 / a)
        np.testing.assert_allclose((t**3).numpy(), a**3)
        np.testing.assert_allclose((-t).numpy(), -a)

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_reductions(self, rng):
        a = rng.normal(size=(2, 3, 4))
        t = Tensor(a)
        np.testing.assert_allclose(t.sum().numpy(), a.sum())
        np.testing.assert_allclose(t.sum(axis=1).numpy(), a.sum(axis=1))
        np.testing.assert_allclose(t.mean(axis=(0, 2)).numpy(), a.mean(axis=(0, 2)))
        np.testing.assert_allclose(t.max(axis=2).numpy(), a.max(axis=2))

    def test_elementwise_nonlinearities(self, rng):
        a = rng.normal(size=(3, 3))
        t = Tensor(a)
        np.testing.assert_allclose(t.relu().numpy(), np.maximum(a, 0))
        np.testing.assert_allclose(t.exp().numpy(), np.exp(a))
        np.testing.assert_allclose(t.sigmoid().numpy(), 1 / (1 + np.exp(-a)))
        np.testing.assert_allclose(t.silu().numpy(), a / (1 + np.exp(-a)))
        np.testing.assert_allclose(
            t.clip(-0.5, 0.5).numpy(), np.clip(a, -0.5, 0.5)
        )

    def test_log_sqrt_on_positive(self, rng):
        a = np.abs(rng.normal(size=5)) + 0.1
        np.testing.assert_allclose(Tensor(a).log().numpy(), np.log(a))
        np.testing.assert_allclose(Tensor(a).sqrt().numpy(), np.sqrt(a))

    def test_reshape_transpose_getitem(self, rng):
        a = rng.normal(size=(2, 6))
        t = Tensor(a)
        np.testing.assert_allclose(t.reshape(3, 4).numpy(), a.reshape(3, 4))
        np.testing.assert_allclose(t.transpose().numpy(), a.T)
        np.testing.assert_allclose(t[0].numpy(), a[0])

    def test_concat(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        out = concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.numpy(), np.concatenate([a, b], axis=1))

    def test_flatten_batch(self, rng):
        a = rng.normal(size=(4, 2, 3))
        assert Tensor(a).flatten_batch().shape == (4, 6)


class TestGradients:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: (t * t).sum(),
            lambda t: (t + 2.0).sum(),
            lambda t: (t / 3.0).sum(),
            lambda t: (t**3).sum(),
            lambda t: (-t).sum(),
            lambda t: t.relu().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.silu().sum(),
            lambda t: t.exp().sum(),
            lambda t: t.clip(-0.5, 0.5).sum(),
            lambda t: t.mean(axis=1).sum(),
            lambda t: t.reshape(6).sum(),
            lambda t: t.transpose().sum(),
            lambda t: (t.max(axis=1) ** 2).sum(),
        ],
    )
    def test_unary_gradients(self, rng, op):
        t = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        loss = op(t)
        loss.backward()
        assert_grad_matches(t, lambda: float(op(Tensor(t.data)).numpy().sum()))

    def test_matmul_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        scalar = lambda: float(((a.data @ b.data) ** 2).sum())
        assert_grad_matches(a, scalar)
        assert_grad_matches(b, scalar)

    def test_broadcast_add_gradient_shape(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        bias = Tensor(rng.normal(size=3), requires_grad=True)
        ((a + bias) ** 2).sum().backward()
        assert bias.grad.shape == (3,)
        assert_grad_matches(
            bias, lambda: float(((a.data + bias.data) ** 2).sum())
        )

    def test_broadcast_mul_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        scale = Tensor(rng.normal(size=(1, 3, 1)), requires_grad=True)
        ((a * scale).sum()).backward()
        assert scale.grad.shape == (1, 3, 1)
        assert_grad_matches(scale, lambda: float((a.data * scale.data).sum()))

    def test_getitem_gradient(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        (a[1:3] ** 2).sum().backward()
        assert_grad_matches(a, lambda: float((a.data[1:3] ** 2).sum()))

    def test_concat_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        (concat([a, b], axis=1) ** 2).sum().backward()
        scalar = lambda: float(
            (np.concatenate([a.data, b.data], axis=1) ** 2).sum()
        )
        assert_grad_matches(a, scalar)
        assert_grad_matches(b, scalar)

    def test_gradient_accumulates_over_reuse(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        loss = (a * a).sum() + (2.0 * a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 2.0)

    def test_diamond_graph_gradient(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = a * 2.0
        loss = (b * a).sum()  # d/da (2a^2) = 4a
        loss.backward()
        np.testing.assert_allclose(a.grad, 4 * a.data)

    def test_no_grad_for_constants(self, rng):
        a = Tensor(rng.normal(size=3))
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        assert b.grad is not None

    def test_detach_cuts_tape(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        detached = (a * 2.0).detach()
        (detached * 3.0).sum().backward()
        assert a.grad is None


class TestTensorBasics:
    def test_dtype_promotion_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_item_and_len(self):
        assert Tensor(np.array([7.0])).item() == 7.0
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_shape(self):
        assert "shape=(2, 2)" in repr(Tensor(np.zeros((2, 2))))

    def test_backward_with_explicit_seed_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = a * 3.0
        seed = np.ones((2, 2)) * 0.5
        out.backward(seed)
        np.testing.assert_allclose(a.grad, 3.0 * seed)

    def test_wrapping_tensor_shares_data(self, rng):
        a = Tensor(rng.normal(size=3))
        b = Tensor(a)
        assert b.data is a.data
