"""CIFAR-10 stand-in: 10 classes of 3x32x32 images."""

from __future__ import annotations

from repro.datasets.synthetic import ClassificationDataset, make_classification


def synthetic_cifar10(
    train_per_class: int = 20,
    test_per_class: int = 8,
    image_size: int = 32,
    num_classes: int = 10,
    seed: int = 0,
) -> ClassificationDataset:
    """Synthetic CIFAR-10: same shape/classes, deterministic given seed."""
    return make_classification(
        name="cifar10-synthetic",
        num_classes=num_classes,
        image_size=image_size,
        channels=3,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        seed=seed,
    )
