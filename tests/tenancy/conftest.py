"""Fixtures for the tenancy tests: one published small bundle."""

from __future__ import annotations

import pytest

from repro.core import apply_smartexchange
from repro.serving import ArtifactStore
from tests.serving.conftest import FAST, build_model


@pytest.fixture
def published(tmp_path):
    """(store, manifest, model, report, config) with one bundle —
    mirrors the serving conftest so host fixtures read the same."""
    store = ArtifactStore(tmp_path / "artifacts")
    model = build_model(seed=0)
    _, report = apply_smartexchange(model, FAST, model_name="demo")
    manifest = store.publish(report, FAST, model=model)
    return store, manifest, model, report, FAST
