"""Concurrent eviction/admission stress across mixed codecs.

N threads hammer one capacity-bounded ``RebuildEngine`` holding layers
encoded under several codecs, in per-thread shuffled orders, under
every admission policy — asserting the counters stay consistent
(``hits + misses == accesses``), the capacity bound is never violated,
and every returned weight is bit-identical to a fresh decode.
"""

import threading

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.serving import ADMISSION_POLICIES, RebuildEngine
from repro.serving.artifacts import LayerArtifactSpec

THREADS = 8
ROUNDS = 12

LAYERS = [
    # (name, fc shape, codec) — a mixed-codec zoo with size variety.
    ("se-big", (24, 24), "smartexchange"),
    ("se-small", (8, 12), "smartexchange"),
    ("ql-big", (20, 20), "quant-linear"),
    ("ql-small", (6, 10), "quant-linear"),
    ("fp8", (12, 12), "quant-fp8"),
    ("csr", (10, 14), "prune-csr"),
    ("dense", (9, 9), "dense"),
]


def build_payloads():
    rng = np.random.default_rng(7)
    payloads, specs, reference = {}, {}, {}
    for name, shape, codec in LAYERS:
        weight = rng.normal(size=shape)
        payload = get_codec(codec).encode(weight)
        payloads[name] = payload
        specs[name] = LayerArtifactSpec(
            name=name, kind="fc", weight_shape=shape, codec=codec
        )
        reference[name] = get_codec(codec).decode(payload)
    return payloads, specs, reference


@pytest.fixture(scope="module")
def zoo():
    return build_payloads()


@pytest.mark.parametrize("policy", sorted(ADMISSION_POLICIES))
def test_concurrent_mixed_codec_stress(zoo, policy):
    payloads, specs, reference = zoo
    total = sum(int(np.prod(shape)) * 8 for _, shape, _ in LAYERS)
    capacity = int(total * 0.5)  # guarantees eviction/rejection traffic
    engine = RebuildEngine(
        payloads=payloads,
        specs=specs,
        capacity_bytes=capacity,
        policy=policy,
    )

    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(seed):
        rng = np.random.default_rng(seed)
        names = list(specs)
        try:
            barrier.wait()
            for round_index in range(ROUNDS):
                rng.shuffle(names)
                for name in names:
                    weight = engine.layer_weight(name)
                    np.testing.assert_array_equal(weight, reference[name])
                # Exercise the lock-guarded telemetry paths mid-flight.
                assert engine.cached_bytes <= capacity
                assert engine.bytes_saved >= engine.total_dense_bytes - capacity
                if round_index == ROUNDS // 2 and seed == 0:
                    engine.clear()  # one mid-stress flush
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors[0]
    stats = engine.stats
    accesses = THREADS * ROUNDS * len(LAYERS)
    assert stats.hits + stats.misses == accesses
    assert stats.accesses == accesses
    assert stats.rebuilds <= stats.misses
    assert engine.cached_bytes <= capacity
    assert engine.cached_bytes == sum(
        reference[name].nbytes for name in engine.cached_layers
    )
    # The curve is monotone in accesses and cumulative rebuild seconds.
    curve = stats.curve
    assert curve, "stress run recorded no trade-curve points"
    for (a0, _, s0), (a1, _, s1) in zip(curve, curve[1:]):
        assert a1 >= a0
        assert s1 >= s0
    for _, cached_bytes, _ in curve:
        assert cached_bytes <= capacity


@pytest.mark.parametrize("policy", sorted(ADMISSION_POLICIES))
def test_single_thread_counters_exact(zoo, policy):
    """Sequential sanity twin of the stress test: exact counter math."""
    payloads, specs, reference = zoo
    engine = RebuildEngine(
        payloads=payloads, specs=specs, capacity_bytes=None, policy=policy
    )
    for _ in range(3):
        for name in specs:
            np.testing.assert_array_equal(
                engine.layer_weight(name), reference[name]
            )
    assert engine.stats.misses == len(LAYERS)
    assert engine.stats.hits == 2 * len(LAYERS)
    assert engine.stats.rebuilds == len(LAYERS)
    assert engine.bytes_saved == 0
