"""Accelerator simulators: SmartExchange + four baselines.

Typical use::

    from repro.hardware import (SmartExchangeAccelerator, DianNao,
                                build_workloads)

    workloads = build_workloads("resnet50")
    se = SmartExchangeAccelerator().simulate_model(workloads, "resnet50")
    dn = DianNao().simulate_model(workloads, "resnet50")
    print(dn.total_energy_pj / se.total_energy_pj)   # energy-efficiency gain
"""

from repro.hardware.accelerator import (
    Accelerator,
    LayerResult,
    ModelResult,
    dram_tiling,
    lane_utilization,
)
from repro.hardware.bit_pragmatic import BitPragmatic
from repro.hardware.cambricon_x import CambriconX
from repro.hardware.diannao import DianNao
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel, sram_energy_per_8bit
from repro.hardware.interface import (
    CompiledProgram,
    LayerInstruction,
    compile_workloads,
    parse_model,
)
from repro.hardware.layers import (
    LayerKind,
    LayerSparsity,
    LayerSpec,
    LayerWorkload,
    dense_storage_bits,
    se_geometry,
    smartexchange_storage_bits,
    smartexchange_storage_breakdown,
    trace_layer_specs,
)
from repro.hardware.modelspecs import MODEL_SPEC_BUILDERS, model_specs
from repro.hardware.profiling import (
    assign_to_consumers,
    measure_activation_sparsity,
)
from repro.hardware.scnn import SCNN
from repro.hardware.smartexchange import (
    SmartExchangeAccelerator,
    SmartExchangeAcceleratorConfig,
)
from repro.hardware.workloads import (
    BENCHMARK_SUITE,
    MODEL_PROFILES,
    ModelSparsityProfile,
    build_workloads,
)

BASELINE_ACCELERATORS = (DianNao, SCNN, CambriconX, BitPragmatic)

__all__ = [
    "Accelerator",
    "LayerResult",
    "ModelResult",
    "lane_utilization",
    "dram_tiling",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
    "sram_energy_per_8bit",
    "LayerKind",
    "LayerSpec",
    "LayerSparsity",
    "LayerWorkload",
    "se_geometry",
    "smartexchange_storage_bits",
    "smartexchange_storage_breakdown",
    "dense_storage_bits",
    "trace_layer_specs",
    "model_specs",
    "MODEL_SPEC_BUILDERS",
    "DianNao",
    "SCNN",
    "CambriconX",
    "BitPragmatic",
    "SmartExchangeAccelerator",
    "SmartExchangeAcceleratorConfig",
    "BASELINE_ACCELERATORS",
    "ModelSparsityProfile",
    "MODEL_PROFILES",
    "BENCHMARK_SUITE",
    "build_workloads",
    "parse_model",
    "compile_workloads",
    "CompiledProgram",
    "LayerInstruction",
    "measure_activation_sparsity",
    "assign_to_consumers",
]
