"""Span nesting, trace ids, the ring buffer, and thread isolation."""

from __future__ import annotations

import threading

import pytest

from repro.observability import SpanCollector, Tracer


class TestSpans:
    def test_root_span_mints_trace_id(self):
        tracer = Tracer()
        a = tracer.start_span("request", parent=None)
        b = tracer.start_span("request", parent=None)
        assert a.trace_id != b.trace_id
        assert a.parent_id is None
        assert not a.finished

    def test_explicit_parent_links_and_shares_trace_id(self):
        tracer = Tracer()
        root = tracer.start_span("request", parent=None)
        child = tracer.start_span("rebuild", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.children == [child]

    def test_finish_is_idempotent_and_collects_once(self):
        tracer = Tracer()
        span = tracer.start_span("compute", parent=None)
        tracer.finish_span(span, batch_size=4)
        first = span.duration_s
        tracer.finish_span(span, batch_size=8)
        assert span.duration_s == first
        assert span.tags["batch_size"] == 4
        assert len(tracer.collector) == 1

    def test_duration_never_negative(self):
        tracer = Tracer()
        span = tracer.start_span("compute", parent=None, start_s=100.0)
        tracer.finish_span(span, end_s=99.0)
        assert span.duration_s == 0.0

    def test_emit_records_premeasured_interval(self):
        tracer = Tracer()
        root = tracer.start_span("request", parent=None)
        span = tracer.emit(
            "queue_wait", start_s=1.0, end_s=1.5, parent=root,
            tags={"worker": 0},
        )
        assert span.duration_s == pytest.approx(0.5)
        assert span.parent_id == root.span_id
        assert tracer.collector.export()[0]["name"] == "queue_wait"

    def test_as_tree_nests_children(self):
        tracer = Tracer()
        root = tracer.start_span("request", parent=None)
        phase = tracer.start_span("rebuild", parent=root)
        leaf = tracer.start_span("rebuild.layer", parent=phase)
        for span in (leaf, phase, root):
            tracer.finish_span(span)
        tree = root.as_tree()
        assert tree["children"][0]["name"] == "rebuild"
        assert tree["children"][0]["children"][0]["name"] == "rebuild.layer"


class TestImplicitNesting:
    def test_span_context_manager_nests_on_active_stack(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            assert tracer.current_span() is root
            with tracer.span("rebuild") as phase:
                inner = tracer.start_span("rebuild.layer")
                tracer.finish_span(inner)
            assert inner.parent_id == phase.span_id
            assert phase.parent_id == root.span_id
        assert tracer.current_span() is None
        assert root.finished and phase.finished

    def test_activate_does_not_own_finish(self):
        tracer = Tracer()
        root = tracer.start_span("request", parent=None)
        with tracer.activate(root):
            child = tracer.start_span("rebuild.layer")
        assert not root.finished
        assert child.parent_id == root.span_id

    def test_active_stack_is_per_thread(self):
        tracer = Tracer()
        root = tracer.start_span("request", parent=None)
        seen = {}

        def worker():
            # A fresh thread sees no active span even while the main
            # thread holds one open.
            seen["current"] = tracer.current_span()
            orphan = tracer.start_span("compute")
            seen["parent_id"] = orphan.parent_id
            tracer.finish_span(orphan)

        with tracer.activate(root):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["current"] is None
        assert seen["parent_id"] is None

    def test_worker_threads_do_not_interleave_trace_ids(self):
        tracer = Tracer()
        errors = []

        def request(index):
            root = tracer.start_span("request", parent=None)
            with tracer.activate(root):
                for _ in range(20):
                    child = tracer.start_span("rebuild.layer")
                    if child.trace_id != root.trace_id:
                        errors.append((index, child.trace_id, root.trace_id))
                    tracer.finish_span(child)
            tracer.finish_span(root)

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        spans = tracer.collector.export()
        roots = [s for s in spans if s["name"] == "request"]
        assert len({s["trace_id"] for s in roots}) == 8


class TestSpanCollector:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanCollector(capacity=0)

    def test_ring_evicts_oldest_and_counts_dropped(self):
        collector = SpanCollector(capacity=3)
        tracer = Tracer(collector)
        for i in range(5):
            tracer.emit(f"s{i}", start_s=float(i), end_s=float(i) + 1.0,
                        parent=None)
        assert len(collector) == 3
        assert collector.dropped == 2
        assert collector.total == 5
        assert [s["name"] for s in collector.export()] == ["s2", "s3", "s4"]

    def test_drain_clears_but_keeps_counters(self):
        collector = SpanCollector(capacity=2)
        tracer = Tracer(collector)
        for i in range(3):
            tracer.emit(f"s{i}", start_s=0.0, end_s=1.0, parent=None)
        drained = collector.drain()
        assert len(drained) == 2
        assert len(collector) == 0
        assert collector.total == 3
        assert collector.dropped == 1

    def test_export_returns_copies(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        tracer.emit("s", start_s=0.0, end_s=1.0, parent=None)
        collector.export()[0]["name"] = "mutated"
        assert collector.export()[0]["name"] == "s"

    def test_empty_collector_passed_to_tracer_is_kept(self):
        # Regression: SpanCollector defines __len__, so an *empty*
        # collector is falsy — `collector or SpanCollector()` silently
        # replaced it and finished spans went to a private orphan ring.
        collector = SpanCollector()
        tracer = Tracer(collector)
        assert tracer.collector is collector
        tracer.emit("s", start_s=0.0, end_s=1.0, parent=None)
        assert len(collector) == 1
