"""Tests for the human-readable simulation reports."""

import pytest

from repro.hardware import (
    DianNao,
    SmartExchangeAccelerator,
    build_workloads,
)
from repro.hardware.report import (
    breakdown_report,
    comparison_report,
    layer_report,
)


@pytest.fixture(scope="module")
def results():
    workloads = build_workloads("resnet164")
    return (
        SmartExchangeAccelerator().simulate_model(workloads, "resnet164"),
        DianNao().simulate_model(workloads, "resnet164"),
    )


class TestLayerReport:
    def test_contains_every_layer(self, results):
        se, _ = results
        text = layer_report(se)
        for layer in se.layers:
            assert layer.name in text

    def test_top_filter(self, results):
        se, _ = results
        text = layer_report(se, top=3)
        # header + table header + separator + 3 rows
        assert len(text.splitlines()) == 6

    def test_header_totals(self, results):
        se, _ = results
        assert "resnet164 on smartexchange" in layer_report(se)

    def test_bound_column_values(self, results):
        se, _ = results
        text = layer_report(se)
        assert "compute" in text or "dram" in text


class TestComparisonReport:
    def test_side_by_side(self, results):
        se, dn = results
        text = comparison_report([dn, se])
        assert "diannao" in text and "smartexchange" in text
        assert "1.00x" in text  # the baseline normalizes to itself

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            comparison_report([])

    def test_rejects_mixed_models(self, results):
        se, _ = results
        other = DianNao().simulate_model(build_workloads("vgg19"), "vgg19")
        with pytest.raises(ValueError, match="several models"):
            comparison_report([se, other])


class TestBreakdownReport:
    def test_shares_listed(self, results):
        se, _ = results
        text = breakdown_report(se)
        assert "dram_weight" in text
        assert "%" in text

    def test_small_components_folded(self, results):
        se, _ = results
        text = breakdown_report(se, min_share=0.5)
        assert "(other)" in text
