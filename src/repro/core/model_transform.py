"""Whole-model SmartExchange application.

``SmartExchangeModel`` wraps an ``nn.Module``: it decomposes every
eligible conv / FC weight, swaps the rebuilt (sparse, power-of-2
reconstructed) weights into the live model, and can re-project after
each re-training epoch (the paper's alternating schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.core.config import SmartExchangeConfig
from repro.core.layer_transform import (
    LayerCompression,
    compress_conv_weight,
    compress_fc_weight,
    rebuild_conv_weight,
)
from repro.core.sparsify import channel_mask_from_bn
from repro.core.storage import FP32_BITS, BITS_PER_MB, StorageBreakdown


@dataclass
class ModelCompressionReport:
    """Aggregated Table-II-style statistics for one compressed model."""

    model_name: str
    layers: List[LayerCompression] = field(default_factory=list)
    uncompressed_elements: int = 0

    @property
    def storage(self) -> StorageBreakdown:
        out = StorageBreakdown()
        for layer in self.layers:
            out = out + layer.storage
        return out

    @property
    def original_elements(self) -> int:
        return sum(l.original_elements for l in self.layers) + self.uncompressed_elements

    @property
    def compressed_bits(self) -> int:
        """SmartExchange bits plus FP32 bits of layers left untouched."""
        return self.storage.total_bits + self.uncompressed_elements * FP32_BITS

    @property
    def compression_rate(self) -> float:
        if self.compressed_bits == 0:
            return 1.0
        return self.original_elements * FP32_BITS / self.compressed_bits

    @property
    def param_mb(self) -> float:
        return self.compressed_bits / BITS_PER_MB

    @property
    def original_mb(self) -> float:
        return self.original_elements * FP32_BITS / BITS_PER_MB

    @property
    def basis_mb(self) -> float:
        return self.storage.basis_mb

    @property
    def coefficient_mb(self) -> float:
        return self.storage.coefficient_mb

    @property
    def vector_sparsity(self) -> float:
        """Element-weighted mean vector sparsity over compressed layers."""
        weights = [l.original_elements for l in self.layers]
        if not weights:
            return 0.0
        values = [l.vector_sparsity for l in self.layers]
        return float(np.average(values, weights=weights))

    def layer_sparsity(self, name: str) -> float:
        for layer in self.layers:
            if layer.name == name:
                return layer.vector_sparsity
        raise KeyError(name)


def _bn_after_conv(model: nn.Module) -> Dict[int, nn.Module]:
    """Map ``id(conv)`` -> the BatchNorm that immediately follows it.

    Relies on definition order inside each composite module, which holds
    for the entire model zoo (conv1/bn1, Sequential(conv, bn, ...), ...).
    """
    mapping: Dict[int, nn.Module] = {}
    for module in model.modules():
        children = list(module._modules.values())
        for first, second in zip(children, children[1:]):
            if isinstance(first, nn.Conv2d) and isinstance(
                second, (nn.BatchNorm2d, nn.BatchNorm1d)
            ):
                mapping[id(first)] = second
    return mapping


class SmartExchangeModel:
    """A model plus its SmartExchange compression state."""

    def __init__(
        self,
        model: nn.Module,
        config: Optional[SmartExchangeConfig] = None,
        model_name: str = "model",
        layer_overrides: Optional[Dict[str, SmartExchangeConfig]] = None,
        compress_depthwise: bool = True,
    ) -> None:
        self.model = model
        self.config = config or SmartExchangeConfig()
        self.model_name = model_name
        self.layer_overrides = layer_overrides or {}
        self.compress_depthwise = compress_depthwise
        self._channel_masks: Dict[str, np.ndarray] = {}
        self._report: Optional[ModelCompressionReport] = None

    # ------------------------------------------------------------------
    def _eligible_layers(self) -> List[Tuple[str, nn.Module]]:
        eligible = []
        for name, module in self.model.named_modules():
            if isinstance(module, nn.Conv2d):
                if module.is_depthwise and not self.compress_depthwise:
                    continue
                eligible.append((name, module))
            elif isinstance(module, nn.Linear):
                eligible.append((name, module))
        return eligible

    def _config_for(self, name: str) -> SmartExchangeConfig:
        return self.layer_overrides.get(name, self.config)

    def _compute_channel_masks(self) -> None:
        """BN-|gamma| filter pruning masks, computed once (first epoch)."""
        bn_map = _bn_after_conv(self.model)
        for name, module in self._eligible_layers():
            config = self._config_for(name)
            if config.channel_theta is None or not isinstance(module, nn.Conv2d):
                continue
            bn = bn_map.get(id(module))
            if bn is None:
                continue
            self._channel_masks[name] = channel_mask_from_bn(
                bn.scale_factors(), config.channel_theta
            )

    # ------------------------------------------------------------------
    def compress(self) -> ModelCompressionReport:
        """Decompose all eligible layers and install rebuilt weights."""
        if not self._channel_masks:
            self._compute_channel_masks()
        report = ModelCompressionReport(model_name=self.model_name)
        compressed_ids = set()
        for name, module in self._eligible_layers():
            config = self._config_for(name)
            weight = module.weight.data
            if weight.size < config.min_elements:
                continue
            if isinstance(module, nn.Conv2d):
                compression = compress_conv_weight(
                    weight,
                    config,
                    name=name,
                    filter_keep_mask=self._channel_masks.get(name),
                )
                module.weight.data[...] = rebuild_conv_weight(compression)
            else:
                compression = compress_fc_weight(weight, config, name=name)
                module.weight.data[...] = compression.rebuild_weight()
            report.layers.append(compression)
            compressed_ids.add(id(module.weight))
        report.uncompressed_elements = sum(
            p.size
            for _, p in self.model.named_parameters()
            if id(p) not in compressed_ids
        )
        self._report = report
        return report

    def project(self) -> ModelCompressionReport:
        """Re-apply the decomposition to the current (re-trained) weights.

        Channel masks are frozen after the first call, matching the paper
        ("we only apply channel-wise sparsifying at the first training
        epoch once").
        """
        return self.compress()

    @property
    def report(self) -> ModelCompressionReport:
        if self._report is None:
            raise RuntimeError("call compress() first")
        return self._report

    # Convenience pass-throughs ----------------------------------------
    def __call__(self, x):
        return self.model(x)

    def parameters(self):
        return self.model.parameters()


def apply_smartexchange(
    model: nn.Module,
    config: Optional[SmartExchangeConfig] = None,
    model_name: str = "model",
    **kwargs,
) -> Tuple[SmartExchangeModel, ModelCompressionReport]:
    """One-shot post-processing (Section III-C, no re-training)."""
    wrapper = SmartExchangeModel(model, config, model_name=model_name, **kwargs)
    report = wrapper.compress()
    return wrapper, report
