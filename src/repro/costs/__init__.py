"""Cost models for the storage-access-vs-compute trade at serving time.

The accelerator side of this repo prices the paper's trade in pJ per
datum; the serving side pays it in *rebuild seconds*.  ``repro.costs``
owns the conversion and the bookkeeping:

- :class:`CodecCostModel` — rebuild seconds-per-dense-byte learned
  online (EWMA over observed decodes), keyed per codec and — when the
  observer names the layer — per ``(codec, layer)`` with the codec
  rate as the prior; seeded by a one-shot calibration probe per codec
  (timing the codec's largest layer).
- :class:`HardwareCostBridge` — maps
  :mod:`repro.hardware` energy estimates (DRAM fetch + MAC-class
  rebuild ops) onto serving-layer seconds, for cost-aware decisions
  before any traffic has been measured.

The serving layer consumes these through
:class:`repro.serving.CostAwarePolicy` (cache admission/eviction),
:class:`repro.serving.CostAwareBatchPolicy` (batch-close point), and
:class:`repro.serving.CostAwareRoutingPolicy` (which engine in a
multi-model :class:`repro.serving.ServingHost` serves each request).
"""

from repro.costs.model import (
    DEFAULT_SECONDS_PER_BYTE,
    DEFAULT_TIER_PRIORS,
    CodecCostModel,
    HardwareCostBridge,
)

__all__ = [
    "CodecCostModel",
    "HardwareCostBridge",
    "DEFAULT_SECONDS_PER_BYTE",
    "DEFAULT_TIER_PRIORS",
]
