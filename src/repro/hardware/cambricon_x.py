"""Cambricon-X: unstructured weight-sparsity baseline.

Only non-zero weights are stored (8-bit values plus a 4-bit step index
each) and multiplied; an on-chip indexing module selects the matching
activations, so activations are fetched densely from DRAM but only the
needed ones reach the PEs.  Irregular (unstructured) sparsity costs an
indexing-efficiency factor on the PE array.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.accelerator import (
    Accelerator,
    LayerResult,
    dram_tiling,
    lane_utilization,
)
from repro.hardware.layers import LayerWorkload
from repro.hardware.memory import assemble_result
from repro.hardware.resources import (
    BASELINE_BUFFERS,
    DRAM_BYTES_PER_CYCLE,
    MULTIPLIERS_8BIT,
)

PE_COUNT = 16
LANES_PER_PE = MULTIPLIERS_8BIT // PE_COUNT
STEP_INDEX_BITS = 4
WEIGHT_GB_REUSE = 8.0
# Unstructured sparsity leaves lanes idle when non-zeros bunch up; the
# penalty grows with how sparse (irregular) the layer actually is.
IRREGULARITY_PENALTY = 0.3


def irregularity_efficiency(weight_element_sparsity: float) -> float:
    return 1.0 - IRREGULARITY_PENALTY * weight_element_sparsity


class CambriconX(Accelerator):
    name = "cambricon-x"

    def simulate_layer(self, workload: LayerWorkload) -> LayerResult:
        spec = workload.spec
        sparsity = workload.sparsity
        macs = spec.macs * workload.batch
        weight_density = 1.0 - sparsity.weight_element
        effective_macs = macs * weight_density

        nnz_weights = spec.weight_count * weight_density
        sparse_bytes = nnz_weights * (1.0 + STEP_INDEX_BITS / 8.0)
        dense_bytes = float(spec.weight_count)
        if sparse_bytes < dense_bytes:
            weight_bytes = sparse_bytes
            index_bytes = nnz_weights * STEP_INDEX_BITS / 8.0
        else:
            # Nearly-dense layers are cheaper stored without indexes.
            weight_bytes = dense_bytes
            index_bytes = 0.0
        input_bytes = float(spec.input_count) * workload.batch
        output_bytes = float(spec.output_count) * workload.batch

        dram_w, dram_i, dram_o = dram_tiling(
            weight_bytes,
            0.0 if workload.input_onchip else input_bytes,
            0.0 if workload.output_onchip else output_bytes,
            BASELINE_BUFFERS.weight_bytes,
            BASELINE_BUFFERS.input_bytes,
        )
        dram = {
            "weight": max(dram_w - index_bytes, 0.0),
            "index": index_bytes,
            "input": dram_i,
            "output": dram_o,
        }

        m_tiles = int(np.ceil(spec.out_channels / PE_COUNT))
        gb = {
            # The indexing module reads only activations matched to
            # non-zero weights.
            "input_read": input_bytes * m_tiles * weight_density,
            "weight_read": effective_macs / WEIGHT_GB_REUSE,
            "output_write": output_bytes,
        }

        utilization = lane_utilization(spec.out_channels, PE_COUNT)
        utilization *= lane_utilization(
            int(np.ceil(spec.reduction_depth * weight_density)), LANES_PER_PE
        )
        utilization *= irregularity_efficiency(sparsity.weight_element)
        compute_cycles = effective_macs / (MULTIPLIERS_8BIT * max(utilization, 1e-9))
        compute_energy = {
            "pe": effective_macs * (self.energy.mac + 3 * self.energy.register_file),
            "accumulator": output_bytes * self.energy.adder,
            "index_selector": effective_macs * self.energy.register_file * 0.5,
        }
        return assemble_result(
            name=spec.name,
            macs=macs,
            effective_macs=effective_macs,
            compute_cycles=compute_cycles,
            dram_bytes=dram,
            gb_bytes=gb,
            compute_energy_pj=compute_energy,
            energy_model=self.energy,
            buffers=BASELINE_BUFFERS,
            dram_bytes_per_cycle=DRAM_BYTES_PER_CYCLE,
        )
