"""JSONL trace recording, bit-for-bit round trip, and replay."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.observability import (
    Observability,
    ReplayRequest,
    TraceReader,
    TraceRecorder,
    jsonable,
)

_DUMP_KWARGS = {"sort_keys": True, "separators": (",", ":")}


class TestJsonable:
    def test_numpy_scalars_unwrap(self):
        cleaned = jsonable(
            {"latency": np.float64(0.25), "bytes": np.int64(4096)}
        )
        assert cleaned == {"latency": 0.25, "bytes": 4096}
        # np.float64 subclasses float (json-safe as is); np.int64 does
        # not subclass int and must be unwrapped.
        assert isinstance(cleaned["latency"], float)
        assert type(cleaned["bytes"]) is int
        json.loads(json.dumps(cleaned, allow_nan=False))

    def test_non_finite_floats_become_strings(self):
        cleaned = jsonable({"a": math.nan, "b": math.inf, "c": -math.inf})
        assert cleaned == {"a": "nan", "b": "inf", "c": "-inf"}
        # The resulting document is strictly valid JSON.
        json.loads(json.dumps(cleaned, allow_nan=False))

    def test_nested_containers_and_tuples(self):
        cleaned = jsonable({"rows": [(np.int64(1), None), {"k": True}]})
        assert cleaned == {"rows": [[1, None], {"k": True}]}

    def test_unknown_objects_stringified(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable(Opaque()) == "<opaque>"


class TestRecorder:
    def test_writes_one_compact_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            recorder.record_request(
                trace_id="t00000001", model="m:v1", engine="m:v1",
                arrival_s=0.1, latency_s=0.02,
            )
            recorder.record_request(
                trace_id="t00000002", model="m:v1", engine="m:v1",
                arrival_s=0.2, latency_s=0.03, batch_id=1,
                error="ServingError",
            )
            assert recorder.records_written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(": " not in line and ", " not in line for line in lines)
        assert json.loads(lines[1])["error"] == "ServingError"

    def test_closed_recorder_rejects_writes(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        recorder.close()
        with pytest.raises(ValueError):
            recorder.record({"k": 1})
        recorder.close()  # idempotent

    def test_round_trip_is_bit_for_bit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as recorder:
            recorder.record_request(
                trace_id="t00000001", model="demo:v1", engine="demo:v1",
                arrival_s=np.float64(0.125), latency_s=0.5,
                rebuild_s=0.1, batch_id=3,
                spans={"name": "request", "tags": {"nan": math.nan},
                       "children": []},
            )
        lines = path.read_text().splitlines()
        redumped = [
            json.dumps(json.loads(line), **_DUMP_KWARGS) for line in lines
        ]
        assert redumped == lines


class TestReader:
    def write(self, path, rows):
        with TraceRecorder(path) as recorder:
            for row in rows:
                recorder.record_request(**row)

    def test_schedule_sorted_stably_by_arrival(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write(path, [
            dict(trace_id="t3", model="b", engine="b",
                 arrival_s=0.2, latency_s=0.01),
            dict(trace_id="t1", model="a", engine="a",
                 arrival_s=0.1, latency_s=0.01),
            dict(trace_id="t2", model="a", engine="a",
                 arrival_s=0.1, latency_s=0.02),  # tie: keeps file order
        ])
        schedule = TraceReader(path).schedule()
        assert [row.trace_id for row in schedule] == ["t1", "t2", "t3"]
        assert all(isinstance(row, ReplayRequest) for row in schedule)
        # Replaying the reader is deterministic.
        assert TraceReader(path).schedule() == schedule

    def test_by_model_groups_in_arrival_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write(path, [
            dict(trace_id="t1", model="a", engine="a",
                 arrival_s=0.3, latency_s=0.01),
            dict(trace_id="t2", model="b", engine="b",
                 arrival_s=0.1, latency_s=0.01),
            dict(trace_id="t3", model="a", engine="a",
                 arrival_s=0.2, latency_s=0.01),
        ])
        grouped = TraceReader(path).by_model()
        assert [row.trace_id for row in grouped["a"]] == ["t3", "t1"]
        assert [row.trace_id for row in grouped["b"]] == ["t2"]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"trace_id":"t1","arrival_s":0.0}\n\n')
        assert len(TraceReader(path).records()) == 1

    def test_tenant_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write(path, [
            dict(trace_id="t1", model="a", engine="a",
                 arrival_s=0.1, latency_s=0.01, tenant="acme"),
        ])
        (row,) = TraceReader(path).schedule()
        assert row.tenant == "acme"

    def test_pre_tenant_records_default_to_none(self, tmp_path):
        # Traces recorded before the schema grew a tenant key must
        # still replay.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"trace_id":"t1","arrival_s":0.0,"model":"a"}\n')
        (row,) = TraceReader(path).schedule()
        assert row.tenant is None


class TestObservabilityRecordingLifecycle:
    def test_finish_request_writes_record_with_span_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observability(recorder=TraceRecorder(path))
        trace = obs.begin_request(model="demo:v1")
        rebuild = obs.tracer.start_span("rebuild", parent=trace.root)
        obs.tracer.finish_span(rebuild, end_s=rebuild.start_s + 0.25)
        obs.finish_request(trace, batch_id=7)
        obs.recorder.close()

        (record,) = TraceReader(path).records()
        assert record["trace_id"] == trace.trace_id
        assert record["model"] == "demo:v1"
        assert record["batch_id"] == 7
        # rebuild_s is derived from the root's rebuild children.
        assert record["rebuild_s"] == pytest.approx(0.25)
        assert record["spans"]["name"] == "request"
        assert record["spans"]["children"][0]["name"] == "rebuild"
        assert record["arrival_s"] == pytest.approx(
            trace.root.start_s - obs.epoch
        )

    def test_disabled_handle_records_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        obs = Observability(recorder=recorder, enabled=False)
        assert obs.begin_request(model="demo:v1") is None
        assert recorder.records_written == 0
        recorder.close()


class TestScheduleDeterminism:
    """Equal-arrival rows must sort the same regardless of file order."""

    ROWS = [
        {"trace_id": "t2", "model": "b", "arrival_s": 1.0},
        {"trace_id": "t1", "model": "b", "arrival_s": 1.0},
        {"trace_id": "t9", "model": "a", "arrival_s": 1.0},
        {"trace_id": "t0", "model": "a", "arrival_s": 0.5},
        {"trace_id": "t3", "model": None, "arrival_s": 1.0},
    ]

    def write(self, path, rows):
        with TraceRecorder(path) as recorder:
            for row in rows:
                recorder.record_request(
                    trace_id=row["trace_id"],
                    model=row["model"],
                    engine=None,
                    arrival_s=row["arrival_s"],
                    latency_s=0.0,
                )

    def test_ties_break_by_model_then_trace_id(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write(path, self.ROWS)
        ids = [row.trace_id for row in TraceReader(path).schedule()]
        # t0 arrives first; then the 1.0 ties: None-model first (sorts
        # as ""), then model "a", then model "b" by trace id.
        assert ids == ["t0", "t3", "t9", "t1", "t2"]

    def test_file_order_does_not_matter(self, tmp_path):
        forward = tmp_path / "fwd.jsonl"
        backward = tmp_path / "bwd.jsonl"
        self.write(forward, self.ROWS)
        self.write(backward, list(reversed(self.ROWS)))
        assert (
            TraceReader(forward).schedule()
            == TraceReader(backward).schedule()
        )
