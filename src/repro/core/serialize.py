"""Bit-exact serialization of the SmartExchange form.

Stores a compressed model the way the accelerator's DRAM would hold it:

- coefficient matrices as packed 4-bit codes (two per byte) for the
  surviving rows only,
- a 1-bit-per-row vector index bitmap (packed 8 per byte),
- basis matrices as 8-bit fixed point with a per-matrix scale,
- a small per-matrix header (the ΩP exponent anchor).

``save_compressed`` writes an ``.npz``; ``load_compressed`` rebuilds the
exact same weights the in-memory form rebuilds (bit-identical Ce, basis
within the 8-bit quantization).  The on-disk payload size matches the
analytic accounting of :mod:`repro.core.storage` up to byte rounding,
which is tested.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import SmartExchangeConfig
from repro.core.decompose import Decomposition
from repro.core.model_transform import ModelCompressionReport

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Coefficient codes: 0 == zero, else 1 + sign * exponent-offset pairing
# ----------------------------------------------------------------------
def encode_coefficient_codes(
    coefficient: np.ndarray, p_min: int, p_max: int, ce_bits: int = 4
) -> np.ndarray:
    """Map Ce entries to integer codes in [0, 2**ce_bits).

    Code 0 is the in-row zero; codes 1.. encode (exponent-offset, sign)
    as ``1 + 2 * (p - p_min) + (sign < 0)``.
    """
    exponent_count = p_max - p_min + 1
    if 1 + 2 * exponent_count - 1 >= 2**ce_bits:
        raise ValueError(
            f"{exponent_count} exponents do not fit {ce_bits}-bit codes"
        )
    codes = np.zeros(coefficient.shape, dtype=np.uint8)
    nonzero = coefficient != 0
    if nonzero.any():
        values = coefficient[nonzero]
        exponents = np.round(np.log2(np.abs(values))).astype(np.int64)
        if exponents.min() < p_min or exponents.max() > p_max:
            raise ValueError("coefficient exponent outside the ΩP window")
        negative = (values < 0).astype(np.uint8)
        codes[nonzero] = 1 + 2 * (exponents - p_min).astype(np.uint8) + negative
    return codes


def decode_coefficient_codes(
    codes: np.ndarray, p_min: int
) -> np.ndarray:
    """Inverse of :func:`encode_coefficient_codes`."""
    codes = np.asarray(codes, dtype=np.int64)
    out = np.zeros(codes.shape, dtype=np.float64)
    nonzero = codes > 0
    if nonzero.any():
        payload = codes[nonzero] - 1
        exponents = payload // 2 + p_min
        signs = np.where(payload % 2 == 0, 1.0, -1.0)
        out[nonzero] = signs * 2.0**exponents
    return out


def pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Pack 4-bit codes two-per-byte (little nibble first)."""
    flat = np.asarray(codes, dtype=np.uint8).reshape(-1)
    if flat.size % 2:
        flat = np.concatenate([flat, np.zeros(1, dtype=np.uint8)])
    return (flat[0::2] | (flat[1::2] << 4)).astype(np.uint8)


def unpack_nibbles(packed: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`pack_nibbles` (needs the original code count)."""
    packed = np.asarray(packed, dtype=np.uint8)
    low = packed & 0x0F
    high = packed >> 4
    flat = np.empty(packed.size * 2, dtype=np.uint8)
    flat[0::2] = low
    flat[1::2] = high
    return flat[:count]


# ----------------------------------------------------------------------
# Basis: 8-bit symmetric fixed point with a per-matrix scale
# ----------------------------------------------------------------------
def quantize_basis(basis: np.ndarray, bits: int = 8) -> Tuple[np.ndarray, float]:
    max_abs = float(np.abs(basis).max())
    if max_abs == 0.0:
        return np.zeros(basis.shape, dtype=np.int8), 1.0
    qmax = 2 ** (bits - 1) - 1
    scale = max_abs / qmax
    return np.round(basis / scale).astype(np.int8), scale


def dequantize_basis(codes: np.ndarray, scale: float) -> np.ndarray:
    return codes.astype(np.float64) * scale


# ----------------------------------------------------------------------
# Whole-decomposition payload
# ----------------------------------------------------------------------
def decomposition_payload(
    decomposition: Decomposition, config: SmartExchangeConfig
) -> Dict[str, np.ndarray]:
    """The DRAM image of one {Ce, B} pair."""
    coefficient = decomposition.coefficient
    alive = np.any(coefficient != 0, axis=1)
    codes = encode_coefficient_codes(
        coefficient[alive], decomposition.omega.p_min,
        decomposition.omega.p_max, config.ce_bits,
    )
    basis_codes, basis_scale = quantize_basis(decomposition.basis, config.b_bits)
    return {
        "index": np.packbits(alive.astype(np.uint8)),
        "codes": pack_nibbles(codes),
        "basis": basis_codes,
        "meta": np.array(
            [decomposition.omega.p_min, decomposition.omega.p_max,
             coefficient.shape[0], coefficient.shape[1]],
            dtype=np.int32,
        ),
        "basis_scale": np.array([basis_scale]),
    }


def payload_weight(payload: Dict[str, np.ndarray]) -> np.ndarray:
    """Rebuild ``W_hat = Ce B`` from a serialized payload."""
    p_min, _p_max, rows, cols = (int(v) for v in payload["meta"])
    alive = np.unpackbits(payload["index"])[:rows].astype(bool)
    alive_count = int(alive.sum())
    codes = unpack_nibbles(payload["codes"], alive_count * cols)
    coefficient = np.zeros((rows, cols))
    coefficient[alive] = decode_coefficient_codes(
        codes.reshape(alive_count, cols), p_min
    )
    basis = dequantize_basis(payload["basis"], float(payload["basis_scale"][0]))
    return coefficient @ basis


def payload_bytes(payload: Dict[str, np.ndarray]) -> int:
    """DRAM-image size: codes + index bitmap + basis + 1 anchor byte.

    The shape fields and the float basis scale are layer-descriptor
    metadata (the accelerator gets them from the compiled instructions),
    so they are excluded — matching the analytic accounting of
    :mod:`repro.core.storage` up to byte rounding.
    """
    image_keys = ("index", "codes", "basis")
    return sum(payload[key].nbytes for key in image_keys) + 1


# ----------------------------------------------------------------------
# Model-level save / load
# ----------------------------------------------------------------------
def save_compressed(path, report: ModelCompressionReport,
                    config: SmartExchangeConfig) -> int:
    """Write every layer's SmartExchange form to ``path`` (.npz).

    Returns the total payload bytes (excluding npz container overhead).
    """
    arrays: Dict[str, np.ndarray] = {
        "__format__": np.array([_FORMAT_VERSION]),
    }
    total = 0
    for layer_index, layer in enumerate(report.layers):
        for matrix_index, decomposition in enumerate(layer.decompositions):
            payload = decomposition_payload(decomposition, config)
            total += payload_bytes(payload)
            prefix = f"L{layer_index}.M{matrix_index}"
            for key, value in payload.items():
                arrays[f"{prefix}.{key}"] = value
        arrays[f"L{layer_index}.name"] = np.array([layer.name])
        arrays[f"L{layer_index}.count"] = np.array([len(layer.decompositions)])
    arrays["__layers__"] = np.array([len(report.layers)])
    np.savez_compressed(path, **arrays)
    return total


def load_payloads(path) -> Dict[str, List[Dict[str, np.ndarray]]]:
    """Read a saved model without rebuilding: {layer name: [payload, ...]}.

    The payloads stay in the packed DRAM-image form (nibble codes, index
    bitmap, int8 basis), so the caller decides when to pay the rebuild
    compute — this is what :mod:`repro.serving.rebuild` consumes.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["__format__"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        out: Dict[str, List[Dict[str, np.ndarray]]] = {}
        for layer_index in range(int(data["__layers__"][0])):
            name = str(data[f"L{layer_index}.name"][0])
            count = int(data[f"L{layer_index}.count"][0])
            payloads = []
            for matrix_index in range(count):
                prefix = f"L{layer_index}.M{matrix_index}"
                payloads.append({
                    key: data[f"{prefix}.{key}"]
                    for key in ("index", "codes", "basis", "meta", "basis_scale")
                })
            out[name] = payloads
    return out


def load_compressed(path) -> Dict[str, List[np.ndarray]]:
    """Read a saved model: {layer name: [rebuilt matrix, ...]}."""
    return {
        name: [payload_weight(payload) for payload in payloads]
        for name, payloads in load_payloads(path).items()
    }
