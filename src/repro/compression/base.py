"""Common protocol and report for baseline compressors.

Every compressor snaps model weights in place, accounts storage
analytically (``compressed_bits``, the paper's CR definition), and —
since the codec redesign — also emits one *servable*
:class:`~repro.codecs.LayerPayload` per layer through its weight codec,
so ``ArtifactStore.publish_compressed(report)`` turns any baseline into
a bundle the inference engine can serve next to SmartExchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

import numpy as np

from repro import nn
from repro.codecs import LayerPayload, WeightCodec
from repro.core.storage import BITS_PER_MB, FP32_BITS


@dataclass
class CompressionReport:
    """Storage outcome of applying one baseline technique to a model.

    ``payloads`` holds the encoded, servable form of each compressed
    layer and ``codec`` names the registry decoder for them; both are
    filled by the compressor that produced the report.
    """

    technique: str
    model_name: str
    original_elements: int = 0
    compressed_bits: int = 0
    layer_bits: Dict[str, int] = field(default_factory=dict)
    codec: Optional[str] = None
    payloads: Dict[str, LayerPayload] = field(default_factory=dict)

    @property
    def original_bits(self) -> int:
        return self.original_elements * FP32_BITS

    @property
    def compression_rate(self) -> float:
        if self.compressed_bits == 0:
            return 1.0
        return self.original_bits / self.compressed_bits

    @property
    def param_mb(self) -> float:
        return self.compressed_bits / BITS_PER_MB

    @property
    def original_mb(self) -> float:
        return self.original_bits / BITS_PER_MB


class Compressor(Protocol):
    """A baseline technique: mutates model weights, returns storage."""

    name: str

    def compress(self, model: nn.Module, model_name: str = "model") -> CompressionReport:
        """Apply the technique in place and account its storage."""
        ...  # pragma: no cover - protocol


def record_payload(
    report: CompressionReport,
    layer_name: str,
    weight: np.ndarray,
    codec: WeightCodec,
) -> None:
    """Encode the (already snapped/pruned) weight into the report."""
    report.codec = codec.name
    report.payloads[layer_name] = codec.encode(weight)


def weight_layers(model: nn.Module) -> List:
    """(name, module) for every conv / linear layer of the model."""
    layers = []
    for name, module in model.named_modules():
        if isinstance(module, (nn.Conv2d, nn.Linear)):
            layers.append((name, module))
    return layers


def count_other_elements(model: nn.Module) -> int:
    """Scalars in parameters that are not conv/linear weights."""
    weight_ids = {id(m.weight) for _, m in weight_layers(model)}
    return sum(
        p.size for _, p in model.named_parameters() if id(p) not in weight_ids
    )


def bitmap_pruned_bits(weight: np.ndarray, value_bits: int) -> int:
    """Storage for a pruned tensor: non-zeros at ``value_bits`` + 1-bit map."""
    nnz = int(np.count_nonzero(weight))
    return nnz * value_bits + weight.size
