"""The full SmartExchange pipeline, end to end (paper Fig. 7 flow).

train -> compress (algorithm) -> verify invariants -> measure activation
sparsity -> parse + compile (SW/HW interface) -> simulate on the
SmartExchange accelerator -> serialize the 4-bit DRAM image to disk.

Run:  python examples/full_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import nn
from repro.core import (
    SmartExchangeConfig,
    SmartExchangeModel,
    load_compressed,
    retrain,
    save_compressed,
    verify_compression,
)
from repro.datasets import synthetic_cifar10
from repro.hardware import (
    SmartExchangeAccelerator,
    assign_to_consumers,
    compile_workloads,
    measure_activation_sparsity,
    parse_model,
)


def main() -> None:
    dataset = synthetic_cifar10(train_per_class=12, test_per_class=6,
                                num_classes=6)
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, dataset.num_classes, rng=rng),
    )

    print("1. training ...")
    nn.fit(model, dataset.train_images, dataset.train_labels,
           dataset.test_images, dataset.test_labels, epochs=5, lr=0.02)

    print("2. compressing with alternating re-training ...")
    config = SmartExchangeConfig(max_iterations=8, target_row_sparsity=0.3)
    se_model = SmartExchangeModel(model, config, model_name="pipeline-cnn")
    outcome = retrain(se_model, dataset.train_images, dataset.train_labels,
                      dataset.test_images, dataset.test_labels,
                      epochs=3, lr=0.005, momentum=0.5)
    report = outcome.final_report
    print(f"   accuracy {outcome.best_projected_accuracy:.1%}, "
          f"CR {report.compression_rate:.1f}x")

    print("3. verifying SmartExchange invariants ...")
    violations = verify_compression(model, report)
    print(f"   {'CLEAN' if not violations else violations}")

    print("4. measuring activation sparsity on sample inputs ...")
    stats = assign_to_consumers(
        model,
        measure_activation_sparsity(model, dataset.test_images[:8]),
    )
    for name, sparsity in stats.items():
        print(f"   layer {name}: act zeros {sparsity.act_element:.0%}, "
              f"Booth-term sparsity {sparsity.act_booth:.0%}")

    print("5. compiling for the accelerator ...")
    specs = parse_model(model, (1, *dataset.image_shape))
    program = compile_workloads(specs, report=report,
                                activation_sparsity=stats,
                                model_name="pipeline-cnn")
    for instruction in program.instructions:
        print(f"   {instruction.workload.spec.name}: {instruction.dataflow}")

    print("6. simulating ...")
    result = SmartExchangeAccelerator().simulate_model(
        program.workloads, "pipeline-cnn")
    bounds = result.bound_analysis()
    print(f"   energy {result.total_energy_pj / 1e6:.3f} uJ, "
          f"latency {result.total_cycles:.0f} cycles, "
          f"{bounds['dram_bound']:.0%} of time DRAM-bound")

    print("7. serializing the 4-bit DRAM image ...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        payload = save_compressed(path, report, config)
        loaded = load_compressed(path)
        print(f"   payload {payload} bytes "
              f"(analytic {report.storage.total_bits // 8}), "
              f"{len(loaded)} layers load back")


if __name__ == "__main__":
    main()
