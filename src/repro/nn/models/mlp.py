"""The two MNIST MLPs from the paper's Table II.

Layer widths are inferred from the reported FP32 parameter sizes:

- MLP-1 (from the power-of-two quantization baseline [40]): 14.125 MB of
  FP32 parameters ≈ 3.70 M weights ⇒ 784-1570-1570-10.
- MLP-2 (from Cambricon-S [56]): 1.07 MB ≈ 0.27 M weights ⇒ the classic
  LeNet-300-100 (784-300-100-10).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import nn

MLP1_WIDTHS = (784, 1570, 1570, 10)
MLP2_WIDTHS = (784, 300, 100, 10)


class MLP(nn.Module):
    """Plain fully-connected ReLU network over flattened inputs."""

    def __init__(
        self,
        widths: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(widths) < 2:
            raise ValueError("an MLP needs at least input and output widths")
        rng = rng or np.random.default_rng(0)
        self.widths = tuple(widths)
        layers: List[nn.Module] = [nn.Flatten()]
        for in_w, out_w in zip(widths[:-2], widths[1:-1]):
            layers.append(nn.Linear(in_w, out_w, rng=rng))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(widths[-2], widths[-1], rng=rng))
        self.body = nn.Sequential(*layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.body(x)


def _scale_widths(widths: Sequence[int], width_mult: float) -> List[int]:
    inner = [max(4, int(round(w * width_mult))) for w in widths[1:-1]]
    return [widths[0], *inner, widths[-1]]


def mlp_1(width_mult: float = 1.0, in_features: int = 784, num_classes: int = 10,
          seed: int = 0) -> MLP:
    widths = _scale_widths((in_features, *MLP1_WIDTHS[1:-1], num_classes), width_mult)
    return MLP(widths, rng=np.random.default_rng(seed))


def mlp_2(width_mult: float = 1.0, in_features: int = 784, num_classes: int = 10,
          seed: int = 0) -> MLP:
    widths = _scale_widths((in_features, *MLP2_WIDTHS[1:-1], num_classes), width_mult)
    return MLP(widths, rng=np.random.default_rng(seed))
