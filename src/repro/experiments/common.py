"""Shared experiment scaffolding.

Every experiment module exposes ``run(...) -> ExperimentResult``.  The
CI-scale model zoo here trains small-width instances of the paper's
architectures on the synthetic datasets and caches them in-process so
that the figure/table harnesses (and their benches) can share them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.datasets import (
    ClassificationDataset,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)
from repro.nn import models
from repro.nn.models.resnet import ResNet


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus free-form notes."""

    experiment: str
    rows: List[Dict] = field(default_factory=list)
    notes: str = ""

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def as_table(self) -> str:
        """Plain-text table (what the benches print)."""
        names = self.column_names()
        if not names:
            return f"== {self.experiment} == (no rows)"

        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        widths = {n: len(n) for n in names}
        rendered = []
        for row in self.rows:
            cells = {n: fmt(row.get(n, "")) for n in names}
            for n in names:
                widths[n] = max(widths[n], len(cells[n]))
            rendered.append(cells)
        header = "  ".join(n.ljust(widths[n]) for n in names)
        lines = [f"== {self.experiment} ==", header,
                 "  ".join("-" * widths[n] for n in names)]
        for cells in rendered:
            lines.append("  ".join(cells[n].ljust(widths[n]) for n in names))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        return [row.get(name) for row in self.rows]


# ----------------------------------------------------------------------
# CI-scale model zoo
# ----------------------------------------------------------------------
@dataclass
class TrainedModel:
    """A trained CI-scale stand-in for one of the paper's models."""

    name: str
    model: nn.Module
    dataset: ClassificationDataset
    accuracy: float
    input_shape: Tuple[int, ...]


def _resnet50_ci(num_classes: int) -> ResNet:
    """Depth-reduced ResNet-50 stand-in: same bottleneck topology, one
    block per stage, narrow width (documented CI substitution)."""
    return ResNet([1, 1, 1, 1], [64, 128, 256, 512], num_classes=num_classes,
                  width_mult=0.125, imagenet_stem=True,
                  rng=np.random.default_rng(0))


def _resnet164_ci(num_classes: int) -> ResNet:
    """Depth-reduced ResNet-164 stand-in (the depth-29 family member)."""
    return models.resnet.resnet_cifar(29, num_classes=num_classes, width_mult=0.5)


_MODEL_BUILDERS: Dict[str, Callable[[int], nn.Module]] = {
    "vgg11": lambda nc: models.vgg11(num_classes=nc, width_mult=0.25),
    "vgg19": lambda nc: models.vgg19(num_classes=nc, width_mult=0.25),
    "resnet50": _resnet50_ci,
    "resnet164": _resnet164_ci,
    "mobilenetv2": lambda nc: models.mobilenet_v2(num_classes=nc, width_mult=0.35),
    "efficientnet_b0": lambda nc: models.efficientnet_b0(num_classes=nc,
                                                         width_mult=0.35),
    "mlp1": lambda nc: models.mlp_1(width_mult=0.1, num_classes=nc),
    "mlp2": lambda nc: models.mlp_2(width_mult=0.5, num_classes=nc),
}

_DATASET_FOR_MODEL: Dict[str, str] = {
    "vgg11": "imagenet",
    "resnet50": "imagenet",
    "mobilenetv2": "imagenet",
    "efficientnet_b0": "imagenet",
    "vgg19": "cifar10",
    "resnet164": "cifar10",
    "mlp1": "mnist",
    "mlp2": "mnist",
}

_EPOCHS: Dict[str, int] = {
    "vgg11": 5, "vgg19": 5, "resnet50": 5, "resnet164": 5,
    "mobilenetv2": 6, "efficientnet_b0": 6, "mlp1": 5, "mlp2": 5,
}

# Deep narrow nets need a gentle rate on the small synthetic tasks.
_CI_LEARNING_RATE = 0.02
_CI_BATCH_SIZE = 12

_dataset_cache: Dict[str, ClassificationDataset] = {}
_model_cache: Dict[str, TrainedModel] = {}


def ci_dataset(name: str, seed: int = 0) -> ClassificationDataset:
    """The CI-scale synthetic stand-in for one of the paper's datasets."""
    key = f"{name}:{seed}"
    if key in _dataset_cache:
        return _dataset_cache[key]
    if name == "cifar10":
        dataset = synthetic_cifar10(train_per_class=14, test_per_class=6,
                                    num_classes=6, seed=seed)
    elif name == "imagenet":
        dataset = synthetic_imagenet(num_classes=6, image_size=32,
                                     train_per_class=14, test_per_class=6, seed=seed)
    elif name == "mnist":
        dataset = synthetic_mnist(train_per_class=16, test_per_class=8, seed=seed)
    else:
        raise KeyError(f"unknown CI dataset {name!r}")
    _dataset_cache[key] = dataset
    return dataset


def ci_model(name: str, epochs: Optional[int] = None, seed: int = 0) -> TrainedModel:
    """A trained CI-scale model (cached per process)."""
    if name not in _MODEL_BUILDERS:
        raise KeyError(f"unknown CI model {name!r}; known: {sorted(_MODEL_BUILDERS)}")
    epochs = epochs if epochs is not None else _EPOCHS[name]
    key = f"{name}:{epochs}:{seed}"
    if key in _model_cache:
        return _model_cache[key]
    dataset = ci_dataset(_DATASET_FOR_MODEL[name], seed=seed)
    model = _MODEL_BUILDERS[name](dataset.num_classes)
    history = nn.fit(
        model,
        dataset.train_images,
        dataset.train_labels,
        dataset.test_images,
        dataset.test_labels,
        epochs=epochs,
        lr=_CI_LEARNING_RATE,
        momentum=0.9,
        batch_size=_CI_BATCH_SIZE,
        seed=seed,
    )
    trained = TrainedModel(
        name=name,
        model=model,
        dataset=dataset,
        accuracy=history.final_accuracy,
        input_shape=(1, *dataset.image_shape),
    )
    _model_cache[key] = trained
    return trained


def fresh_ci_model(name: str, epochs: Optional[int] = None, seed: int = 0) -> TrainedModel:
    """A newly trained copy (for experiments that mutate weights)."""
    trained = ci_model(name, epochs=epochs, seed=seed)
    builder = _MODEL_BUILDERS[name]
    clone = builder(trained.dataset.num_classes)
    clone.load_state_dict(trained.model.state_dict())
    return TrainedModel(
        name=trained.name,
        model=clone,
        dataset=trained.dataset,
        accuracy=trained.accuracy,
        input_shape=trained.input_shape,
    )


@dataclass
class TrainedSegmenter:
    """A trained CI-scale DeepLabV3+ on the synthetic CamVid stand-in."""

    model: nn.Module
    dataset: object
    miou: float


_segmenter_cache: Dict[str, TrainedSegmenter] = {}


def ci_segmentation_model(epochs: int = 3, seed: int = 0) -> TrainedSegmenter:
    """A trained CI-scale DeepLabV3+ (cached per process)."""
    from repro.datasets import synthetic_camvid
    from repro.nn.optim import SGD

    key = f"{epochs}:{seed}"
    if key in _segmenter_cache:
        return _segmenter_cache[key]
    dataset = synthetic_camvid(height=32, width=32, num_classes=5,
                               train_count=10, test_count=4, seed=seed)
    model = models.deeplabv3plus(num_classes=dataset.num_classes,
                                 width_mult=0.125, seed=seed)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        order = rng.permutation(len(dataset.train_images))
        for start in range(0, len(order), 4):
            index = order[start : start + 4]
            optimizer.zero_grad()
            logits = model(nn.Tensor(dataset.train_images[index]))
            loss = nn.segmentation_cross_entropy(logits, dataset.train_masks[index])
            loss.backward()
            optimizer.step()
    model.eval()
    predictions = model(nn.Tensor(dataset.test_images)).numpy().argmax(axis=1)
    miou = nn.mean_iou(predictions, dataset.test_masks, dataset.num_classes)
    segmenter = TrainedSegmenter(model=model, dataset=dataset, miou=miou)
    _segmenter_cache[key] = segmenter
    return segmenter


def geometric_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))
