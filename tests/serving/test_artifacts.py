"""Artifact store: bundles, manifests, checksums, and round-trips."""

import json

import numpy as np
import pytest

from repro.core.reshape import from_matrices
from repro.core.serialize import payload_weight
from repro.serving import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactStore,
    rebuild_layer_weight,
)
from repro.serving.artifacts import MANIFEST_FILE, RESIDUAL_FILE, WEIGHTS_FILE

from tests.serving.conftest import FAST, build_model


class TestPublish:
    def test_bundle_layout(self, published, tmp_path):
        store, manifest, *_ = published
        bundle = store.root / manifest.name / manifest.version
        assert (bundle / MANIFEST_FILE).is_file()
        assert (bundle / WEIGHTS_FILE).is_file()
        assert (bundle / RESIDUAL_FILE).is_file()

    def test_manifest_accounting(self, published):
        _, manifest, _, report, _ = published
        assert manifest.payload_bytes == pytest.approx(
            report.storage.total_bits / 8, rel=0.15
        )
        assert manifest.dense_bytes == sum(
            spec.dense_bytes for spec in manifest.layers
        )
        assert manifest.bytes_saved > 0
        assert manifest.compression_rate == pytest.approx(
            report.compression_rate
        )

    def test_auto_versioning(self, store, compressed_model):
        model, report, config = compressed_model
        first = store.publish(report, config)
        second = store.publish(report, config)
        assert (first.version, second.version) == ("v1", "v2")
        assert store.latest_version(report.model_name) == "v2"

    def test_duplicate_version_rejected(self, store, compressed_model):
        model, report, config = compressed_model
        store.publish(report, config, version="v1")
        with pytest.raises(ArtifactError, match="already exists"):
            store.publish(report, config, version="v1")

    def test_listing(self, published):
        store, manifest, *_ = published
        assert store.models() == [manifest.name]
        assert store.versions(manifest.name) == [manifest.version]

    def test_missing_model_raises(self, store):
        with pytest.raises(ArtifactNotFoundError):
            store.latest_version("nope")
        with pytest.raises(ArtifactNotFoundError):
            store.manifest("nope")

    def test_failed_publish_leaves_no_bundle(self, store, compressed_model):
        """A mid-publish crash must not wedge auto-versioning."""
        model, report, config = compressed_model
        import repro.serving.artifacts as artifacts_mod

        original = artifacts_mod.write_payloads_npz

        def explode(*args, **kwargs):
            raise OSError("disk full")

        artifacts_mod.write_payloads_npz = explode
        try:
            with pytest.raises(OSError):
                store.publish(report, config)
        finally:
            artifacts_mod.write_payloads_npz = original
        assert store.versions(report.model_name) == []
        model_dir = store.root / report.model_name
        assert not model_dir.exists() or not any(model_dir.iterdir())
        # The next publish reuses v1 cleanly.
        assert store.publish(report, config).version == "v1"

    def test_unverified_load_skips_hash_pass(self, published, monkeypatch):
        store, manifest, *_ = published
        import repro.serving.artifacts as artifacts_mod

        calls = []
        monkeypatch.setattr(
            artifacts_mod,
            "_sha256",
            lambda path: calls.append(path) or "not-a-real-hash",
        )
        # verify=False never hashes; the default path does (and trips
        # on the stubbed hash).
        payloads = store.load_payloads(manifest.name, verify=False)
        assert calls == [] and payloads
        with pytest.raises(ArtifactCorruptionError):
            store.load_payloads(manifest.name)


class TestManifestRoundTrip:
    def test_json_round_trip(self, published):
        store, manifest, *_ = published
        reloaded = store.manifest(manifest.name, manifest.version)
        assert reloaded.to_json() == manifest.to_json()

    def test_layer_specs_cover_report(self, published):
        _, manifest, _, report, _ = published
        assert {spec.name for spec in manifest.layers} == {
            layer.name for layer in report.layers
        }
        for layer in report.layers:
            spec = manifest.layer(layer.name)
            assert spec.matrix_count == len(layer.decompositions)


class TestSerializeRoundTripThroughStore:
    """Satellite: save -> load -> rebuilt dense weights, plus corruption."""

    def test_rebuilt_weights_bitwise_equal_to_serialized_form(self, published):
        store, manifest, _, report, _ = published
        payloads = store.load_payloads(manifest.name)
        for layer in report.layers:
            spec = manifest.layer(layer.name)
            payload = payloads[layer.name]
            rebuilt = rebuild_layer_weight(payload, spec)
            # Bitwise-identical to decoding the packed matrices by hand
            # (reassembling the per-matrix DRAM images from the payload
            # arrays and scalar metadata) ...
            matrices = []
            for j, scalars in enumerate(payload.meta["matrices"]):
                matrices.append(payload_weight({
                    "index": payload.arrays[f"m{j}.index"],
                    "codes": payload.arrays[f"m{j}.codes"],
                    "basis": payload.arrays[f"m{j}.basis"],
                    "meta": np.array(
                        [scalars["p_min"], scalars["p_max"],
                         scalars["rows"], scalars["cols"]],
                        dtype=np.int32,
                    ),
                    "basis_scale": np.array([scalars["basis_scale"]]),
                }))
            reference = from_matrices(matrices, spec.plan).reshape(
                spec.weight_shape
            )
            np.testing.assert_array_equal(rebuilt, reference)
            # ... and equal to the layer_transform rebuild up to the
            # 8-bit basis quantization that serialization applies.
            dense = layer.rebuild_weight().reshape(spec.weight_shape)
            scale = max(np.abs(dense).max(), 1e-9)
            assert np.abs(rebuilt - dense).max() < 0.02 * scale + 1e-6

    def test_rebuilt_weights_match_installed_model_weights(self, published):
        store, manifest, model, report, _ = published
        payloads = store.load_payloads(manifest.name)
        modules = dict(model.named_modules())
        for spec in manifest.layers:
            installed = modules[spec.name].weight.data
            rebuilt = rebuild_layer_weight(payloads[spec.name], spec)
            scale = max(np.abs(installed).max(), 1e-9)
            assert np.abs(rebuilt - installed).max() < 0.02 * scale + 1e-6

    def test_corruption_detected(self, published):
        store, manifest, *_ = published
        weights = store.root / manifest.name / manifest.version / WEIGHTS_FILE
        blob = bytearray(weights.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        weights.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptionError, match="checksum"):
            store.load_payloads(manifest.name)

    def test_missing_file_detected(self, published):
        store, manifest, *_ = published
        bundle = store.root / manifest.name / manifest.version
        (bundle / RESIDUAL_FILE).unlink()
        with pytest.raises(ArtifactCorruptionError, match="missing"):
            store.verify(manifest.name)

    def test_unsupported_manifest_format(self, published):
        store, manifest, *_ = published
        path = store.root / manifest.name / manifest.version / MANIFEST_FILE
        data = json.loads(path.read_text())
        data["format"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactError, match="format"):
            store.manifest(manifest.name)


class TestResidualState:
    def test_residual_excludes_compressed_weights(self, published):
        store, manifest, model, report, _ = published
        residual = store.load_residual(manifest.name)
        compressed = {f"{layer.name}.weight" for layer in report.layers}
        assert compressed.isdisjoint(residual)
        # BN state must be there so serving can reconstruct the network.
        assert any("running_mean" in key for key in residual)

    def test_residual_optional(self, store, compressed_model):
        _, report, config = compressed_model
        manifest = store.publish(report, config)  # no model given
        assert store.load_residual(manifest.name) is None


class TestStorageWin:
    def test_bundle_smaller_than_dense_checkpoint(self, tmp_path):
        """Sparsity-heavy model: on-disk bundle beats the dense .npz."""
        from repro.core import SmartExchangeConfig, apply_smartexchange
        from repro import nn

        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 32, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(32),
            nn.ReLU(),
            nn.Conv2d(32, 64, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(64),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(64, 10, rng=rng),
        )
        dense_path = tmp_path / "dense.npz"
        np.savez(dense_path, **model.state_dict())

        config = SmartExchangeConfig(max_iterations=5,
                                     target_row_sparsity=0.7)
        _, report = apply_smartexchange(model, config, model_name="big")
        store = ArtifactStore(tmp_path / "store")
        manifest = store.publish(report, config, model=model)

        assert manifest.bundle_bytes < dense_path.stat().st_size
        assert manifest.payload_bytes < manifest.dense_bytes
