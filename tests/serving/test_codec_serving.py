"""One serving pipeline, many codecs: publish and serve every encoding.

The acceptance bar for the codec redesign: bundles published under at
least four distinct codecs (including ``dense`` and ``smartexchange``)
serve through both the offline ``predict`` path and the online
worker-pool path, with ``ServingStats`` reporting each bundle's
storage-vs-compute trade.
"""

import numpy as np
import pytest

from repro import nn
from repro.compression import (
    FP8Quantizer,
    LinearQuantizer,
    MagnitudePruner,
    Pow2Quantizer,
)
from repro.core import apply_smartexchange
from repro.serving import (
    ADMISSION_POLICIES,
    ArtifactStore,
    CostAwareBatchPolicy,
    InferenceEngine,
    ModelRegistry,
    StaticBatchPolicy,
)

from tests.serving.conftest import FAST, build_model


def publish_all(store: ArtifactStore):
    """One bundle per codec; returns {bundle name: mutated model}."""
    models = {}

    model = build_model(seed=0)
    _, report = apply_smartexchange(model, FAST, model_name="m-se")
    store.publish(report, FAST, model=model)
    models["m-se"] = model

    model = build_model(seed=0)
    store.publish_model(model, name="m-dense", codec="dense")
    models["m-dense"] = model

    for bundle, compressor in [
        ("m-quant", LinearQuantizer(8)),
        ("m-prune", MagnitudePruner(0.6)),
        ("m-pow2", Pow2Quantizer(4)),
        ("m-fp8", FP8Quantizer()),
    ]:
        model = build_model(seed=0)
        report = compressor.compress(model, bundle)
        store.publish_compressed(report, model=model)
        models[bundle] = model
    return models


EXPECTED_CODECS = {
    "m-se": "smartexchange",
    "m-dense": "dense",
    "m-quant": "quant-linear",
    "m-prune": "prune-csr",
    "m-pow2": "quant-pow2",
    "m-fp8": "quant-fp8",
}


@pytest.fixture(scope="module")
def codec_zoo(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("codec-zoo"))
    models = publish_all(store)
    return store, models


def direct_prediction(model: nn.Module, batch: np.ndarray) -> np.ndarray:
    model.eval()
    output = model(batch)
    return np.asarray(output.data if isinstance(output, nn.Tensor) else output)


class TestCodecZoo:
    def test_covers_at_least_four_codecs(self, codec_zoo):
        store, _ = codec_zoo
        codecs = {store.manifest(name).codec for name in store.models()}
        assert {"dense", "smartexchange"} <= codecs
        assert len(codecs) >= 4

    def test_manifests_record_their_codec(self, codec_zoo):
        store, _ = codec_zoo
        for bundle, codec in EXPECTED_CODECS.items():
            manifest = store.manifest(bundle)
            assert manifest.codec == codec
            assert all(spec.codec == codec for spec in manifest.layers)

    @pytest.mark.parametrize("bundle", sorted(EXPECTED_CODECS))
    def test_offline_predictions_match_compressed_model(self, codec_zoo, bundle):
        store, models = codec_zoo
        engine = InferenceEngine(
            build_model(seed=7), ModelRegistry(store).get(bundle)
        )
        batch = np.random.default_rng(1).normal(size=(4, 3, 8, 8))
        served = engine.predict(batch)
        direct = direct_prediction(models[bundle], batch)
        # The engine serves exactly what the (mutated) compressed model
        # computes; smartexchange additionally pays its 8-bit basis
        # quantization, every other codec stores its snap losslessly.
        atol = 5e-2 if bundle == "m-se" else 1e-5
        np.testing.assert_allclose(served, direct, atol=atol)

    @pytest.mark.parametrize("bundle", sorted(EXPECTED_CODECS))
    def test_online_pool_matches_offline(self, codec_zoo, bundle):
        store, _ = codec_zoo
        engine = InferenceEngine(
            build_model(seed=7),
            ModelRegistry(store).get(bundle),
            policy=StaticBatchPolicy(max_batch_size=4, max_wait_s=0.001),
        )
        samples = list(np.random.default_rng(2).normal(size=(6, 3, 8, 8)))
        offline = engine.predict_many(samples)
        engine.start(workers=2)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            online = [t.result(timeout=30.0) for t in tickets]
        finally:
            engine.stop()
        np.testing.assert_allclose(
            np.stack(online), np.stack(offline), rtol=0, atol=1e-12
        )

    def test_stats_report_per_codec_trade(self, codec_zoo):
        store, _ = codec_zoo
        batch = np.random.default_rng(3).normal(size=(2, 3, 8, 8))
        trades = {}
        for bundle in EXPECTED_CODECS:
            engine = InferenceEngine(
                build_model(seed=7), ModelRegistry(store).get(bundle)
            )
            engine.predict(batch)
            summary = engine.summary()
            assert summary["codec"] == EXPECTED_CODECS[bundle]
            assert summary["rebuild_rebuilds"] > 0
            assert summary["rebuilt_bytes_per_request"] > 0
            trades[bundle] = summary
        # dense is the no-trade baseline: full payload bytes, nothing
        # saved; every compressing codec stores strictly less.
        assert trades["m-dense"]["bundle_bytes_saved"] == 0
        for bundle in EXPECTED_CODECS:
            if bundle == "m-dense":
                continue
            assert trades[bundle]["bundle_payload_bytes"] < (
                trades["m-dense"]["bundle_payload_bytes"]
            )
            assert trades[bundle]["bundle_bytes_saved"] > 0

    @pytest.mark.parametrize("admission", sorted(ADMISSION_POLICIES))
    @pytest.mark.parametrize("bundle", sorted(EXPECTED_CODECS))
    def test_every_codec_serves_under_every_policy(
        self, codec_zoo, bundle, admission
    ):
        """The policy matrix: 6 codecs x 3 admission x 2 batch policies.

        A capacity-bounded cache (forcing real eviction/rejection
        decisions) must not change served outputs — offline under the
        static batch policy, online worker-pool under the cost-aware
        batch policy.
        """
        store, _ = codec_zoo
        registry = ModelRegistry(store)
        handle = registry.get(bundle)
        total = handle.total_dense_bytes
        samples = list(np.random.default_rng(5).normal(size=(6, 3, 8, 8)))
        reference = np.stack(
            InferenceEngine(build_model(seed=7), handle).predict_many(samples)
        )

        offline = InferenceEngine(
            build_model(seed=7),
            handle,
            policy=StaticBatchPolicy(max_batch_size=4, max_wait_s=0.001),
            cache_bytes=int(total * 0.6),
            admission=admission,
            cost_model=registry.cost_model,
        )
        np.testing.assert_allclose(
            np.stack(offline.predict_many(samples)), reference, atol=1e-12
        )
        assert offline.summary()["rebuild_policy"] == admission
        assert offline.summary()["batch_policy"] == "static"

        online = InferenceEngine(
            build_model(seed=7),
            handle,
            policy=CostAwareBatchPolicy(max_batch_size=4, max_wait_s=0.01),
            cache_bytes=int(total * 0.6),
            admission=admission,
            cost_model=registry.cost_model,
        )
        online.start(workers=2)
        try:
            tickets = [online.submit(sample) for sample in samples]
            rows = [t.result(timeout=30.0) for t in tickets]
        finally:
            online.stop()
        np.testing.assert_allclose(np.stack(rows), reference, atol=1e-12)
        summary = online.summary()
        assert summary["batch_policy"] == "cost-aware"
        assert "cost-aware" in summary["per_policy"]
        curve = online.cost_curve()
        assert curve["policy"] == admission
        assert curve["rebuild_seconds"] >= 0

    def test_lazy_loads_only_touched_layers(self, codec_zoo):
        store, _ = codec_zoo
        payloads = store.load_payloads("m-quant")
        assert payloads.loaded_layers == []
        names = sorted(payloads)
        first = names[0]
        payloads[first]
        assert payloads.loaded_layers == [first]
        # Materializing pulls the rest.
        assert set(payloads.materialize()) == set(names)
        assert payloads.loaded_layers == names
