"""Table I: unit energy per 8-bit datum/operation (28 nm)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware.energy import DEFAULT_ENERGY_MODEL

PAPER_VALUES = {
    "DRAM": 100.0,
    "SRAM (2KB)": 1.36,
    "SRAM (512KB)": 2.45,
    "MAC": 0.143,
    "multiplier": 0.124,
    "adder": 0.019,
}


def run() -> ExperimentResult:
    result = ExperimentResult("Table I — unit energy per 8-bit (pJ)")
    for operation, energy in DEFAULT_ENERGY_MODEL.table1_rows():
        result.rows.append({
            "operation": operation,
            "energy_pj": energy,
            "paper_pj": PAPER_VALUES.get(operation, float("nan")),
        })
    result.notes = (
        "Model constants are taken directly from the paper's Table I; the "
        "SRAM entries interpolate the published 1.36-2.45 pJ range by "
        "macro capacity."
    )
    return result
