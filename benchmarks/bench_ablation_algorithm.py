"""Bench: algorithm design-knob ablations (basis size / ce bits / slicing)."""

from benchmarks.conftest import run_and_print
from repro.experiments import ablation_algorithm


def bench_ablation_algorithm(benchmark):
    result = run_and_print(benchmark, ablation_algorithm.run)
    assert len(result.rows) == 11
