"""Bench: batched vs unbatched, worker-pool scaling, and the codec axis.

Publishes a compressed CNN to a temporary artifact store, then serves
the same synthetic request stream through
:class:`repro.serving.InferenceEngine` several ways — one-request-per-
forward (unbatched baseline), coalesced under the engine's batch policy
(offline), and through the online worker pool at a sweep of worker
counts — and reports requests/s (wall-clock), realized parallelism, and
the rebuild-cache hit rate.

``--codec`` picks the weight codec the bundle is published under
(``smartexchange`` by default) so every encoding in the registry gets
the identical treatment; passing a comma-separated list (or ``all``)
instead runs the apples-to-apples codec comparison — same requests,
same pool — reporting per-codec throughput, payload bytes, and the
realized storage-vs-compute trade.

``--policy`` runs the admission-policy comparison instead: a *mixed*
bundle (smartexchange convs + a quant-linear head) is served through a
capacity-bounded rebuild cache under each admission policy — same
requests, same pool, same capacity — reporting total rebuild seconds,
hit rate, and rejected/evicted counts; ``--policy all`` sweeps
``lru`` / ``cost-aware`` / ``size-aware`` plus a cost-aware-batching
row, and asserts the cost-aware policy pays fewer rebuild seconds than
LRU (the point of the cost model).

``--tiers`` runs the cache-hierarchy comparison instead: the same
mixed bundle is served through the identical (deliberately tight)
dense-RAM budget with ``cost-aware`` admission, once with no lower
tiers, once per tier stack (``compressed``; ``compressed,disk``) —
reporting rebuild seconds and where accesses were served from; the
3-tier row must pay strictly less rebuild compute than the single-tier
row at the equal dense budget.

``--simulate <trace.jsonl>`` replays a previously recorded trace (see
``--trace-out``) through the offline :class:`repro.serving.
CacheSimulator` under several candidate tier configs — no fleet, no
worker pool — and asserts each report carries exactly the live
engine's stats schema.

``--routing`` runs the multi-model host comparison instead: two
interchangeable bundles of the same network (``smartexchange`` and
``quant-linear``) are deployed behind one :class:`ServingHost`, the
smartexchange engine is pre-warmed, and the identical request trace is
routed under each routing policy — reporting per-engine routed counts
and total rebuild seconds; ``--routing all`` sweeps ``round-robin`` /
``least-loaded`` / ``cost-aware`` and asserts cost-aware routing pays
fewer rebuild seconds than round-robin (it sends the cold-cache-heavy
trace to the warm engine instead of splitting it).

``--backend`` picks the worker-pool execution backend for the online
sweep (``thread`` by default, ``process`` for worker processes over
the shared-memory payload arena); ``--backend all`` (or a comma-
separated pair) runs the thread-vs-process comparison instead — the
identical bundle and request stream served through each backend at
every worker count, with a long steady-state window so the numbers
reflect the pipelined process pool rather than its spawn cost.  On a
GIL-bound host the process rows overtake the thread rows as workers
grow, which the sweep asserts at the 4-worker point.

``--trace-out`` / ``--metrics-out`` / ``--json-out`` turn the
observability layer on for the throughput run: one JSONL record per
request (replayable with :class:`repro.observability.TraceReader`), a
Prometheus text-format metrics page, and a JSON result document whose
``phases`` block carries span-derived per-phase (queue / rebuild /
compute) p50/p95 latencies.

Runs standalone (``python benchmarks/bench_serving_throughput.py``,
``--smoke`` for a CI-sized run, ``--workers 1,2,4`` to pick the sweep)
or under pytest-benchmark like the other benches.
"""

import argparse
import dataclasses
import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import nn
from repro.codecs import SmartExchangeCodec, get_codec
from repro.compression import (
    FP8Quantizer,
    LinearQuantizer,
    MagnitudePruner,
    Pow2Quantizer,
)
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.experiments.common import ExperimentResult
from repro.observability import Observability, TraceRecorder
from repro.serving import (
    ADMISSION_POLICIES,
    ROUTING_POLICIES,
    ArtifactStore,
    CostAwareBatchPolicy,
    InferenceEngine,
    ModelRegistry,
    RebuildEngine,
    ServingHost,
    StaticBatchPolicy,
    simulate_policies,
)

REQUESTS = 64
BATCH_SIZE = 16
IMAGE_SHAPE = (3, 16, 16)
WORKER_SWEEP = (1, 2, 4)
BACKEND_SWEEP = ("thread", "process")
# The backend comparison needs a long steady-state window: process
# pools pay a per-pool spawn/attach cost and win on per-batch cost, so
# short streams measure startup, not serving.
BACKEND_REQUESTS = 1024
POLICY_SWEEP = ("lru", "cost-aware", "size-aware")
ROUTING_SWEEP = ("round-robin", "least-loaded", "cost-aware")
# Fraction of the model's dense bytes the bounded rebuild cache holds
# in the policy sweep: small enough that every pass must evict or
# reject something, big enough that the largest layer still fits.
POLICY_CAPACITY_FRACTION = 0.95
# The tier sweep squeezes harder: at 0.6 the big conv does not fit the
# dense tier at all, so a single-tier cache *must* re-decode it every
# pass — exactly the miss traffic the lower tiers exist to absorb.
TIER_CAPACITY_FRACTION = 0.6
TIER_SWEEP = (
    ("dense-only", None),
    ("2-tier", "compressed"),
    ("3-tier", "compressed,disk"),
)
# Candidate configs the --simulate mode replays a recorded trace under.
SIMULATE_CONFIGS = (
    {"name": "dense-lru", "admission": "lru"},
    {"name": "dense-cost", "admission": "cost-aware"},
    {
        "name": "3-tier-cost",
        "admission": "cost-aware",
        "tiers": "compressed,disk",
    },
)

# How each codec's bundle gets produced for "bench-cnn".
BENCH_CODECS = (
    "smartexchange",
    "dense",
    "quant-linear",
    "quant-pow2",
    "quant-fp8",
    "prune-csr",
)
_BASELINE_COMPRESSORS = {
    "quant-linear": lambda: LinearQuantizer(8),
    "quant-pow2": lambda: Pow2Quantizer(4),
    "quant-fp8": lambda: FP8Quantizer(),
    "prune-csr": lambda: MagnitudePruner(0.6),
}


def _build_model(seed: int) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


def _publish(store: ArtifactStore, codec: str) -> None:
    model = _build_model(seed=0)
    if codec == "smartexchange":
        config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
        _, report = apply_smartexchange(model, config, model_name="bench-cnn")
        store.publish(report, config, model=model)
    elif codec == "dense":
        store.publish_model(model, name="bench-cnn", codec="dense")
    elif codec in _BASELINE_COMPRESSORS:
        report = _BASELINE_COMPRESSORS[codec]().compress(model, "bench-cnn")
        store.publish_compressed(report, name="bench-cnn", model=model)
    else:
        raise SystemExit(
            f"unknown --codec {codec!r}; pick from {', '.join(BENCH_CODECS)}"
        )


def _make_engine(
    batch_size: int,
    codec: str = "smartexchange",
    observability: Observability = None,
) -> InferenceEngine:
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish(store, codec)
    registry = ModelRegistry(store)
    kwargs = {}
    if observability is not None:
        kwargs["observability"] = observability
    return InferenceEngine(
        _build_model(seed=1),
        registry.get("bench-cnn"),
        policy=StaticBatchPolicy(max_batch_size=batch_size, max_wait_s=0.001),
        **kwargs,
    )


def _publish_mixed(store: ArtifactStore) -> None:
    """The policy-sweep bundle: expensive convs, cheap head.

    Convolutions are encoded with the paper's ``smartexchange`` codec
    (a rebuild decodes nibble codes and folds matrices — slow per
    byte); the classifier head with ``quant-linear`` (a rebuild is one
    multiply — fast).  An admission policy that can tell them apart
    has something to exploit.
    """
    model = _build_model(seed=0)
    config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
    se, ql = SmartExchangeCodec(config), get_codec("quant-linear")
    payloads = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            payloads[name] = se.encode(module.weight.data)
        elif isinstance(module, nn.Linear):
            payloads[name] = ql.encode(module.weight.data)
    store.publish_payloads(payloads, name="bench-cnn", model=model)


def _make_policy_engine(
    registry: ModelRegistry,
    admission: str,
    batch_policy,
) -> InferenceEngine:
    handle = registry.get("bench-cnn")
    return InferenceEngine(
        _build_model(seed=1),
        handle,
        policy=batch_policy,
        cache_bytes=int(handle.total_dense_bytes * POLICY_CAPACITY_FRACTION),
        admission=admission,
        cost_model=registry.cost_model,
    )


def _row(engine: InferenceEngine, mode: str, workers: int) -> dict:
    summary = engine.summary()
    busy, wall = summary["busy_seconds"], summary["wall_seconds"]
    return {
        "mode": mode,
        "codec": summary["codec"],
        "workers": workers,
        "requests": summary["requests"],
        "mean_batch": summary["mean_batch_size"],
        "throughput_rps": summary["throughput_rps"],
        # wall is the pool window; offline rows (no workers) are a
        # single thread, i.e. parallelism 1 by construction.
        "parallelism": busy / wall if wall else 1.0,
        "p50_ms": summary["request_latency_p50_ms"],
        "cache_hit_rate": summary["rebuild_hit_rate"],
    }


def run(
    requests: int = REQUESTS,
    worker_sweep=WORKER_SWEEP,
    codec: str = "smartexchange",
    observability: Observability = None,
    backend: str = "thread",
) -> ExperimentResult:
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))

    rows = []
    for label, batched in (("offline-unbatched", False), ("offline-batched", True)):
        engine = _make_engine(BATCH_SIZE, codec)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.predict_many(samples, batched=batched)
        rows.append(_row(engine, label, workers=0))

    for workers in worker_sweep:
        # Only the online sweep is traced, so the span-derived phase
        # breakdown describes the worker-pool path.
        engine = _make_engine(BATCH_SIZE, codec, observability=observability)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.start(workers=workers, backend=backend)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        rows.append(_row(engine, f"online-w{workers}", workers=workers))

    unbatched, batched = (row["throughput_rps"] for row in rows[:2])
    online = {row["workers"]: row["throughput_rps"] for row in rows[2:]}
    scaling = online[max(online)] / online[min(online)] if len(online) > 1 else 1.0
    return ExperimentResult(
        experiment=f"serving throughput (batching + worker pool, {codec})",
        rows=rows,
        notes=(
            f"codec {codec}: batching speedup {batched / unbatched:.2f}x; "
            f"worker-pool speedup {scaling:.2f}x at {max(online)} vs "
            f"{min(online)} worker(s) over {requests} requests at max "
            f"batch {BATCH_SIZE}"
        ),
    )


def _backend_cell(store_root: str, backend: str, workers: int, requests: int) -> dict:
    """Measure one (backend, workers) cell against a published store.

    Runs in a *fresh* interpreter (see :func:`run_backend_sweep`), and
    runs the full pool lifecycle **twice** — build engine, start, warm,
    measure, stop — reporting the second round.  The first pool a fresh
    interpreter forks pays one-time host costs its own warm-up window
    cannot amortize (allocator and page-cache population, copy-on-write
    faults against a never-touched parent heap); round two forks from a
    parent whose pages are hot and measures steady-state serving, which
    is the quantity the sweep compares.  Within a round the pool is
    warmed past its spawn/attach/first-install window (two full rounds
    of batches per worker) and the stats window reset before measuring.
    Samples are independent per-request arrays — the realistic arrival
    shape — created after the pool is up.
    """
    store = ArtifactStore(store_root)
    registry = ModelRegistry(store)
    handle = registry.get("bench-cnn")

    def one_round() -> dict:
        # A fresh frame per round: the prior round's request arrays are
        # freed before this round's pool forks, so workers inherit a
        # minimal parent image.
        engine = InferenceEngine(
            _build_model(seed=1),
            handle,
            policy=StaticBatchPolicy(
                max_batch_size=BATCH_SIZE, max_wait_s=0.002
            ),
            cost_model=registry.cost_model,
        )
        engine.start(workers=workers, backend=backend)
        try:
            rng = np.random.default_rng(3)
            samples = [rng.normal(size=IMAGE_SHAPE) for _ in range(requests)]
            warm = samples[: 2 * workers * BATCH_SIZE]
            for ticket in [engine.submit(s) for s in warm]:
                ticket.result(timeout=60.0)
            engine.stats.reset()
            tickets = [engine.submit(s) for s in samples]
            for ticket in tickets:
                ticket.result(timeout=120.0)
            return engine.summary()
        finally:
            engine.stop()

    one_round()
    summary = one_round()
    registry.close()
    return {
        "backend": backend,
        "workers": workers,
        "requests": summary["requests"],
        "mean_batch": summary["mean_batch_size"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": summary["request_latency_p50_ms"],
        "p90_ms": summary["request_latency_p90_ms"],
        "respawns": summary.get("worker_respawns", 0),
    }


def run_backend_sweep(
    backend_list=BACKEND_SWEEP,
    requests: int = BACKEND_REQUESTS,
    worker_sweep=WORKER_SWEEP,
    reps: int = 3,
) -> ExperimentResult:
    """Same bundle and request stream, one execution backend per cell.

    Every cell serves the identical smartexchange bundle through the
    identical queue/batch policy; only ``start(backend=...)`` differs,
    so cells compare steady-state serving cost: the thread cells pay
    GIL contention as workers grow, the process cells pay pickling and
    a pipe round-trip per batch but run the forward pass outside the
    parent's interpreter lock.

    Two measurement disciplines keep the comparison honest on a noisy
    shared host.  First, every cell runs in a *fresh interpreter*
    (the bench re-invokes itself per cell): a long-lived parent's heap
    history — hugepage collapse, allocator fragmentation, pages the
    forked workers must copy-on-write — quietly taxes later process
    pools by tens of percent, which sequential in-process cells cannot
    distinguish from a real backend difference.  Second, cells are
    measured ``reps`` times with the backends interleaved within each
    rep and report their best window, so both backends sample the same
    weather and the windows a noisy neighbor stomped on are discarded.
    Third, each cell runs its pool lifecycle twice and reports the
    second (see :func:`_backend_cell`), so one-time interpreter and
    page-cache warm-up is paid outside the measured window.
    """
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish(store, "smartexchange")

    best = {}
    for workers in worker_sweep:
        for _ in range(reps):
            for backend in backend_list:
                proc = subprocess.run(
                    [
                        sys.executable,
                        str(Path(__file__).resolve()),
                        "--cell",
                        f"{backend}:{workers}:{requests}",
                        "--cell-store",
                        root,
                    ],
                    capture_output=True,
                    text=True,
                    timeout=600,
                )
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"backend cell {backend} w{workers} failed:\n"
                        f"{proc.stdout}\n{proc.stderr}"
                    )
                row = json.loads(proc.stdout.strip().splitlines()[-1])
                cell = (backend, workers)
                held = best.get(cell)
                if (
                    held is None
                    or row["throughput_rps"] > held["throughput_rps"]
                ):
                    best[cell] = row
    rows = [
        best[(backend, workers)]
        for workers in worker_sweep
        for backend in backend_list
    ]

    cells = {
        (row["backend"], row["workers"]): row["throughput_rps"]
        for row in rows
    }
    notes = (
        f"identical smartexchange bundle and {requests}-request stream "
        f"per cell, max batch {BATCH_SIZE}, warmed and stats-reset "
        f"before measuring; best of {reps} interleaved windows per cell"
    )
    peak = max(worker_sweep)
    thread_peak = cells.get(("thread", peak))
    process_peak = cells.get(("process", peak))
    if thread_peak and process_peak:
        notes += (
            f"; at {peak} workers the process backend serves "
            f"{process_peak / thread_peak:.2f}x the thread backend's "
            f"throughput"
        )
    return ExperimentResult(
        experiment="serving throughput across execution backends",
        rows=rows,
        notes=notes,
    )


def run_codec_sweep(
    codec_list=BENCH_CODECS, requests: int = REQUESTS, workers: int = 2
) -> ExperimentResult:
    """Same request stream, one bundle per codec: the realized trade."""
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))
    rows = []
    for codec in codec_list:
        engine = _make_engine(BATCH_SIZE, codec)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.start(workers=workers)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        summary = engine.summary()
        rows.append({
            "codec": summary["codec"],
            "throughput_rps": summary["throughput_rps"],
            "p50_ms": summary["request_latency_p50_ms"],
            "payload_bytes": summary["bundle_payload_bytes"],
            "dense_bytes": summary["bundle_dense_bytes"],
            "bytes_saved": summary["bundle_bytes_saved"],
            "rebuild_ms": summary["rebuild_rebuild_seconds"] * 1e3,
            "cache_hit_rate": summary["rebuild_hit_rate"],
        })
    dense = next(r for r in rows if r["codec"] == "dense") if any(
        r["codec"] == "dense" for r in rows
    ) else None
    notes = f"{requests} requests through a {workers}-worker pool per codec"
    if dense is not None:
        best = max(rows, key=lambda r: r["bytes_saved"])
        notes += (
            f"; best storage trade: {best['codec']} stores "
            f"{best['payload_bytes']} vs dense {dense['payload_bytes']} bytes"
        )
    return ExperimentResult(
        experiment="serving throughput across weight codecs", rows=rows,
        notes=notes,
    )


def run_policy_sweep(
    policy_list=POLICY_SWEEP, requests: int = REQUESTS, workers: int = 2
) -> ExperimentResult:
    """Same mixed-codec bundle and request stream, one admission policy
    per row, plus a cost-aware-batching row.

    Every engine gets the identical capacity-bounded cache (too small
    to hold all layers, so each forward pass forces a real
    eviction/rejection decision), a warmup pass, and a stats reset —
    the rows compare steady-state rebuild seconds, the cost the paper
    says should drive the decision.
    """
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish_mixed(store)
    registry = ModelRegistry(store)

    configurations = [
        (admission, StaticBatchPolicy(max_batch_size=BATCH_SIZE, max_wait_s=0.001))
        for admission in policy_list
    ]
    if "cost-aware" in policy_list:
        configurations.append(
            (
                "cost-aware",
                CostAwareBatchPolicy(max_batch_size=BATCH_SIZE, max_wait_s=0.01),
            )
        )

    rows = []
    for admission, batch_policy in configurations:
        engine = _make_policy_engine(registry, admission, batch_policy)
        engine.predict_many(samples[:BATCH_SIZE])  # warm to steady state
        engine.stats.reset()
        engine.rebuild.reset_stats()
        engine.start(workers=workers)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        summary = engine.summary()
        rows.append({
            "admission": admission,
            "batching": summary["batch_policy"],
            "requests": summary["requests"],
            "throughput_rps": summary["throughput_rps"],
            "mean_batch": summary["mean_batch_size"],
            "rebuild_s": summary["rebuild_rebuild_seconds"],
            "hit_rate": summary["rebuild_hit_rate"],
            "rejected": summary["rebuild_rejected"],
            "evictions": summary["rebuild_evictions"],
            "est_saved_s": summary["rebuild_est_seconds_saved"],
        })

    by_admission = {
        (row["admission"], row["batching"]): row["rebuild_s"] for row in rows
    }
    notes = (
        f"mixed bundle (smartexchange convs + quant-linear head), "
        f"{requests} requests, {workers}-worker pool, cache at "
        f"{POLICY_CAPACITY_FRACTION:.0%} of dense bytes"
    )
    lru = by_admission.get(("lru", "static"))
    cost = by_admission.get(("cost-aware", "static"))
    if lru is not None and cost is not None:
        notes += (
            f"; cost-aware pays {cost:.4f}s of rebuild vs lru {lru:.4f}s "
            f"({lru / max(cost, 1e-9):.1f}x less)"
        )
    return ExperimentResult(
        experiment="serving rebuild cost across admission policies",
        rows=rows,
        notes=notes,
    )


def run_tier_sweep(
    tier_list=TIER_SWEEP, requests: int = REQUESTS, workers: int = 2
) -> ExperimentResult:
    """Same mixed bundle, same tight dense budget, one tier stack per
    row — the marginal value of each level of the hierarchy.

    Every row serves with ``cost-aware`` admission on an identical
    dense-RAM budget (too small for the big conv, so the single-tier
    row re-decodes it every pass); only the tiers below differ.  Rows
    compare steady-state rebuild seconds and where accesses landed.
    """
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish_mixed(store)
    registry = ModelRegistry(store)

    rows = []
    for label, tiers in tier_list:
        handle = registry.get("bench-cnn")
        engine = InferenceEngine(
            _build_model(seed=1),
            handle,
            policy=StaticBatchPolicy(
                max_batch_size=BATCH_SIZE, max_wait_s=0.001
            ),
            cache_bytes=int(
                handle.total_dense_bytes * TIER_CAPACITY_FRACTION
            ),
            admission="cost-aware",
            cost_model=registry.cost_model,
            tiers=tiers,
        )
        engine.predict_many(samples[:BATCH_SIZE])  # warm to steady state
        engine.stats.reset()
        engine.rebuild.reset_stats()
        engine.start(workers=workers)
        try:
            tickets = [engine.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            engine.stop()
        summary = engine.summary()
        served = engine.rebuild.stats.tier_hit_counts()
        rows.append({
            "config": label,
            "tiers": tiers or "(none)",
            "requests": summary["requests"],
            "throughput_rps": summary["throughput_rps"],
            "rebuild_s": summary["rebuild_rebuild_seconds"],
            "rebuilds": summary["rebuild_rebuilds"],
            "dense_hits": served.get("dense-ram", summary["rebuild_hits"]),
            "tier_hits": sum(
                count for tier, count in served.items()
                if tier not in ("dense-ram", "rebuild")
            ),
            "hit_rate": summary["rebuild_hit_rate"],
        })
        engine.close()

    by_config = {row["config"]: row["rebuild_s"] for row in rows}
    notes = (
        f"mixed bundle, cost-aware admission, dense budget at "
        f"{TIER_CAPACITY_FRACTION:.0%} of dense bytes (the big conv "
        f"cannot stay resident), {requests} requests, {workers}-worker "
        f"pool"
    )
    flat, deep = by_config.get("dense-only"), by_config.get("3-tier")
    if flat is not None and deep is not None:
        notes += (
            f"; 3-tier pays {deep:.4f}s of rebuild vs single-tier "
            f"{flat:.4f}s at the same dense-RAM budget"
        )
    return ExperimentResult(
        experiment="serving rebuild cost across cache-tier hierarchies",
        rows=rows,
        notes=notes,
    )


def run_simulation(
    trace_path: str, configs=SIMULATE_CONFIGS
) -> ExperimentResult:
    """Replay a recorded trace through the offline simulator under
    candidate tier configs; assert live-schema parity for every report.

    Republishes the deterministic throughput bundle (the trace was
    recorded against it), replays the schedule through
    :func:`repro.serving.simulate_policies`, and checks each report's
    stats dict has exactly the key set a live engine with the same
    config would export — the contract that makes offline sweeps
    trustworthy stand-ins for live runs.
    """
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish(store, "smartexchange")
    registry = ModelRegistry(store)
    handle = registry.get("bench-cnn")
    capacity = int(handle.total_dense_bytes * TIER_CAPACITY_FRACTION)
    configs = [
        {"capacity_bytes": capacity, **dict(config)} for config in configs
    ]
    reports = simulate_policies(
        str(trace_path), handle, configs=configs, model="bench-cnn"
    )
    rows = []
    for config, report in zip(configs, reports):
        live = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=config.get("capacity_bytes"),
            policy=config.get("admission"),
            cost_model=registry.cost_model,
            tiers=config.get("tiers"),
        )
        live_schema = set(live.stats.as_dict())
        assert set(report.stats) == live_schema, (
            f"simulated stats schema diverged from the live engine's "
            f"for {report.name!r}: {set(report.stats) ^ live_schema}"
        )
        live.close()
        served = report.tier_hit_counts
        rows.append({
            "config": report.name,
            "admission": report.admission,
            "tiers": ",".join(report.tiers) or "(none)",
            "requests": report.requests,
            "batches": report.batches,
            "sim_rebuild_s": report.rebuild_seconds,
            "rebuilds": report.stats["rebuilds"],
            "tier_hits": sum(
                count for tier, count in served.items()
                if tier not in ("dense-ram", "rebuild")
            ),
            "hit_rate": report.hit_rate,
        })
    return ExperimentResult(
        experiment="offline tier-policy simulation over a recorded trace",
        rows=rows,
        notes=(
            f"replayed {rows[0]['requests'] if rows else 0} requests from "
            f"{trace_path} against {len(configs)} candidate configs; every "
            f"report matches the live stats schema"
        ),
    )


def _publish_interchangeable(store: ArtifactStore) -> None:
    """Two bundles of the *same* network for the routing sweep.

    ``bench-cnn-se`` stores the paper's {B, Ce, index} decomposition (a
    rebuild is expensive per byte); ``bench-cnn-ql`` stores the same
    weights under int8 linear quantization (a rebuild is one multiply).
    A host fronting both can answer any request from either engine —
    exactly the arbitration cost-aware routing exists for.
    """
    se_model = _build_model(seed=0)
    config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
    _, report = apply_smartexchange(se_model, config, model_name="bench-cnn-se")
    store.publish(report, config, model=se_model)
    ql_model = _build_model(seed=0)
    q_report = LinearQuantizer(8).compress(ql_model, "bench-cnn-ql")
    store.publish_compressed(q_report, model=ql_model)


def run_routing_sweep(
    routing_list=ROUTING_SWEEP, requests: int = REQUESTS, workers: int = 2
) -> ExperimentResult:
    """Same two-engine fleet and request trace, one routing policy per
    row.

    Every row gets an identical fleet: the smartexchange engine pre-
    warmed (its rebuild cache full, stats reset to steady state), the
    quant-linear engine stone cold, a fresh registry/cost model.  The
    trace is unpinned — any engine may answer — so the routing policy
    alone decides who pays rebuild compute: round-robin splits the
    trace and forces the cold engine to install everything, while
    cost-aware reads ``estimated_install_seconds()`` and drains the
    trace to the warm engine.
    """
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(requests, *IMAGE_SHAPE)))
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    _publish_interchangeable(store)

    rows = []
    for routing in routing_list:
        registry = ModelRegistry(store)
        host = ServingHost(registry, routing=routing)
        batch = lambda: StaticBatchPolicy(
            max_batch_size=BATCH_SIZE, max_wait_s=0.001
        )
        warm = host.deploy("bench-cnn-se", _build_model(seed=1), policy=batch())
        host.deploy("bench-cnn-ql", _build_model(seed=1), policy=batch())
        warm.rebuild.warm()
        warm.rebuild.reset_stats()
        host.start(workers=workers)
        try:
            tickets = [host.submit(sample) for sample in samples]
            for ticket in tickets:
                ticket.result(timeout=60.0)
        finally:
            host.stop()
        summary = host.summary()
        routed = summary["routed_by_engine"]
        rows.append({
            "routing": routing,
            "requests": summary["requests"],
            "routed_warm": routed.get("bench-cnn-se:v1", 0),
            "routed_cold": routed.get("bench-cnn-ql:v1", 0),
            "rebuild_s": summary["rebuild_seconds"],
            "hit_rate": summary["rebuild_hit_rate"],
            "throughput_rps": sum(
                s["throughput_rps"] for s in summary["per_engine"].values()
            ),
        })

    by_routing = {row["routing"]: row["rebuild_s"] for row in rows}
    notes = (
        f"two interchangeable bundles (smartexchange warm, quant-linear "
        f"cold), {requests} unpinned requests, {workers} worker(s) per "
        f"engine"
    )
    rr, cost = by_routing.get("round-robin"), by_routing.get("cost-aware")
    if rr is not None and cost is not None:
        notes += (
            f"; cost-aware pays {cost:.4f}s of rebuild vs round-robin "
            f"{rr:.4f}s"
        )
    return ExperimentResult(
        experiment="serving rebuild cost across routing policies",
        rows=rows,
        notes=notes,
    )


def bench_serving_throughput(benchmark):
    from benchmarks.conftest import run_and_print

    result = run_and_print(benchmark, run)
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0]  # batched >= unbatched
    hit_rates = result.column("cache_hit_rate")
    assert all(rate > 0 for rate in hit_rates)
    assert all(rate > 0 for rate in result.column("throughput_rps"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: fewer requests, 1- and 2-worker sweep only",
    )
    parser.add_argument(
        "--workers",
        type=lambda text: tuple(int(n) for n in text.split(",")),
        default=None,
        help="comma-separated worker counts to sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--codec",
        default="smartexchange",
        help=(
            "weight codec to publish and serve (one of "
            f"{', '.join(BENCH_CODECS)}); a comma-separated list or "
            "'all' runs the cross-codec comparison instead"
        ),
    )
    parser.add_argument(
        "--cell",
        default=None,
        help=argparse.SUPPRESS,  # internal: one backend-sweep cell
    )
    parser.add_argument(
        "--cell-store",
        default=None,
        help=argparse.SUPPRESS,  # internal: published store for --cell
    )
    parser.add_argument(
        "--backend",
        default="thread",
        help=(
            "worker-pool execution backend for the online sweep "
            "('thread' or 'process'); a comma-separated pair or 'all' "
            "runs the thread-vs-process backend comparison instead"
        ),
    )
    parser.add_argument(
        "--policy",
        default=None,
        help=(
            "run the admission-policy comparison on a mixed-codec "
            "bundle instead: a policy name (one of "
            f"{', '.join(POLICY_SWEEP)}), a comma-separated list, or "
            "'all'"
        ),
    )
    parser.add_argument(
        "--tiers",
        default=None,
        help=(
            "run the cache-tier hierarchy comparison instead: 'all' "
            "for the dense-only / 2-tier / 3-tier sweep, or a "
            "comma-separated tier spec (e.g. 'compressed,disk') to "
            "pit one stack against the dense-only baseline"
        ),
    )
    parser.add_argument(
        "--simulate",
        default=None,
        metavar="TRACE",
        help=(
            "replay a recorded request trace (see --trace-out) through "
            "the offline CacheSimulator under candidate tier configs "
            "instead of serving live traffic"
        ),
    )
    parser.add_argument(
        "--routing",
        default=None,
        help=(
            "run the multi-model host comparison instead: a routing "
            f"policy name (one of {', '.join(ROUTING_SWEEP)}), a "
            "comma-separated list, or 'all'"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "record one JSONL line per served request (replayable with "
            "repro.observability.TraceReader) during the throughput run"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the Prometheus text-format metrics page here",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help=(
            "write the result (rows, notes, span-derived per-phase "
            "latencies) as a JSON document here"
        ),
    )
    args = parser.parse_args()
    if args.cell is not None:
        backend, workers, cell_requests = args.cell.split(":")
        row = _backend_cell(
            args.cell_store, backend, int(workers), int(cell_requests)
        )
        print(json.dumps(row))
        return
    requests = 16 if args.smoke else REQUESTS
    sweep = args.workers or ((1, 2) if args.smoke else WORKER_SWEEP)

    backend_list = (
        BACKEND_SWEEP if args.backend == "all"
        else tuple(args.backend.split(","))
    )
    unknown = set(backend_list) - {"thread", "process"}
    if unknown:
        raise SystemExit(
            f"unknown --backend {sorted(unknown)}; pick from thread, process"
        )
    if len(backend_list) > 1:
        backend_requests = 256 if args.smoke else BACKEND_REQUESTS
        result = run_backend_sweep(
            backend_list, requests=backend_requests, worker_sweep=sweep
        )
        print(result.as_table())
        print(result.notes)
        assert all(
            row["requests"] == backend_requests for row in result.rows
        ), "a backend dropped requests"
        cells = {
            (row["backend"], row["workers"]): row["throughput_rps"]
            for row in result.rows
        }
        peak = max(sweep)
        # Short smoke windows measure pool spawn, not steady state, so
        # the GIL-bound crossover is only asserted on the full stream.
        if backend_requests >= 512 and ("process", peak) in cells:
            assert cells[("process", peak)] > cells[("thread", peak)], (
                f"the process backend did not beat the thread backend "
                f"at {peak} workers: "
                f"{cells[('process', peak)]:.1f} vs "
                f"{cells[('thread', peak)]:.1f} rps"
            )
        return

    if args.simulate is not None:
        if not Path(args.simulate).exists():
            raise SystemExit(
                f"--simulate: no trace at {args.simulate!r}; record one "
                f"first with --trace-out"
            )
        result = run_simulation(args.simulate)
        print(result.as_table())
        print(result.notes)
        assert all(
            row["requests"] > 0 for row in result.rows
        ), "the simulator replayed an empty schedule"
        counts = {row["requests"] for row in result.rows}
        assert len(counts) == 1, (
            f"configs disagreed on the request count: {counts}"
        )
        return

    if args.tiers is not None:
        tier_list = (
            TIER_SWEEP if args.tiers == "all"
            else (("dense-only", None), (args.tiers, args.tiers))
        )
        result = run_tier_sweep(
            tier_list, requests=requests, workers=max(sweep)
        )
        print(result.as_table())
        print(result.notes)
        assert all(
            row["requests"] == requests for row in result.rows
        ), "a tier config dropped requests"
        rebuild = {row["config"]: row["rebuild_s"] for row in result.rows}
        if args.tiers == "all":
            assert rebuild["3-tier"] < rebuild["dense-only"], (
                "the 3-tier hierarchy did not pay strictly less rebuild "
                "compute than the single-tier cache at the equal dense "
                "budget"
            )
        return

    if args.routing is not None:
        routing_list = (
            ROUTING_SWEEP if args.routing == "all"
            else tuple(args.routing.split(","))
        )
        unknown = set(routing_list) - set(ROUTING_POLICIES)
        if unknown:
            raise SystemExit(
                f"unknown --routing {sorted(unknown)}; "
                f"pick from {', '.join(ROUTING_SWEEP)}"
            )
        result = run_routing_sweep(
            routing_list, requests=requests, workers=max(sweep)
        )
        print(result.as_table())
        print(result.notes)
        assert all(
            row["requests"] == requests for row in result.rows
        ), "a routing policy dropped requests"
        rebuild = {row["routing"]: row["rebuild_s"] for row in result.rows}
        if {"round-robin", "cost-aware"} <= set(routing_list):
            assert rebuild["cost-aware"] < rebuild["round-robin"], (
                "cost-aware routing did not beat round-robin on rebuild "
                "seconds"
            )
            cost_row = next(
                row for row in result.rows if row["routing"] == "cost-aware"
            )
            assert cost_row["routed_warm"] == requests, (
                "cost-aware routing did not drain the trace to the warm "
                "engine"
            )
        return

    if args.policy is not None:
        policy_list = (
            POLICY_SWEEP if args.policy == "all"
            else tuple(args.policy.split(","))
        )
        unknown = set(policy_list) - set(ADMISSION_POLICIES)
        if unknown:
            raise SystemExit(
                f"unknown --policy {sorted(unknown)}; "
                f"pick from {', '.join(POLICY_SWEEP)}"
            )
        result = run_policy_sweep(
            policy_list, requests=requests, workers=max(sweep)
        )
        print(result.as_table())
        print(result.notes)
        rebuild = {
            (row["admission"], row["batching"]): row["rebuild_s"]
            for row in result.rows
        }
        assert all(
            row["requests"] == requests for row in result.rows
        ), "a policy dropped requests"
        if {"lru", "cost-aware"} <= set(policy_list):
            assert rebuild[("cost-aware", "static")] < rebuild[
                ("lru", "static")
            ], "cost-aware admission did not beat LRU on rebuild seconds"
        return

    codec_list = (
        BENCH_CODECS if args.codec == "all"
        else tuple(args.codec.split(","))
    )
    if len(codec_list) > 1:
        result = run_codec_sweep(
            codec_list, requests=requests, workers=max(sweep)
        )
        print(result.as_table())
        print(result.notes)
        assert all(r > 0 for r in result.column("throughput_rps"))
        return

    observability = None
    if args.trace_out or args.metrics_out or args.json_out:
        recorder = TraceRecorder(args.trace_out) if args.trace_out else None
        observability = Observability(recorder=recorder)

    result = run(
        requests=requests, worker_sweep=sweep, codec=codec_list[0],
        observability=observability, backend=backend_list[0],
    )
    print(result.as_table())
    print(result.notes)
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0], "batching did not help"
    assert all(rate > 0 for rate in throughput), "a mode served nothing"

    if observability is None:
        return
    phases = observability.latency_breakdown()
    for name, stats in phases.items():
        print(
            f"phase[{name}] n={stats['count']} p50={stats['p50_ms']:.2f}ms "
            f"p95={stats['p95_ms']:.2f}ms total={stats['total_s']:.3f}s"
        )
    if args.trace_out:
        observability.recorder.close()
        print(
            f"trace: {observability.recorder.records_written} records "
            f"-> {args.trace_out}"
        )
    if args.metrics_out:
        Path(args.metrics_out).write_text(observability.to_prometheus_text())
        print(f"metrics -> {args.metrics_out}")
    if args.json_out:
        document = dataclasses.asdict(result)
        document["phases"] = phases
        Path(args.json_out).write_text(json.dumps(document, indent=2))
        print(f"result -> {args.json_out}")


if __name__ == "__main__":
    main()
