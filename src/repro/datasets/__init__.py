"""Synthetic dataset stand-ins.

The paper evaluates on CIFAR-10, ImageNet, MNIST and CamVid.  None of
those are available offline, so each is replaced by a deterministic
synthetic generator that preserves what the experiments actually consume:
tensor shapes, number of classes, and learnability (so that accuracy
deltas before/after compression are meaningful).  See DESIGN.md §2.
"""

from repro.datasets.camvid import synthetic_camvid
from repro.datasets.cifar10 import synthetic_cifar10
from repro.datasets.imagenet import synthetic_imagenet
from repro.datasets.mnist import synthetic_mnist
from repro.datasets.synthetic import (
    ClassificationDataset,
    SegmentationDataset,
    make_classification,
    make_segmentation,
)

__all__ = [
    "ClassificationDataset",
    "SegmentationDataset",
    "make_classification",
    "make_segmentation",
    "synthetic_cifar10",
    "synthetic_imagenet",
    "synthetic_mnist",
    "synthetic_camvid",
]
