"""Figure 9: SmartExchange decomposition evolution.

The paper takes one 192x3 weight matrix from the second conv layer of
the second block of a CIFAR-10 ResNet-164 and plots, per iteration, the
normalized reconstruction error, the Ce sparsity ratio, and the distance
of B from its identity initialization.  Expected dynamics: sparsity
jumps early at the cost of reconstruction error, the error is then
remedied while sparsity is maintained, and ||B - I|| grows steadily.
"""

from __future__ import annotations

import numpy as np

from repro.core import SmartExchangeConfig, smart_exchange_decompose
from repro.experiments.common import ExperimentResult, ci_model


def _target_matrix() -> np.ndarray:
    """A (C*R, S) reshaped conv2 weight from the trained CI ResNet-164."""
    trained = ci_model("resnet164")
    blocks = trained.model.blocks
    conv2 = blocks[1].conv2  # second block's 3x3 conv, as in the paper
    weight = conv2.weight.data
    m, c, r, s = weight.shape
    return weight[0].reshape(c * r, s)


def run(iterations: int = 20) -> ExperimentResult:
    matrix = _target_matrix()
    config = SmartExchangeConfig(
        theta=4e-3, max_iterations=iterations, tol=0.0,
        target_row_sparsity=0.25,
    )
    decomposition = smart_exchange_decompose(matrix, config)
    table = ExperimentResult(
        "Figure 9 — decomposition evolution "
        f"(matrix {matrix.shape[0]}x{matrix.shape[1]})"
    )
    history = decomposition.history
    for index, (error, sparsity, drift) in enumerate(
        zip(history.errors, history.sparsities, history.basis_drifts)
    ):
        table.rows.append({
            "iteration": index + 1,
            "recon_error": error,
            "ce_sparsity_pct": 100 * sparsity,
            "basis_drift": drift,
        })
    table.notes = (
        "Expected: early sparsity rise costs reconstruction error, which "
        "the alternating fits then remedy; ||B - I|| grows away from the "
        "identity initialization."
    )
    return table
