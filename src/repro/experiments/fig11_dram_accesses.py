"""Figure 11: normalized number of DRAM accesses (over SmartExchange).

Paper: every baseline needs 1.1x-3.5x the DRAM traffic of the
SmartExchange accelerator, with the smallest gaps on the
activation-dominated compact models.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geometric_mean
from repro.experiments.hardware_comparison import ACCELERATOR_ORDER, suite_results

PAPER_DIANNAO = {
    "vgg11": 1.9, "resnet50": 2.4, "mobilenetv2": 1.1, "efficientnet_b0": 1.2,
    "vgg19": 2.4, "resnet164": 2.0, "deeplabv3plus": 2.4,
}


def run() -> ExperimentResult:
    results = suite_results(include_fc=False)
    table = ExperimentResult(
        "Figure 11 — normalized #DRAM accesses (vs SmartExchange)"
    )
    per_accelerator = {name: [] for name in ACCELERATOR_ORDER}
    for model, per_model in results.items():
        base = per_model["smartexchange"].total_dram_bytes
        row = {"model": model}
        for name in ACCELERATOR_ORDER:
            if name not in per_model:
                row[name] = float("nan")
                continue
            ratio = per_model[name].total_dram_bytes / base
            row[name] = ratio
            per_accelerator[name].append(ratio)
        row["paper_diannao"] = PAPER_DIANNAO[model]
        table.rows.append(row)
    geomean_row = {"model": "geomean"}
    for name in ACCELERATOR_ORDER:
        geomean_row[name] = geometric_mean(per_accelerator[name])
    geomean_row["paper_diannao"] = 1.8
    table.rows.append(geomean_row)
    table.notes = (
        "Weight + activation DRAM accesses; compact models show the "
        "smallest SmartExchange advantage because activations dominate."
    )
    return table
