"""Offline cache simulator: trace replay, live-engine parity, sweeps."""

import numpy as np
import pytest

from tests.serving.conftest import build_model
from repro.observability import (
    Observability,
    ReplayRequest,
    TraceReader,
    TraceRecorder,
)
from repro.serving import (
    CacheSimulator,
    InferenceEngine,
    ModelRegistry,
    simulate_policies,
)

TIERS = "compressed:4096,disk"


@pytest.fixture
def handle(published):
    store, manifest, *_ = published
    return ModelRegistry(store).get(manifest.name)


def serve_and_record(handle, tmp_path, cache_bytes, requests=24):
    """Run a live single-worker engine over a trace-recorded workload;
    returns (trace path, live rebuild stats dict, live cost model)."""
    path = tmp_path / "trace.jsonl"
    obs = Observability(recorder=TraceRecorder(path))
    engine = InferenceEngine(
        build_model(seed=1),
        handle,
        cache_bytes=cache_bytes,
        tiers=TIERS,
        observability=obs,
        spill_dir=str(tmp_path / "live-spill"),
    )
    rng = np.random.default_rng(7)
    engine.start(workers=1)
    try:
        for _ in range(requests):
            # Waiting on each ticket keeps batches single-request and
            # the access order deterministic.
            engine.submit(rng.normal(size=(3, 6, 6))).result(timeout=30)
    finally:
        engine.stop()
        obs.recorder.close()
    stats = engine.rebuild.stats.as_dict()
    engine.close()
    return path, stats, engine.cost_model


class TestLiveParity:
    def test_replay_reproduces_live_tier_hit_counts(self, handle, tmp_path):
        dense_cap = max(
            int(np.prod(spec.weight_shape)) * 8
            for spec in handle.layer_specs.values()
        )  # holds the largest layer only: forces tier traffic
        path, live_stats, cost_model = serve_and_record(
            handle, tmp_path, cache_bytes=dense_cap
        )
        assert live_stats["tier_hit_counts"]["compressed-ram"] > 0
        with CacheSimulator(
            handle,
            capacity_bytes=dense_cap,
            tiers=TIERS,
            cost_model=cost_model,
            spill_dir=str(tmp_path / "sim-spill"),
        ) as simulator:
            report = simulator.replay(str(path), model=handle.name)
        # The acceptance contract: exact per-tier hit counts, and the
        # same stats schema as the live engine.
        assert report.tier_hit_counts == live_stats["tier_hit_counts"]
        assert set(report.stats) == set(live_stats)
        assert set(report.stats["tiers"]) == set(live_stats["tiers"])
        assert report.requests == 24

    def test_simulation_does_not_pollute_live_cost_model(
        self, handle, tmp_path
    ):
        path, _, cost_model = serve_and_record(
            handle, tmp_path, cache_bytes=2048
        )
        before = (
            cost_model.snapshot_rates(),
            cost_model.snapshot_tier_rates(),
        )
        with CacheSimulator(
            handle, capacity_bytes=2048, tiers=TIERS, cost_model=cost_model
        ) as simulator:
            simulator.replay(str(path), model=handle.name)
        assert (
            cost_model.snapshot_rates(),
            cost_model.snapshot_tier_rates(),
        ) == before


class TestReplayMechanics:
    def rows(self, count, batch=None, model="demo"):
        return [
            ReplayRequest(
                arrival_s=float(i),
                model=model,
                trace_id=f"t{i}",
                engine="demo:v1",
                batch_id=batch(i) if batch else None,
            )
            for i in range(count)
        ]

    def test_unbatched_rows_replay_one_pass_each(self, handle):
        with CacheSimulator(handle) as simulator:
            report = simulator.replay(self.rows(5))
        layers = len(handle.layer_specs)
        assert report.batches == 5
        assert report.requests == 5
        assert report.stats["accesses"] == 5 * layers
        # Unbounded cache: one simulated rebuild per layer, ever.
        assert report.stats["rebuilds"] == layers

    def test_batched_rows_share_one_install_pass(self, handle):
        rows = self.rows(6, batch=lambda i: i // 3)  # two batches of 3
        with CacheSimulator(handle) as simulator:
            report = simulator.replay(rows)
        assert report.batches == 2
        assert report.requests == 6
        assert report.stats["accesses"] == 2 * len(handle.layer_specs)

    def test_model_filter(self, handle):
        rows = self.rows(4) + self.rows(3, model="other")
        with CacheSimulator(handle) as simulator:
            report = simulator.replay(rows, model="demo")
        assert report.requests == 4

    def test_reset_zeroes_counters_but_keeps_probes(self, handle):
        with CacheSimulator(handle) as simulator:
            first = simulator.replay(self.rows(3))
            assert first.stats["rebuilds"] > 0
            simulator.reset()
            assert simulator.engine.stats.accesses == 0
            second = simulator.replay(self.rows(3))
        assert second.requests == 3
        assert second.stats["accesses"] == first.stats["accesses"]

    def test_source_without_payloads_rejected(self):
        with pytest.raises(TypeError, match="payloads"):
            CacheSimulator(object())

    def test_schedule_accepts_reader(self, handle, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as recorder:
            for row in self.rows(2):
                recorder.record_request(
                    trace_id=row.trace_id,
                    model=row.model,
                    engine=row.engine,
                    arrival_s=row.arrival_s,
                    latency_s=0.0,
                )
        with CacheSimulator(handle) as simulator:
            report = simulator.replay(TraceReader(path))
        assert report.requests == 2


class TestPolicySweep:
    def test_reports_come_back_in_config_order(self, handle):
        rows = [
            ReplayRequest(arrival_s=float(i), model="demo", trace_id=f"t{i}")
            for i in range(6)
        ]
        dense_cap = max(
            int(np.prod(spec.weight_shape)) * 8
            for spec in handle.layer_specs.values()
        )
        reports = simulate_policies(
            rows,
            handle,
            configs=[
                {"name": "flat", "capacity_bytes": dense_cap},
                {
                    "name": "tiered",
                    "capacity_bytes": dense_cap,
                    "tiers": "compressed,disk",
                },
                {"name": "cost", "admission": "cost-aware"},
            ],
        )
        assert [r.name for r in reports] == ["flat", "tiered", "cost"]
        assert reports[0].tiers == ()
        assert reports[1].tiers == ("compressed-ram", "disk")
        assert reports[2].admission == "cost-aware"
        # Same dense budget: the hierarchy can only reduce rebuild time.
        assert reports[1].rebuild_seconds <= reports[0].rebuild_seconds
        for report in reports:
            snap = report.as_dict()
            assert set(snap) >= {
                "name", "admission", "tiers", "capacity_bytes",
                "requests", "batches", "stats", "tier_summaries",
            }

    def test_configs_price_with_shared_rates(self, handle):
        # A cost-aware config triggers the calibration probe; a plain
        # LRU one does not.  simulate_policies must calibrate ONE model
        # and clone it per config, or the probed config's realistically
        # priced rebuilds dwarf the prior-priced ones and the sweep
        # compares pricing schemes instead of policies.
        rows = [
            ReplayRequest(arrival_s=float(i), model="demo", trace_id=f"t{i}")
            for i in range(12)
        ]
        starved = min(
            int(np.prod(spec.weight_shape)) * 8
            for spec in handle.layer_specs.values()
        ) - 1  # nothing fits dense: flat rebuilds every layer per batch
        flat, tiered = simulate_policies(
            rows,
            handle,
            configs=[
                {"name": "flat", "capacity_bytes": starved},
                {
                    "name": "tiered",
                    "capacity_bytes": starved,
                    "admission": "cost-aware",
                    "tiers": "compressed,disk",
                },
            ],
        )
        # Identical per-layer rates: tiered's rebuilds are a per-layer
        # subset of flat's, so its total can only be smaller.
        assert tiered.stats["rebuilds"] < flat.stats["rebuilds"]
        assert tiered.rebuild_seconds < flat.rebuild_seconds
