"""Step 2 of Algorithm 1: unconstrained least-squares fits of B and Ce."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def fit_basis(weight: np.ndarray, coefficient: np.ndarray) -> np.ndarray:
    """``argmin_B ||W - Ce B||_F^2`` for fixed ``Ce``.

    A plain least-squares solve; rank deficiency (e.g. a fully-pruned
    coefficient column) falls back to the minimum-norm solution.
    """
    solution, *_ = np.linalg.lstsq(coefficient, weight, rcond=None)
    return solution


def fit_coefficient(weight: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """``argmin_Ce ||W - Ce B||_F^2`` for fixed ``B``.

    Solved row-wise as ``B^T Ce^T = W^T``.
    """
    solution, *_ = np.linalg.lstsq(basis.T, weight.T, rcond=None)
    return solution.T


def fit_coefficient_masked(
    weight: np.ndarray, basis: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Least-squares ``Ce`` constrained to a sparsity pattern.

    Rows of ``Ce`` are independent, so each row solves a small masked
    least-squares problem over its allowed support.  Used when refitting
    after sparsification so that zeroed entries stay zero.
    """
    if mask.shape != (weight.shape[0], basis.shape[0]):
        raise ValueError("mask shape must match the coefficient shape")
    coefficient = np.zeros((weight.shape[0], basis.shape[0]))
    for row in range(weight.shape[0]):
        support = np.flatnonzero(mask[row])
        if support.size == 0:
            continue
        sub_basis = basis[support]  # (k, n)
        solution, *_ = np.linalg.lstsq(sub_basis.T, weight[row], rcond=None)
        coefficient[row, support] = solution
    return coefficient


def reconstruction_error(
    weight: np.ndarray, coefficient: np.ndarray, basis: np.ndarray
) -> float:
    """Relative Frobenius error ``||W - Ce B||_F / ||W||_F``."""
    denom = np.linalg.norm(weight)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(weight - coefficient @ basis) / denom)


def normalize_columns(
    coefficient: np.ndarray, basis: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-normalize ``Ce`` columns, absorbing scale into ``B`` rows.

    ``Ce B`` is invariant under ``Ce[:, j] /= s_j`` and ``B[j, :] *= s_j``;
    normalizing removes the scale ambiguity before power-of-2 rounding
    (paper, Step 1).
    """
    norms = np.linalg.norm(coefficient, axis=0)
    scale = np.where(norms > 0, norms, 1.0)
    return coefficient / scale, basis * scale[:, None]
