"""Metrics-schema violations: a name without the ``repro_`` prefix, a
counter decremented outside any reset path, and one metric name
registered with two different label-key schemas."""


class BadStats:
    def __init__(self, registry):
        self.requests = registry.counter(
            "serving_requests_total", "requests served"
        )
        self.inflight = registry.gauge("repro_serving_inflight", "in flight")

    def rollback(self, count):
        self.requests.dec(count)


def register_by_engine(registry, engine):
    registry.counter(
        "repro_host_routed_total", "routed requests", tags={"engine": engine}
    )


def register_by_model(registry, model):
    registry.counter(
        "repro_host_routed_total", "routed requests", tags={"model": model}
    )
