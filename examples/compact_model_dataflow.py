"""Compact models: MobileNetV2 compression + the dedicated dataflow.

Two parts:
1. algorithm — SmartExchange on a CI-scale MobileNetV2 (paper Table III:
   ~6.6x CR with zero sparsity on compact models);
2. hardware — the Fig. 15 ablation: energy/latency of MobileNetV2
   depth-wise layers with and without the dedicated compact-model
   dataflow (depth-wise rows spread over PE lines, clustered MAC arrays).

Run:  python examples/compact_model_dataflow.py
"""

from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.experiments import fig15_compact_ablation
from repro.experiments.common import fresh_ci_model
from repro.nn import evaluate


def main() -> None:
    print("training CI-scale MobileNetV2 ...")
    trained = fresh_ci_model("mobilenetv2")
    dataset = trained.dataset
    before = evaluate(trained.model, dataset.test_images, dataset.test_labels)

    # Compact models: no sparsity target — the gains come from the
    # decomposition plus 4-bit power-of-2 coefficients alone.
    config = SmartExchangeConfig(theta=1e-4, max_iterations=6)
    _, report = apply_smartexchange(trained.model, config,
                                    model_name="mobilenetv2")
    after = evaluate(trained.model, dataset.test_images, dataset.test_labels)

    print(f"accuracy            : {before:6.1%} -> {after:6.1%}")
    print(f"compression rate    : {report.compression_rate:5.2f}x "
          f"(paper: 6.57x)")
    print(f"vector sparsity     : {report.vector_sparsity:6.1%} (paper: 0%)")
    print()
    print(fig15_compact_ablation.run().as_table())


if __name__ == "__main__":
    main()
