"""End-to-end observability through a multi-model, multi-worker host.

The acceptance scenario: a 4-worker fleet over a mixed-codec bundle,
with tracing, metrics, and JSONL recording all on.  The Prometheus
export must reconcile with the summary totals, the recorded trace must
replay as the same per-model schedule, and every request's span tree
must account for (nearly) all of its end-to-end latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.codecs import SmartExchangeCodec, get_codec
from repro.observability import Observability, TraceReader, TraceRecorder
from repro.serving import (
    InferenceEngine,
    ModelRegistry,
    ServingHost,
    StaticBatchPolicy,
)

from tests.serving.conftest import FAST, build_model

REQUESTS = 24
SAMPLE_SHAPE = (3, 8, 8)


def publish_mixed(store) -> None:
    """Mixed-codec bundle: smartexchange convs + quant-linear head."""
    model = build_model(seed=0)
    se, ql = SmartExchangeCodec(FAST), get_codec("quant-linear")
    payloads = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            payloads[name] = se.encode(module.weight.data)
        elif isinstance(module, nn.Linear):
            payloads[name] = ql.encode(module.weight.data)
    store.publish_payloads(payloads, name="demo", model=model)


@pytest.fixture
def fleet(store, tmp_path):
    """(host, obs, trace_path): a served 4-worker two-model fleet."""
    publish_mixed(store)
    store.publish_model(build_model(seed=0), name="plain", codec="dense")
    trace_path = tmp_path / "trace.jsonl"
    obs = Observability(recorder=TraceRecorder(trace_path))
    registry = ModelRegistry(store, observability=obs)
    host = ServingHost(registry)
    policy = lambda: StaticBatchPolicy(max_batch_size=8, max_wait_s=0.001)
    host.deploy("demo", build_model(seed=1), policy=policy())
    host.deploy("plain", build_model(seed=1), policy=policy())

    rng = np.random.default_rng(0)
    samples = rng.normal(size=(REQUESTS, *SAMPLE_SHAPE))
    models = ["demo" if i % 2 == 0 else "plain" for i in range(REQUESTS)]
    host.start(workers=4)
    try:
        tickets = [
            host.submit(sample, model=model)
            for sample, model in zip(samples, models)
        ]
        for ticket in tickets:
            ticket.result(timeout=30.0)
    finally:
        host.stop()
    obs.recorder.close()
    return host, obs, trace_path


def _prometheus_series(text: str, name: str):
    """[(labels_str, value)] for every sample line of ``name``."""
    rows = []
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest and rest[0] not in ("{", " "):
            continue  # a longer metric name sharing the prefix
        labels, _, value = rest.rpartition(" ")
        rows.append((labels, float(value)))
    return rows


class TestPrometheusReconciliation:
    def test_request_counters_reconcile_with_summary(self, fleet):
        host, obs, _ = fleet
        summary = host.summary()
        assert summary["requests"] == REQUESTS
        text = obs.to_prometheus_text()
        served = _prometheus_series(text, "repro_serving_requests_total")
        assert sum(value for _, value in served) == REQUESTS
        # Each engine's registry is labelled with its source key.
        sources = {labels for labels, _ in served}
        assert any('source="demo:v1"' in labels for labels in sources)
        assert any('source="plain:v1"' in labels for labels in sources)

    def test_routed_counters_reconcile(self, fleet):
        host, obs, _ = fleet
        routed = host.summary()["routed_by_engine"]
        assert routed == {"demo:v1": REQUESTS // 2, "plain:v1": REQUESTS // 2}
        text = obs.to_prometheus_text()
        series = dict(_prometheus_series(text, "repro_host_routed_total"))
        for key, count in routed.items():
            (labels,) = [s for s in series if f'engine="{key}"' in s]
            assert series[labels] == count

    def test_rebuild_counters_reconcile(self, fleet):
        host, obs, _ = fleet
        demo = host.engines()["demo:v1"]
        text = obs.to_prometheus_text()
        hits = dict(_prometheus_series(text, "repro_rebuild_hits_total"))
        (labels,) = [s for s in hits if 'source="demo:v1"' in s]
        assert hits[labels] == demo.rebuild.stats.hits

    def test_merged_json_export_parses(self, fleet):
        import json

        _, obs, _ = fleet
        document = json.loads(obs.to_json())
        names = {entry["name"] for entry in document["metrics"]}
        assert "repro_serving_requests_total" in names
        assert "repro_host_routed_total" in names


class TestTraceReplay:
    def test_every_request_recorded_once(self, fleet):
        _, obs, trace_path = fleet
        records = TraceReader(trace_path).records()
        assert len(records) == REQUESTS
        assert len({r["trace_id"] for r in records}) == REQUESTS

    def test_replays_identical_per_model_schedule(self, fleet):
        _, _, trace_path = fleet
        first = TraceReader(trace_path).by_model()
        again = TraceReader(trace_path).by_model()
        assert first == again
        assert {model: len(rows) for model, rows in first.items()} == {
            "demo": REQUESTS // 2,
            "plain": REQUESTS // 2,
        }
        for rows in first.values():
            arrivals = [row.arrival_s for row in rows]
            # Submissions were sequential, so each model's schedule
            # replays in submission order.
            assert arrivals == sorted(arrivals)
            assert all(row.engine in ("demo:v1", "plain:v1") for row in rows)

    def test_schedule_interleaves_models_by_arrival(self, fleet):
        _, _, trace_path = fleet
        schedule = TraceReader(trace_path).schedule()
        assert [row.model for row in schedule[:4]] == [
            "demo", "plain", "demo", "plain",
        ]


class TestSpanTrees:
    def walk(self, node):
        yield node
        for child in node.get("children", ()):
            yield from self.walk(child)

    def test_trace_ids_never_interleave(self, fleet):
        _, _, trace_path = fleet
        for record in TraceReader(trace_path):
            spans = list(self.walk(record["spans"]))
            assert {s["trace_id"] for s in spans} == {record["trace_id"]}

    def test_span_tree_accounts_for_e2e_latency(self, fleet):
        _, _, trace_path = fleet
        total_root = total_phases = 0.0
        for record in TraceReader(trace_path):
            root = record["spans"]
            assert root["name"] == "request"
            phases = sum(
                child["duration_s"] for child in root["children"]
            )
            # Phases are sequential, so they can never exceed the root
            # by more than float noise.
            assert phases <= root["duration_s"] * 1.001 + 1e-9
            total_root += root["duration_s"]
            total_phases += phases
        # In aggregate the phase spans cover nearly all of the
        # end-to-end time (typically >95%; the slack is scheduling
        # gaps between spans).
        assert total_phases >= 0.90 * total_root

    def test_batch_peers_share_phase_spans(self, fleet):
        _, _, trace_path = fleet
        shared = real = 0
        for record in TraceReader(trace_path):
            for span in self.walk(record["spans"]):
                if span["name"] in ("rebuild", "compute"):
                    if span["tags"].get("shared"):
                        shared += 1
                        assert span["tags"]["shared_from"]
                    else:
                        real += 1
        # Every record still carries rebuild+compute one way or the
        # other, and the real spans were paid once per batch.
        assert real + shared == 2 * REQUESTS
        assert real >= 2  # at least one primary per engine

    def test_mixed_codecs_visible_in_layer_spans(self, fleet):
        _, obs, _ = fleet
        layer_spans = [
            s for s in obs.spans() if s["name"] == "rebuild.layer"
        ]
        codecs = {
            s["tags"]["codec"]
            for s in layer_spans
            if s["tags"].get("engine") != "plain:v1"
        }
        # The demo bundle decodes through both codecs.
        assert {"smartexchange", "quant-linear"} <= codecs

    def test_route_spans_carry_routing_decision(self, fleet):
        _, obs, _ = fleet
        routes = [s for s in obs.spans() if s["name"] == "route"]
        assert len(routes) == REQUESTS
        assert all(s["tags"]["chosen"] for s in routes)


class TestSummaries:
    def test_engine_summary_has_phase_latency(self, fleet):
        host, _, _ = fleet
        summary = host.engines()["demo:v1"].summary()
        breakdown = summary["phase_latency"]
        assert set(breakdown) == {"queue_wait", "rebuild", "compute"}
        assert breakdown["queue_wait"]["count"] == REQUESTS // 2
        assert breakdown["compute"]["count"] >= 1
        assert breakdown["compute"]["p95_ms"] >= breakdown["compute"]["p50_ms"]

    def test_engine_report_renders_phase_lines(self, fleet):
        host, _, _ = fleet
        report = host.engines()["demo:v1"].report()
        assert "phase[queue_wait]" in report
        assert "phase[compute]" in report

    def test_latency_breakdown_filters_by_engine(self, fleet):
        _, obs, _ = fleet
        demo = obs.latency_breakdown(engine="demo:v1")
        fleetwide = obs.latency_breakdown()
        assert demo["queue_wait"]["count"] == REQUESTS // 2
        assert fleetwide["queue_wait"]["count"] == REQUESTS


class TestDisabled:
    def test_disabled_observability_stays_silent(self, store, tmp_path):
        publish_mixed(store)
        obs = Observability(enabled=False)
        registry = ModelRegistry(store, observability=obs)
        host = ServingHost(registry)
        host.deploy("demo", build_model(seed=1))
        rng = np.random.default_rng(0)
        with host:
            tickets = [
                host.submit(sample)
                for sample in rng.normal(size=(6, *SAMPLE_SHAPE))
            ]
            for ticket in tickets:
                ticket.result(timeout=30.0)
        assert len(obs.collector) == 0
        assert obs.begin_request(model="demo") is None
        assert "phase_latency" not in host.engines()["demo:v1"].summary()

    def test_default_engine_needs_no_handle(self, store):
        publish_mixed(store)
        registry = ModelRegistry(store)
        engine = InferenceEngine(build_model(seed=1), registry.get("demo"))
        rng = np.random.default_rng(0)
        out = engine.predict(rng.normal(size=(2, *SAMPLE_SHAPE)))
        assert out.shape == (2, 4)
        assert "phase_latency" not in engine.summary()
