"""The same shapes done right: perf_counter for durations, wall-clock
only as a timestamp, narrow excepts, None defaults, lazily-built
locks.  Zero findings."""

import threading
import time


class LazyLocked:
    def __init__(self):
        self.lock = threading.Lock()


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def stamp_manifest(manifest):
    # Wall-clock as a *timestamp* is legitimate (manifest metadata).
    manifest["created"] = time.time()
    return manifest


def swallow(fn, log=None):
    if log is None:
        log = []
    try:
        fn()
    except Exception:
        log.append("error")
    return log
