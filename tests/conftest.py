"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def numeric_gradient(tensor: Tensor, scalar_fn, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``scalar_fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    iterator = np.nditer(tensor.data, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        upper = scalar_fn()
        tensor.data[index] = original - eps
        lower = scalar_fn()
        tensor.data[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad


def assert_grad_matches(tensor: Tensor, scalar_fn, atol: float = 1e-4) -> None:
    """Assert the taped gradient matches the numeric one."""
    assert tensor.grad is not None, "no gradient was accumulated"
    numeric = numeric_gradient(tensor, scalar_fn)
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)
