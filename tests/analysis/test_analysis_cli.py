"""CLI contract: exit codes (0 clean / 1 findings / 2 usage error),
JSON output, baseline round-trip, stale-entry detection."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"

CLEAN = "lck_clean.py"
DIRTY = "lck_torn_read.py"


def _copy(tmp_path, *names):
    for name in names:
        shutil.copy(FIXTURES / name, tmp_path / name)
    return tmp_path


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        _copy(tmp_path, CLEAN)
        code = main(["--root", str(tmp_path), str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _copy(tmp_path, DIRTY)
        code = main(["--root", str(tmp_path), str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "LCK001" in out
        assert "bytes_saved" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        code = main(["--select", "NOPE999", str(tmp_path)])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, tmp_path, capsys):
        _copy(tmp_path, CLEAN)
        code = main(
            [
                "--root", str(tmp_path),
                "--baseline", str(tmp_path / "absent.json"),
                str(tmp_path),
            ]
        )
        assert code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("LCK001", "WIRE001", "MET001", "RES001", "TIM001"):
            assert rule_id in out


class TestJsonFormat:
    def test_findings_as_json(self, tmp_path, capsys):
        _copy(tmp_path, DIRTY)
        code = main(
            ["--root", str(tmp_path), "--format", "json", str(tmp_path)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["findings"] == len(payload["findings"]) > 0
        finding = payload["findings"][0]
        assert finding["rule"] == "LCK001"
        assert finding["file"] == DIRTY
        assert finding["severity"] == "error"
        assert isinstance(finding["line"], int)


class TestBaseline:
    def test_write_then_rerun_is_clean(self, tmp_path, capsys):
        """--write-baseline then a re-run against it exits 0."""
        _copy(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "--root", str(tmp_path),
                    "--baseline", str(baseline),
                    "--write-baseline",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "--root", str(tmp_path),
                "--baseline", str(baseline),
                str(tmp_path),
            ]
        )
        assert code == 0

    def test_stale_entry_fails_with_flag(self, tmp_path, capsys):
        """Fixing the finding makes its baseline entry stale; the CI
        self-check flag turns that into a failure."""
        _copy(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            [
                "--root", str(tmp_path),
                "--baseline", str(baseline),
                "--write-baseline",
                str(tmp_path),
            ]
        )
        # "Fix" the finding by replacing the file with the clean fixture.
        shutil.copy(FIXTURES / CLEAN, tmp_path / DIRTY)
        capsys.readouterr()
        args = [
            "--root", str(tmp_path),
            "--baseline", str(baseline),
            str(tmp_path),
        ]
        assert main(args) == 0  # stale alone is only a note...
        assert "stale" in capsys.readouterr().out
        assert main(["--fail-on-stale"] + args) == 1  # ...until CI asks

    def test_default_baseline_picked_up_from_root(self, tmp_path, capsys):
        _copy(tmp_path, DIRTY)
        main(
            [
                "--root", str(tmp_path),
                "--baseline", str(tmp_path / "analysis-baseline.json"),
                "--write-baseline",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        # No --baseline flag: <root>/analysis-baseline.json applies.
        assert main(["--root", str(tmp_path), str(tmp_path)]) == 0


class TestModuleEntryPoint:
    def test_python_dash_m_front_door(self, tmp_path):
        """``python -m repro.analysis`` works end to end."""
        _copy(tmp_path, DIRTY)
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis",
                "--root", str(tmp_path), str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "LCK001" in result.stdout


class TestRepoIsClean:
    def test_src_repro_passes_the_gate(self, capsys):
        """The acceptance bar: the analyzer over src/repro, with the
        committed baseline, exits 0."""
        root = Path(__file__).resolve().parents[2]
        code = main(["--root", str(root), str(root / "src" / "repro")])
        capsys.readouterr()
        assert code == 0

    def test_committed_baseline_has_no_stale_entries(self, capsys):
        root = Path(__file__).resolve().parents[2]
        code = main(
            [
                "--root", str(root),
                "--fail-on-stale",
                str(root / "src" / "repro"),
            ]
        )
        capsys.readouterr()
        assert code == 0
