"""SCNN: weight + activation element-sparsity baseline.

SCNN keeps both operands compressed (values + RLC indexes) end to end and
multiplies only non-zero pairs in a Cartesian-product PE, so its
effective work scales with the *product* of weight and activation
densities.  The cost: products land in arbitrary accumulator banks
(crossbar + bank-conflict overhead) and the architecture is known to be
inefficient on 1x1 convolutions and FC layers, where the Cartesian
product cannot be reused spatially.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.accelerator import (
    Accelerator,
    LayerResult,
    dram_tiling,
    lane_utilization,
)
from repro.hardware.layers import LayerWorkload
from repro.hardware.memory import assemble_result
from repro.hardware.resources import (
    BASELINE_BUFFERS,
    DRAM_BYTES_PER_CYCLE,
    MULTIPLIERS_8BIT,
)

PE_COUNT = 64
LANES_PER_PE = MULTIPLIERS_8BIT // PE_COUNT
RLC_INDEX_BITS = 4
# Cartesian-product reuse keeps GB traffic low for 3x3+ convs.
WEIGHT_GB_REUSE = 16.0
# Accumulator crossbar conflicts (SCNN paper reports ~20% stall overhead).
CROSSBAR_EFFICIENCY = 0.8
# 1x1 / FC layers cannot form useful Cartesian products.
POINTWISE_EFFICIENCY = 0.5


class SCNN(Accelerator):
    name = "scnn"

    def simulate_layer(self, workload: LayerWorkload) -> LayerResult:
        spec = workload.spec
        sparsity = workload.sparsity
        macs = spec.macs * workload.batch
        weight_density = 1.0 - sparsity.weight_element
        act_density = 1.0 - sparsity.act_element
        effective_macs = macs * weight_density * act_density

        nnz_weights = spec.weight_count * weight_density
        sparse_bytes = nnz_weights * (1.0 + RLC_INDEX_BITS / 8.0)
        dense_bytes = float(spec.weight_count)
        if sparse_bytes < dense_bytes:
            weight_bytes = sparse_bytes
            weight_index_bytes = nnz_weights * RLC_INDEX_BITS / 8.0
        else:
            # Nearly-dense layers are cheaper stored without indexes.
            weight_bytes = dense_bytes
            weight_index_bytes = 0.0
        input_bytes = (
            spec.input_count * workload.batch * act_density
            * (1.0 + RLC_INDEX_BITS / 8.0)
        )
        output_bytes = float(spec.output_count) * workload.batch

        dram_w, dram_i, dram_o = dram_tiling(
            weight_bytes,
            0.0 if workload.input_onchip else input_bytes,
            0.0 if workload.output_onchip else output_bytes,
            BASELINE_BUFFERS.weight_bytes,
            BASELINE_BUFFERS.input_bytes,
        )
        dram = {
            "weight": max(dram_w - weight_index_bytes, 0.0),
            "index": weight_index_bytes,
            "input": dram_i,
            "output": dram_o,
        }

        m_tiles = int(np.ceil(spec.out_channels / PE_COUNT))
        gb = {
            "input_read": input_bytes * m_tiles,
            "weight_read": effective_macs / WEIGHT_GB_REUSE,
            "output_write": output_bytes,
            # Scattered partial sums bounce through the output banks.
            "output_read": output_bytes,
        }

        utilization = lane_utilization(spec.out_channels, PE_COUNT)
        utilization *= lane_utilization(
            int(np.ceil(spec.reduction_depth * weight_density)), LANES_PER_PE
        )
        utilization *= CROSSBAR_EFFICIENCY
        if spec.kernel == 1 or spec.is_fc_like:
            utilization *= POINTWISE_EFFICIENCY
        compute_cycles = effective_macs / (MULTIPLIERS_8BIT * max(utilization, 1e-9))
        compute_energy = {
            "pe": effective_macs * (self.energy.mac + 3 * self.energy.register_file),
            # Crossbar + accumulator-bank traffic per product.
            "accumulator": effective_macs * 2 * self.energy.register_file,
            "index_selector": effective_macs * self.energy.register_file * 0.5,
        }
        return assemble_result(
            name=spec.name,
            macs=macs,
            effective_macs=effective_macs,
            compute_cycles=compute_cycles,
            dram_bytes=dram,
            gb_bytes=gb,
            compute_energy_pj=compute_energy,
            energy_model=self.energy,
            buffers=BASELINE_BUFFERS,
            dram_bytes_per_cycle=DRAM_BYTES_PER_CYCLE,
        )
