"""Tests for activation fake-quantization."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantize import (
    activation_quantization,
    evaluate_quantized,
    fake_quantize,
)
from repro.nn.tensor import Tensor


def make_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(4, 2, rng=rng),
    )


class TestFakeQuantize:
    def test_levels_bounded(self, rng):
        x = Tensor(rng.normal(size=500))
        out = fake_quantize(x, bits=4).numpy()
        assert len(np.unique(out)) <= 2**4

    def test_max_value_preserved(self, rng):
        x = Tensor(rng.normal(size=100))
        out = fake_quantize(x, bits=8).numpy()
        assert abs(np.abs(out).max() - np.abs(x.numpy()).max()) < 1e-12

    def test_zero_input_passthrough(self):
        x = Tensor(np.zeros(5))
        assert fake_quantize(x).numpy().sum() == 0.0

    def test_straight_through_gradient(self, rng):
        x = Tensor(rng.normal(size=10), requires_grad=True)
        fake_quantize(x, bits=4).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(10))

    def test_bits_validation(self, rng):
        with pytest.raises(ValueError):
            fake_quantize(Tensor(rng.normal(size=3)), bits=1)

    def test_error_shrinks_with_bits(self, rng):
        x = Tensor(rng.normal(size=1000))
        err4 = np.abs(fake_quantize(x, 4).numpy() - x.numpy()).mean()
        err8 = np.abs(fake_quantize(x, 8).numpy() - x.numpy()).mean()
        assert err8 < err4


class TestActivationQuantizationContext:
    def test_outputs_quantized_inside_context(self, rng):
        model = make_model(rng)
        model.eval()
        x = rng.normal(size=(2, 1, 6, 6))
        with activation_quantization(model, bits=3):
            quantized_out = model(x).numpy()
        plain_out = model(x).numpy()
        assert not np.allclose(quantized_out, plain_out)

    def test_forward_restored_after_context(self, rng):
        model = make_model(rng)
        model.eval()
        x = rng.normal(size=(2, 1, 6, 6))
        before = model(x).numpy()
        with activation_quantization(model, bits=3):
            model(x)
        after = model(x).numpy()
        np.testing.assert_array_equal(before, after)
        for module in model.modules():
            assert "forward" not in module.__dict__

    def test_restored_after_exception(self, rng):
        model = make_model(rng)
        with pytest.raises(RuntimeError):
            with activation_quantization(model, bits=8):
                raise RuntimeError("boom")
        for module in model.modules():
            assert "forward" not in module.__dict__

    def test_8bit_accuracy_close_to_float(self, rng):
        """8-bit activations should barely change predictions — the
        premise of the paper's precision choice."""
        model = make_model(rng)
        images = rng.normal(size=(40, 1, 6, 6))
        labels = (images.mean(axis=(1, 2, 3)) > 0).astype(int)
        images[labels == 1] += 1.0
        nn.fit(model, images, labels, epochs=4, lr=0.1, batch_size=10)
        float_acc = nn.evaluate(model, images, labels)
        int8_acc = evaluate_quantized(model, images, labels, act_bits=8)
        assert abs(float_acc - int8_acc) <= 0.1
