"""Algorithm-level design-knob ablations.

Three knobs the paper calls out, swept on decomposition quality and
storage (no training needed — they act on a fixed trained weight):

- **basis size S** (the paper uses 3/5/7): larger S means fewer, bigger
  matrices — more expressive but more basis storage;
- **coefficient bit-width** (4-bit in the paper): the ΩP exponent budget;
- **row slicing** (Section III-C's imbalance fix for FC layers): slicing
  a very tall matrix into chunks adds basis overhead but lowers the
  reconstruction error of each chunk.
"""

from __future__ import annotations

import numpy as np

from repro.core import SmartExchangeConfig, compress_fc_weight
from repro.experiments.common import ExperimentResult

BASIS_SIZES = (2, 3, 5, 7)
CE_BITS = (3, 4, 6, 8)
SLICE_ROWS = (None, 64, 16)


def _test_weight(rows: int = 64, cols: int = 126, seed: int = 0) -> np.ndarray:
    """A structured (approximately low-rank + noise) FC weight."""
    rng = np.random.default_rng(seed)
    low_rank = rng.normal(size=(rows, 6)) @ rng.normal(size=(6, cols))
    return 0.05 * (low_rank + 0.3 * rng.normal(size=(rows, cols)))


def run_basis_size(weight: np.ndarray = None) -> ExperimentResult:
    weight = weight if weight is not None else _test_weight()
    table = ExperimentResult("Ablation — basis size S (FC layers)")
    for basis_size in BASIS_SIZES:
        config = SmartExchangeConfig(basis_size=basis_size, max_iterations=8)
        compression = compress_fc_weight(weight, config)
        table.rows.append({
            "basis_size": basis_size,
            "cr_x": compression.compression_rate,
            "recon_error": compression.mean_reconstruction_error,
            "basis_bits": compression.storage.basis_bits,
        })
    table.notes = (
        "Larger S spends more bits on basis matrices; the paper picks "
        "S = kernel size (3) for convs and small S for FC layers."
    )
    return table


def run_ce_bits(weight: np.ndarray = None) -> ExperimentResult:
    weight = weight if weight is not None else _test_weight()
    table = ExperimentResult("Ablation — coefficient bit-width")
    for ce_bits in CE_BITS:
        config = SmartExchangeConfig(ce_bits=ce_bits, max_iterations=8)
        compression = compress_fc_weight(weight, config)
        table.rows.append({
            "ce_bits": ce_bits,
            "exponents_np": config.exponent_count,
            "cr_x": compression.compression_rate,
            "recon_error": compression.mean_reconstruction_error,
        })
    table.notes = (
        "4-bit coefficients (Np = 7 exponents) are the paper's operating "
        "point: near-8-bit fidelity at half the storage."
    )
    return table


def run_slicing(rows: int = 128) -> ExperimentResult:
    weight = _test_weight(rows=4, cols=rows * 3)  # tall reshaped matrices
    table = ExperimentResult("Ablation — row slicing of tall FC matrices")
    for max_rows in SLICE_ROWS:
        config = SmartExchangeConfig(max_iterations=8,
                                     max_rows_per_slice=max_rows)
        compression = compress_fc_weight(weight, config)
        table.rows.append({
            "max_rows_per_slice": str(max_rows),
            "matrices": len(compression.decompositions),
            "cr_x": compression.compression_rate,
            "recon_error": compression.mean_reconstruction_error,
        })
    table.notes = (
        "Slicing mitigates the imbalanced-dimension error of C >> S rows "
        "(Section III-C) at the cost of extra per-slice basis storage."
    )
    return table


def run() -> ExperimentResult:
    """All three sweeps concatenated (for the bench)."""
    merged = ExperimentResult("Algorithm design-knob ablations")
    for result in (run_basis_size(), run_ce_bits(), run_slicing()):
        for row in result.rows:
            merged.rows.append({"sweep": result.experiment.split("—")[1].strip(),
                                **row})
    return merged
