"""NumPy deep-learning substrate (replaces PyTorch for the reproduction).

Public surface::

    from repro import nn

    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1), nn.BatchNorm2d(16), nn.ReLU(),
        nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(16, 10),
    )
    logits = model(images)              # images: (N, 3, H, W) ndarray
"""

from repro.nn import functional
from repro.nn.activation import Dropout, ReLU, ReLU6, Sigmoid, SiLU
from repro.nn.container import Flatten, Identity, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.loss import (
    accuracy,
    cross_entropy,
    mean_iou,
    mse,
    segmentation_cross_entropy,
    top_k_accuracy,
)
from repro.nn.module import Module, Parameter
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.quantize import (
    activation_quantization,
    evaluate_quantized,
    fake_quantize,
)
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.tensor import Tensor, concat
from repro.nn.train import TrainHistory, evaluate, fit, predict, train_epoch

__all__ = [
    "functional",
    "Tensor",
    "concat",
    "Module",
    "Parameter",
    "Conv2d",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "SiLU",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Sequential",
    "Flatten",
    "Identity",
    "SGD",
    "Adam",
    "StepLR",
    "cross_entropy",
    "segmentation_cross_entropy",
    "mse",
    "accuracy",
    "top_k_accuracy",
    "mean_iou",
    "TrainHistory",
    "fit",
    "train_epoch",
    "evaluate",
    "predict",
    "fake_quantize",
    "activation_quantization",
    "evaluate_quantized",
]
