"""Tests for radix-4 Booth encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparsity.booth import (
    booth_decode,
    booth_digits,
    booth_encode,
    booth_nonzero_terms,
    booth_term_sparsity,
)


class TestBoothEncode:
    @given(st.integers(-128, 127))
    def test_roundtrip_8bit(self, value):
        digits = booth_encode(value, bits=8)
        assert booth_decode(digits) == value

    @given(st.integers(-8, 7))
    def test_roundtrip_4bit(self, value):
        assert booth_decode(booth_encode(value, bits=4)) == value

    @given(st.integers(-128, 127))
    def test_digit_alphabet(self, value):
        assert set(booth_encode(value, bits=8)) <= {-2, -1, 0, 1, 2}

    def test_digit_count(self):
        assert booth_digits(8) == 4
        assert booth_digits(4) == 2
        assert booth_digits(7) == 4
        assert len(booth_encode(100, bits=8)) == 4

    def test_zero_encodes_to_all_zero(self):
        assert booth_encode(0, bits=8) == [0, 0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            booth_encode(128, bits=8)
        with pytest.raises(ValueError):
            booth_encode(-129, bits=8)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            booth_digits(1)

    def test_powers_of_four_use_single_term(self):
        # +/- 4^k align with one radix-4 digit; other powers of two use
        # at most two (e.g. 2 = -2 + 1*4).
        for value in (1, 4, 16, 64, -64, -1):
            digits = booth_encode(value, bits=8)
            assert sum(1 for d in digits if d != 0) == 1, value
        for value in (2, 8, 32, -2):
            digits = booth_encode(value, bits=8)
            assert sum(1 for d in digits if d != 0) <= 2, value


class TestBoothCounts:
    def test_nonzero_terms_shape_preserved(self, rng):
        codes = rng.integers(-128, 128, size=(3, 4))
        counts = booth_nonzero_terms(codes)
        assert counts.shape == (3, 4)

    def test_counts_match_encoding(self):
        codes = np.array([0, 1, 85, -1])
        counts = booth_nonzero_terms(codes)
        expected = [sum(1 for d in booth_encode(int(v), 8) if d)
                    for v in codes]
        np.testing.assert_array_equal(counts, expected)

    def test_term_sparsity_all_zero(self):
        assert booth_term_sparsity(np.zeros(10, dtype=np.int64)) == 1.0

    def test_term_sparsity_bounds(self, rng):
        codes = rng.integers(-128, 128, size=500)
        sparsity = booth_term_sparsity(codes)
        assert 0.0 <= sparsity <= 1.0

    def test_booth_compresses_runs_of_ones(self):
        # 127 = 0b1111111 has 7 one-bits but Booth recodes the run as
        # 128 - 1: just two non-zero terms.
        assert booth_nonzero_terms(np.array([127]))[0] == 2
        assert booth_nonzero_terms(np.array([63]))[0] == 2

    def test_float_inputs_are_quantized(self, rng):
        values = rng.normal(size=100)
        sparsity = booth_term_sparsity(values, bits=8)
        assert 0.0 < sparsity < 1.0

    def test_figure4_direction(self, rng):
        """Booth *term* sparsity is below plain *bit* sparsity (Fig. 4)."""
        from repro.sparsity.metrics import bit_sparsity
        acts = np.maximum(rng.normal(size=3000), 0)  # post-ReLU
        plain = bit_sparsity(acts, bits=8)
        booth = booth_term_sparsity(acts, bits=8)
        assert booth < plain
