"""Trace-driven offline simulator for rebuild-cache tier policies.

The observability layer records every served request to JSONL
(:class:`~repro.observability.TraceRecorder`) and replays the file as a
deterministic request schedule (:meth:`~repro.observability.TraceReader.
schedule`).  :class:`CacheSimulator` consumes that schedule against a
*candidate* cache configuration — dense capacity, admission policy,
tier stack — in-process, with no fleet, no worker threads, and no
re-decoding per access, and emits **the same stats schema as the live
engine**, so policy comparisons are apples-to-apples and a sweep over
tier configs takes seconds.

How fidelity is achieved: the simulator runs the *real*
:class:`~repro.serving.rebuild.RebuildEngine` — real admission
policies, real tier placement gates, real zlib blobs with real charge
bytes — and overrides exactly two seams:

- :meth:`RebuildEngine._rebuild` decodes each layer **once** (memoized
  probe weights) and charges the cost model's *estimated* rebuild
  seconds instead of wall time;
- :meth:`RebuildEngine._tier_load` inflates the real blob and charges
  the estimated tier-fault seconds.

Charging estimates back into the (cloned) cost model is an EWMA fixed
point — observing a rate equal to the current rate leaves it unchanged
— so a simulation is deterministic and does not drift the rates it
prices with.  Because residency logic is shared code, a simulator
replaying the trace an engine just served reproduces that engine's
per-tier hit counts exactly (single-worker traces, deterministic
policies); the parity test pins this.

Batch semantics: the live engine installs weights **once per executed
batch** (all of a batch's requests share one pass over the layers), and
records each request with its ``batch_id``.  Replay therefore groups
requests by ``(engine, batch_id)`` and performs one access pass per
group, in first-arrival order; requests recorded without a batch id
replay as single-request batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.costs import CodecCostModel
from repro.observability import ReplayRequest, TraceReader
from repro.serving.rebuild import (
    AdmissionPolicy,
    RebuildEngine,
    rebuild_layer_weight,
)

__all__ = ["CacheSimulator", "SimulationReport", "simulate_policies"]


class _SimRebuildEngine(RebuildEngine):
    """A :class:`RebuildEngine` that charges estimated time, not wall
    time.  Everything else — lookup-through-tiers, admission, demotion
    cascades, stats — is the live engine's own code."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._probe_weights: Dict[str, np.ndarray] = {}

    def _rebuild(self, name: str):
        weight = self._probe_weights.get(name)
        if weight is None:
            weight = rebuild_layer_weight(
                self._payloads[name], self._specs[name]
            )
            weight.setflags(write=False)
            self._probe_weights[name] = weight
        seconds = self.cost_model.estimate_seconds(
            self._layer_codec[name], weight.nbytes, layer=name
        )
        return weight, seconds

    def _tier_load(self, tier, entry):
        weight = tier.load(entry)
        if weight is None:
            return None, 0.0
        seconds = self.cost_model.estimate_tier_seconds(
            tier.name, weight.nbytes
        )
        return weight, seconds


@dataclass
class SimulationReport:
    """One candidate configuration's replay outcome.

    ``stats`` is the live engine's ``RebuildCacheStats.as_dict()``
    schema verbatim (including the ``tiers`` / ``tier_hit_counts``
    sections when tiers are configured); ``rebuild_seconds`` is the
    *simulated* (estimate-charged) rebuild compute paid, which is the
    number tier-policy sweeps rank by.
    """

    name: str
    admission: str
    tiers: Tuple[str, ...]
    capacity_bytes: Optional[int]
    requests: int
    batches: int
    stats: Dict = field(default_factory=dict)
    tier_summaries: List[Dict] = field(default_factory=list)

    @property
    def rebuild_seconds(self) -> float:
        return self.stats.get("rebuild_seconds", 0.0)

    @property
    def tier_hit_counts(self) -> Dict[str, int]:
        return dict(self.stats.get("tier_hit_counts", {}))

    @property
    def hit_rate(self) -> float:
        return self.stats.get("hit_rate", 0.0)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "admission": self.admission,
            "tiers": list(self.tiers),
            "capacity_bytes": self.capacity_bytes,
            "requests": self.requests,
            "batches": self.batches,
            "stats": dict(self.stats),
            "tier_summaries": list(self.tier_summaries),
        }


def _group_batches(
    rows: Sequence[ReplayRequest],
) -> List[List[ReplayRequest]]:
    """Group schedule rows into executed batches, first-arrival order.

    Rows sharing a recorded ``(engine, batch_id)`` were served by one
    install pass; rows without a batch id each get their own."""
    batches: List[List[ReplayRequest]] = []
    index: Dict[Tuple[Optional[str], int], int] = {}
    for row in rows:
        if row.batch_id is None:
            batches.append([row])
            continue
        key = (row.engine, row.batch_id)
        slot = index.get(key)
        if slot is None:
            index[key] = len(batches)
            batches.append([row])
        else:
            batches[slot].append(row)
    return batches


class CacheSimulator:
    """Replay a recorded request schedule against one candidate cache
    configuration for one model bundle.

    ``source`` is either a ``{layer: LayerPayload}`` mapping plus
    ``specs``, or anything with ``payloads`` / ``layer_specs``
    attributes (a :class:`~repro.serving.registry.
    CompressedModelHandle`).  ``cost_model`` is **cloned** (when given)
    so the simulation prices codecs and tiers exactly as the live
    fleet currently does without polluting the fleet's learned rates;
    with none, a fresh model (calibration probe included for
    cost-requiring policies) is used.

    Use as a context manager (or call :meth:`close`) — a disk tier
    creates spill files during replay.
    """

    def __init__(
        self,
        source,
        specs=None,
        capacity_bytes: Optional[int] = None,
        admission: Union[str, AdmissionPolicy, None] = None,
        tiers=None,
        cost_model: Optional[CodecCostModel] = None,
        spill_dir: Optional[str] = None,
        name: str = "candidate",
        ledger=None,
    ) -> None:
        if specs is None:
            payloads = getattr(source, "payloads", None)
            specs = getattr(source, "layer_specs", None)
            if payloads is None or specs is None:
                raise TypeError(
                    "pass (payloads, specs) or a handle with .payloads "
                    "and .layer_specs"
                )
        else:
            payloads = source
        self.name = name
        self.engine = _SimRebuildEngine(
            payloads=payloads,
            specs=specs,
            capacity_bytes=capacity_bytes,
            policy=admission,
            cost_model=cost_model.clone() if cost_model is not None else None,
            tiers=tiers,
            spill_dir=spill_dir,
            ledger=ledger,
        )
        # Optional tenant ledger: replay attributes each batch's
        # simulated rebuild charges to the tenants recorded on its rows
        # (same share arithmetic as the live worker), so offline sweeps
        # produce per-tenant bills too.
        self.ledger = ledger
        self._requests = 0
        self._batches = 0

    # ------------------------------------------------------------------
    def replay(
        self,
        schedule: Union[str, TraceReader, Sequence[ReplayRequest]],
        model: Optional[str] = None,
    ) -> SimulationReport:
        """Run the schedule through the candidate cache; returns the
        report.  ``schedule`` is a JSONL path, a :class:`TraceReader`,
        or an already-loaded row list; ``model`` filters the trace to
        one model's requests (a multi-model trace replayed unfiltered
        would charge this bundle with other models' traffic).

        Replay accumulates: call :meth:`reset` between independent
        runs, or build a fresh simulator per candidate.
        """
        if isinstance(schedule, (str,)) or hasattr(schedule, "schedule"):
            reader = (
                schedule
                if isinstance(schedule, TraceReader)
                else TraceReader(schedule)
            )
            rows: Sequence[ReplayRequest] = reader.schedule()
        else:
            rows = list(schedule)
        if model is not None:
            rows = [row for row in rows if row.model == model]
        ledger = self.ledger
        for batch in _group_batches(rows):
            # One install pass per executed batch, spec order — exactly
            # the live engine's `_install_weights` iteration.
            if ledger is not None:
                shares = ledger.shares([row.tenant for row in batch])
                with ledger.activate(shares):
                    for layer in self.engine.layer_names:
                        self.engine.layer_weight(layer)
                for row in batch:
                    ledger.record_submitted(row.tenant)
                    ledger.record_served(row.tenant)
            else:
                for layer in self.engine.layer_names:
                    self.engine.layer_weight(layer)
            self._requests += len(batch)
            self._batches += 1
        return self.report()

    def report(self) -> SimulationReport:
        return SimulationReport(
            name=self.name,
            admission=self.engine.policy.name,
            tiers=tuple(tier.name for tier in self.engine.tiers),
            capacity_bytes=self.engine.capacity_bytes,
            requests=self._requests,
            batches=self._batches,
            stats=self.engine.stats.as_dict(),
            tier_summaries=self.engine.tier_summaries(),
        )

    def reset(self) -> None:
        """Empty every tier and zero the counters (probe weights and
        learned rates kept)."""
        self.engine.clear()
        self.engine.reset_stats()
        self._requests = 0
        self._batches = 0

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "CacheSimulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def simulate_policies(
    schedule: Union[str, TraceReader, Sequence[ReplayRequest]],
    source,
    specs=None,
    configs: Optional[Sequence[Mapping]] = None,
    cost_model: Optional[CodecCostModel] = None,
    model: Optional[str] = None,
    spill_dir: Optional[str] = None,
) -> List[SimulationReport]:
    """Sweep one recorded schedule over candidate cache configurations.

    Each config is a mapping with any of ``name`` / ``admission`` /
    ``tiers`` / ``capacity_bytes`` / ``spill_dir``; missing keys
    default like :class:`CacheSimulator`'s.  The schedule is loaded
    once and replayed against a fresh simulator per config; reports
    come back in config order, each carrying the live stats schema.

    Every config prices with the *same* rates: when no ``cost_model``
    is given, one fresh model is calibrated here and cloned per
    config.  (Left to each config, only the cost-requiring ones would
    trigger the calibration probe, and their realistically-priced
    rebuilds would dwarf the prior-priced ones — cross-config
    ``rebuild_seconds`` would compare pricing schemes, not policies.)
    """
    if isinstance(schedule, (str,)) or hasattr(schedule, "schedule"):
        reader = (
            schedule
            if isinstance(schedule, TraceReader)
            else TraceReader(schedule)
        )
        rows: Sequence[ReplayRequest] = reader.schedule()
    else:
        rows = list(schedule)
    if cost_model is None:
        payloads = source if specs is not None else getattr(
            source, "payloads", None
        )
        layer_specs = specs if specs is not None else getattr(
            source, "layer_specs", None
        )
        cost_model = CodecCostModel()
        if payloads is not None and layer_specs is not None:
            cost_model.calibrate(payloads, layer_specs)
    reports: List[SimulationReport] = []
    for position, config in enumerate(configs or [{}]):
        config = dict(config)
        with CacheSimulator(
            source,
            specs=specs,
            capacity_bytes=config.get("capacity_bytes"),
            admission=config.get("admission"),
            tiers=config.get("tiers"),
            cost_model=cost_model,
            spill_dir=config.get("spill_dir", spill_dir),
            name=config.get("name", f"config-{position}"),
        ) as simulator:
            reports.append(simulator.replay(rows, model=model))
    return reports
