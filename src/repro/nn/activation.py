"""Activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """Clipped ReLU used by MobileNetV2."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class SiLU(Module):
    """Swish activation used by EfficientNet."""

    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
