"""Bench: regenerate the §V-B component-contribution ablation."""

from benchmarks.conftest import run_and_print
from repro.experiments import ablation_components


def bench_ablation_components(benchmark):
    result = run_and_print(benchmark, ablation_components.run)
    assert result.rows[-1]["energy_gain_x"] > 1.5
