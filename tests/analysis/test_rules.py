"""Each rule family against its fixtures: positive hit, suppressed
hit, clean file."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, make_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run(select, *names):
    analyzer = Analyzer(make_rules(select), root=FIXTURES)
    return analyzer.run([FIXTURES / name for name in names])


# ----------------------------------------------------------------------
# LCK001 — lock coverage
# ----------------------------------------------------------------------
class TestLockCoverage:
    def test_redetects_historical_torn_read(self):
        """The pre-PR-4 unlocked ``bytes_saved`` read must be caught."""
        findings = run(["LCK001"], "lck_torn_read.py")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "LCK001"
        assert "bytes_saved" in finding.message
        assert "_cached_bytes" in finding.message
        # Anchored at the unlocked subtraction inside the property.
        text = (FIXTURES / "lck_torn_read.py").read_text().splitlines()
        assert "_cached_bytes" in text[finding.line - 1]

    def test_inline_suppression_is_honored(self):
        assert run(["LCK001"], "lck_suppressed.py") == []

    def test_clean_idioms_produce_no_findings(self):
        """with-blocks, Condition aliasing, *_locked helpers, and
        caller-holds comments all count as holding the lock."""
        assert run(["LCK001"], "lck_clean.py") == []


# ----------------------------------------------------------------------
# WIRE001 — picklability
# ----------------------------------------------------------------------
class TestWirePicklability:
    def test_known_wire_class_with_lock_is_flagged(self):
        findings = run(["WIRE001"], "wire_bad.py")
        messages = [finding.message for finding in findings]
        assert any("BatchEnvelope" in message for message in messages)

    def test_sent_class_is_autodetected(self):
        findings = run(["WIRE001"], "wire_bad.py")
        assert any(
            "CustomPing" in finding.message and "Event" in finding.message
            for finding in findings
        )

    def test_plain_data_wire_class_is_clean(self):
        assert run(["WIRE001"], "wire_clean.py") == []


# ----------------------------------------------------------------------
# MET001/002/003 — metrics schema
# ----------------------------------------------------------------------
class TestMetricsSchema:
    def test_bad_prefix_flagged(self):
        findings = run(["MET001"], "met_bad.py")
        assert any(
            "serving_requests_total" in finding.message
            for finding in findings
        )

    def test_counter_decrement_flagged(self):
        findings = run(["MET002"], "met_bad.py")
        assert len(findings) == 1
        assert ".dec()" in findings[0].message

    def test_label_schema_divergence_flagged(self):
        findings = run(["MET003"], "met_bad.py")
        assert len(findings) == 1
        assert "repro_host_routed_total" in findings[0].message

    def test_prefix_fstring_idiom_resolves_clean(self):
        assert run(["MET001", "MET002", "MET003"], "met_clean.py") == []


# ----------------------------------------------------------------------
# RES001 — resource lifecycle
# ----------------------------------------------------------------------
class TestResourceLifecycle:
    def test_leaky_constructions_flagged(self):
        findings = run(["RES001"], "res_bad.py")
        assert len(findings) == 3
        messages = " | ".join(finding.message for finding in findings)
        assert "SharedMemory" in messages
        assert "mkdtemp" in messages
        assert "discarded" in messages

    def test_teardown_idioms_are_clean(self):
        assert run(["RES001"], "res_clean.py") == []


# ----------------------------------------------------------------------
# TIM001 / EXC001 / ARG001 / THR001 — hygiene
# ----------------------------------------------------------------------
class TestHygiene:
    @pytest.mark.parametrize(
        "rule, fragment",
        [
            ("TIM001", "time.time()"),
            ("EXC001", "bare 'except:'"),
            ("ARG001", "mutable default"),
            ("THR001", "import "),
        ],
    )
    def test_violations_flagged(self, rule, fragment):
        findings = run([rule], "hyg_bad.py")
        assert findings, f"{rule} found nothing"
        assert all(finding.rule == rule for finding in findings)
        assert fragment in findings[0].message

    def test_time_rule_sees_subtraction_and_deadline(self):
        findings = run(["TIM001"], "hyg_bad.py")
        reasons = " | ".join(finding.message for finding in findings)
        assert "subtraction" in reasons
        assert "addition" in reasons or "comparison" in reasons
        assert "assigned to 'start'" in reasons

    def test_clean_file_is_clean(self):
        assert (
            run(["TIM001", "EXC001", "ARG001", "THR001"], "hyg_clean.py")
            == []
        )

    def test_wall_clock_timestamp_not_flagged(self):
        """``manifest["created"] = time.time()`` is a timestamp, not a
        duration — the rule must leave it alone."""
        findings = run(["TIM001"], "hyg_clean.py")
        assert findings == []


# ----------------------------------------------------------------------
# Framework behavior
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_five_rule_families_registered(self):
        from repro.analysis import ALL_RULES

        families = {rule.id[:3] for rule in ALL_RULES}
        assert {"LCK", "WIRE"[:3], "MET", "RES", "TIM"} <= families

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            make_rules(["NOPE999"])

    def test_ast_parsed_once_per_file(self):
        analyzer = Analyzer(make_rules(None), root=FIXTURES)
        analyzer.run([FIXTURES / "lck_clean.py"])
        first = analyzer.sources["lck_clean.py"]
        analyzer.run([FIXTURES / "lck_clean.py"])
        assert analyzer.sources["lck_clean.py"] is first

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        analyzer = Analyzer(make_rules(None), root=tmp_path)
        findings = analyzer.run([bad])
        assert len(findings) == 1
        assert findings[0].rule == "PARSE001"

    def test_bare_suppression_silences_all_rules(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text(
            "def swallow(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except:  # repro: ignore\n"
            "        pass\n"
        )
        analyzer = Analyzer(make_rules(["EXC001"]), root=tmp_path)
        assert analyzer.run([module]) == []

    def test_comment_line_suppression_covers_next_line(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text(
            "def swallow(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    # deliberate: last-resort guard\n"
            "    # repro: ignore[EXC001]\n"
            "    except:\n"
            "        pass\n"
        )
        analyzer = Analyzer(make_rules(["EXC001"]), root=tmp_path)
        assert analyzer.run([module]) == []
