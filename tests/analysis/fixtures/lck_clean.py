"""Correct locking in every idiom the serving stack uses: with-blocks,
a Condition aliased to the lock, ``*_locked`` helpers, and
caller-holds comments.  Must produce zero findings."""

import threading


class CleanQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending = []
        self._closed = False

    def push(self, item):
        with self._not_empty:
            if self._closed:
                raise RuntimeError("closed")
            self._pending.append(item)
            self._not_empty.notify()

    def pop_all(self):
        with self._lock:
            drained = list(self._pending)
            self._drain_locked()
            return drained

    def _drain_locked(self):
        self._pending.clear()

    def _requeue(self, items):
        # Caller holds self._lock.
        self._pending.extend(items)

    def close(self):
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self):
        with self._lock:
            return len(self._pending)
