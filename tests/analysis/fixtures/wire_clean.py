"""A picklable wire class: plain data only.  Zero findings."""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class WorkerHello:
    worker_index: int
    pid: int
    segment: str
    layer_names: Tuple[str, ...] = ()
    totals: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None


def announce(conn, hello):
    conn.send(hello)
