"""Observability for the serving stack: tracing, metrics, recording.

The serving stack rebuilds dense weights from compressed payloads on
the hot path, so the paper's storage-vs-compute trade shows up *per
request*: time queued, time rebuilding (per layer, per codec, hit or
miss), time computing.  This package makes those costs visible:

- :mod:`repro.observability.tracing` — nestable :class:`Span`s with a
  per-request trace id, collected into a bounded ring buffer;
- :mod:`repro.observability.metrics` — typed :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments in a
  :class:`MetricsRegistry`, the single store the serving summaries
  read from, with Prometheus/JSON exporters;
- :mod:`repro.observability.record` — :class:`TraceRecorder` /
  :class:`TraceReader` for JSONL request records that replay as
  request schedules (the policy-lab input format);
- :mod:`repro.observability.handle` — the :class:`Observability`
  facade engines accept (``NULL_OBSERVABILITY`` when disabled).

Quick start::

    from repro.observability import Observability, TraceRecorder

    obs = Observability(recorder=TraceRecorder("trace.jsonl"))
    engine = InferenceEngine(model, handle, observability=obs)
    ...
    print(obs.to_prometheus_text())
    print(obs.latency_breakdown())
"""

from repro.observability.handle import (
    NULL_OBSERVABILITY,
    Observability,
    REQUEST_PHASES,
    RequestTrace,
)
from repro.observability.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.observability.record import (
    ReplayRequest,
    TraceReader,
    TraceRecorder,
    jsonable,
)
from repro.observability.tracing import (
    DEFAULT_SPAN_CAPACITY,
    Span,
    SpanCollector,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVABILITY",
    "Observability",
    "REQUEST_PHASES",
    "ReplayRequest",
    "RequestTrace",
    "Span",
    "SpanCollector",
    "TraceReader",
    "TraceRecorder",
    "Tracer",
    "jsonable",
    "render_prometheus",
]
