"""Software rebuild engine: dense weights on demand from encoded payloads.

The serving-side analogue of the accelerator's RE
(:mod:`repro.hardware.smartexchange.rebuild_engine`): the encoded
payloads live in memory permanently (they are small), and dense layer
weights are *rebuilt on read* by dispatching each layer's
:class:`~repro.codecs.LayerPayload` through the codec registry — for
the paper's ``smartexchange`` codec that means decoding nibble codes,
dequantizing the basis, multiplying, and folding matrices back through
the :class:`~repro.core.reshape.ReshapePlan`; for ``quant-*`` /
``prune-csr`` / ``dense`` bundles the registered decoder runs instead,
through the identical cache.

A capacity-bounded LRU cache keeps hot layers dense so they pay the
rebuild compute once; cold layers are evicted and rebuilt on their next
access.  The cache counters expose the realized storage-vs-compute
trade: ``bytes_saved`` is the dense footprint *not* held resident,
``rebuilt_bytes`` is the compute paid for it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.codecs import LayerPayload, get_codec
from repro.core.reshape import from_matrices
from repro.core.serialize import payload_weight
from repro.serving.artifacts import LayerArtifactSpec


@dataclass
class RebuildCacheStats:
    """Counters for the rebuild-on-read cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rebuilds: int = 0
    rebuilt_bytes: int = 0  # dense bytes produced by rebuild compute
    rebuild_seconds: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rebuilds": self.rebuilds,
            "rebuilt_bytes": self.rebuilt_bytes,
            "rebuild_seconds": self.rebuild_seconds,
            "hit_rate": self.hit_rate,
        }


def rebuild_layer_weight(
    payload: Union[LayerPayload, List[Dict[str, np.ndarray]]],
    spec: LayerArtifactSpec,
) -> np.ndarray:
    """Decode one layer's payload into its dense weight tensor.

    Dispatches through the codec registry on ``payload.codec``.  A raw
    list of SmartExchange matrix dicts (the pre-codec
    ``core.serialize.load_payloads`` shape) is still accepted and
    decoded via the spec's reshape plan.
    """
    if isinstance(payload, (list, tuple)):
        matrices = [payload_weight(image) for image in payload]
        weight = from_matrices(matrices, spec.plan)
    else:
        weight = get_codec(payload.codec).decode(payload)
    if tuple(weight.shape) != tuple(spec.weight_shape):
        weight = weight.reshape(spec.weight_shape)
    return weight


class RebuildEngine:
    """LRU-cached rebuild-on-read over one model's compressed payloads.

    ``capacity_bytes`` bounds the *dense* bytes held in the cache (the
    analogue of the accelerator's on-chip weight buffer).  ``None``
    means unbounded — every layer is rebuilt at most once.

    The engine is thread-safe and shared by the serving worker pool:
    cache bookkeeping is guarded by one internal lock, rebuild compute
    runs *outside* it (hits never wait behind a rebuild of another
    layer), and concurrent cold misses on the same layer are
    de-duplicated — the first caller rebuilds while the rest wait on a
    per-layer in-flight event and then read the cached result.
    """

    def __init__(
        self,
        payloads: Mapping[str, LayerPayload],
        specs: Dict[str, LayerArtifactSpec],
        capacity_bytes: Optional[int] = None,
    ) -> None:
        missing = set(specs) - set(payloads)
        if missing:
            raise KeyError(f"payloads missing for layers: {sorted(missing)}")
        self._payloads = payloads
        self._specs = specs
        self.capacity_bytes = capacity_bytes
        self._cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._cached_bytes = 0
        self.stats = RebuildCacheStats()
        # Guards the cache, the stats, and the in-flight table.  Rebuild
        # compute itself never runs under this lock.
        self._lock = threading.Lock()
        self._inflight: Dict[str, "_InFlightRebuild"] = {}

    # ------------------------------------------------------------------
    @property
    def layer_names(self) -> List[str]:
        return list(self._specs)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._cached_bytes

    @property
    def cached_layers(self) -> List[str]:
        with self._lock:
            return list(self._cache)

    @property
    def total_dense_bytes(self) -> int:
        """Resident bytes if every layer were cached dense.

        Counts the float64 arrays the NumPy substrate materializes (the
        manifest's ``dense_bytes`` counts the FP32 checkpoint instead).
        """
        itemsize = np.dtype(np.float64).itemsize
        return sum(
            int(np.prod(spec.weight_shape)) * itemsize
            for spec in self._specs.values()
        )

    @property
    def bytes_saved(self) -> int:
        """Dense bytes not resident right now (paid for with rebuilds)."""
        return self.total_dense_bytes - self._cached_bytes

    # ------------------------------------------------------------------
    def layer_weight(self, name: str) -> np.ndarray:
        """The dense weight for ``name`` (cached or rebuilt).

        The returned array is the cache's copy and is marked read-only;
        callers install it with ``module.weight.data[...] = w``.

        Safe for concurrent callers: hits return immediately, and only
        one thread rebuilds a cold layer at a time — the rest wait on
        the in-flight rebuild and share its result (counted as hits,
        since they paid no rebuild compute).  If a rebuild fails, its
        waiters retry, so each caller raises its own exception.
        """
        if name not in self._specs:
            raise KeyError(f"unknown layer {name!r}")
        while True:
            with self._lock:
                cached = self._cache.get(name)
                if cached is not None:
                    self.stats.hits += 1
                    self._cache.move_to_end(name)
                    return cached
                flight = self._inflight.get(name)
                if flight is None:
                    flight = self._inflight[name] = _InFlightRebuild()
                    self.stats.misses += 1
                    break
            flight.event.wait()
            if flight.weight is not None:
                with self._lock:
                    self.stats.hits += 1
                return flight.weight
            # The in-flight rebuild failed; loop and rebuild ourselves.
        try:
            weight, seconds = self._rebuild(name)
        except BaseException:
            with self._lock:
                self._inflight.pop(name, None)
            flight.event.set()
            raise
        flight.weight = weight  # published before event.set()
        with self._lock:
            self.stats.rebuilds += 1
            self.stats.rebuilt_bytes += weight.nbytes
            self.stats.rebuild_seconds += seconds
            self._admit(name, weight)
            self._inflight.pop(name, None)
        flight.event.set()
        return weight

    def _rebuild(self, name: str) -> "tuple[np.ndarray, float]":
        """Decode one layer (no locking, no stats): (weight, seconds)."""
        start = time.perf_counter()
        weight = rebuild_layer_weight(self._payloads[name], self._specs[name])
        seconds = time.perf_counter() - start
        weight.setflags(write=False)
        return weight, seconds

    def _admit(self, name: str, weight: np.ndarray) -> None:
        # Caller holds self._lock.
        if self.capacity_bytes is not None and weight.nbytes > self.capacity_bytes:
            return  # larger than the whole cache: serve uncached
        self._cache[name] = weight
        self._cached_bytes += weight.nbytes
        while (
            self.capacity_bytes is not None
            and self._cached_bytes > self.capacity_bytes
        ):
            evicted_name, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= evicted.nbytes
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Touch every layer once (fills the cache up to capacity)."""
        for name in self._specs:
            self.layer_weight(name)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0


class _InFlightRebuild:
    """One cold-miss rebuild in progress; waiters block on ``event``."""

    __slots__ = ("event", "weight")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.weight: Optional[np.ndarray] = None
