"""Shared engine for the Figs. 10-12 accelerator comparison.

Simulates the full benchmark suite (seven models, three datasets) on the
SmartExchange accelerator and the four baselines, excluding FC layers
(the paper's fairness rule for SCNN) and excluding EfficientNet-B0 for
SCNN (SCNN cannot run squeeze-and-excite layers).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware import (
    BitPragmatic,
    CambriconX,
    DianNao,
    ModelResult,
    SCNN,
    SmartExchangeAccelerator,
    build_workloads,
)
from repro.hardware.workloads import BENCHMARK_SUITE

ACCELERATOR_ORDER = ("diannao", "scnn", "cambricon-x", "bit-pragmatic", "smartexchange")

# (model, accelerator) pairs the paper skips.
_SKIPPED = {("efficientnet_b0", "scnn")}


def suite_results(
    include_fc: bool = False, batch: int = 1
) -> Dict[str, Dict[str, ModelResult]]:
    """{model: {accelerator: ModelResult}} over the benchmark suite."""
    accelerators = [DianNao(), SCNN(), CambriconX(), BitPragmatic(),
                    SmartExchangeAccelerator()]
    out: Dict[str, Dict[str, ModelResult]] = {}
    for model_name, _dataset in BENCHMARK_SUITE:
        workloads = build_workloads(model_name, include_fc=include_fc, batch=batch)
        per_model: Dict[str, ModelResult] = {}
        for accelerator in accelerators:
            if (model_name, accelerator.name) in _SKIPPED:
                continue
            per_model[accelerator.name] = accelerator.simulate_model(
                workloads, model_name
            )
        out[model_name] = per_model
    return out


def suite_datasets() -> List[Tuple[str, str]]:
    return list(BENCHMARK_SUITE)
