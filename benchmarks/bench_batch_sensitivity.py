"""Bench: batch-size sensitivity of the SmartExchange advantage (§I)."""

from benchmarks.conftest import run_and_print
from repro.experiments import batch_sensitivity


def bench_batch_sensitivity(benchmark):
    result = run_and_print(benchmark, batch_sensitivity.run)
    gains = result.column("energy_gain_x")
    assert gains[0] >= max(gains)  # largest advantage at batch 1
