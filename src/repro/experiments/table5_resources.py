"""Tables IV & V: design considerations and resource parity."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware.resources import (
    BIT_SERIAL_LANES,
    INPUT_GB_KB,
    MULTIPLIERS_8BIT,
    OUTPUT_GB_KB,
    WEIGHT_GB_KB,
)
from repro.hardware.smartexchange.config import DEFAULT_ACCELERATOR_CONFIG

DESIGN_CONSIDERATIONS = {
    "diannao": "dense models",
    "cambricon-x": "unstructured weight sparsity",
    "scnn": "unstructured weight sparsity + activation sparsity",
    "bit-pragmatic": "bit-level activation sparsity",
    "smartexchange": (
        "vector-wise weight sparsity + bit-level and vector-wise "
        "activation sparsity"
    ),
}


def run() -> ExperimentResult:
    table = ExperimentResult("Tables IV & V — design considerations and resources")
    config = DEFAULT_ACCELERATOR_CONFIG
    for name, consideration in DESIGN_CONSIDERATIONS.items():
        table.rows.append({"accelerator": name, "design_consideration": consideration})
    table.rows.append({
        "accelerator": "resources",
        "design_consideration": (
            f"dimM={config.dim_m}, dimC={config.dim_c}, dimF={config.dim_f}; "
            f"{BIT_SERIAL_LANES} bit-serial lanes == {MULTIPLIERS_8BIT} 8-bit "
            f"multipliers; input GB {INPUT_GB_KB:.0f}KB, weight "
            f"{WEIGHT_GB_KB:.0f}KB, output GB {OUTPUT_GB_KB:.0f}KB; "
            f"8-bit activations"
        ),
    })
    return table
