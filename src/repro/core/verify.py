"""Invariant verification for compressed models.

``verify_compression`` audits a live model against its
:class:`~repro.core.model_transform.ModelCompressionReport`: every claim
the SmartExchange form makes (power-of-2 coefficients, weights equal to
the rebuild, sparsity bookkeeping, storage arithmetic) is re-checked
from scratch.  Returns a list of human-readable violations — empty means
the model is exactly in SmartExchange form.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import nn
from repro.core.layer_transform import LayerCompression, rebuild_conv_weight
from repro.core.model_transform import ModelCompressionReport


def _check_pow2(layer: LayerCompression, violations: List[str]) -> None:
    for index, decomposition in enumerate(layer.decompositions):
        coefficient = decomposition.coefficient
        nonzero = coefficient[coefficient != 0]
        if nonzero.size == 0:
            continue
        logs = np.log2(np.abs(nonzero))
        if not np.allclose(logs, np.round(logs)):
            violations.append(
                f"{layer.name}[{index}]: coefficient entries are not "
                f"powers of two"
            )
        window = decomposition.omega
        exponents = np.round(logs).astype(int)
        if exponents.min() < window.p_min or exponents.max() > window.p_max:
            violations.append(
                f"{layer.name}[{index}]: exponents escape the ΩP window "
                f"[{window.p_min}, {window.p_max}]"
            )


def _check_rebuild(layer: LayerCompression, weight: np.ndarray,
                   violations: List[str], atol: float) -> None:
    rebuilt = (
        rebuild_conv_weight(layer) if weight.ndim == 4 else layer.rebuild_weight()
    )
    if rebuilt.shape != weight.shape:
        violations.append(
            f"{layer.name}: rebuild shape {rebuilt.shape} != weight "
            f"shape {weight.shape}"
        )
        return
    error = np.abs(rebuilt - weight).max()
    if error > atol:
        violations.append(
            f"{layer.name}: live weight deviates from Ce@B by {error:.2e} "
            f"(> {atol:.0e}) — the model drifted since the last projection"
        )


def _check_storage(layer: LayerCompression, violations: List[str]) -> None:
    # Recompute from the decompositions with the same bit widths the
    # report used; any mismatch means the bookkeeping is stale.
    recomputed = 0
    for decomposition in layer.decompositions:
        rows, cols = decomposition.coefficient.shape
        alive = int(np.any(decomposition.coefficient != 0, axis=1).sum())
        recomputed += alive * cols * 4 + rows + decomposition.basis.size * 8 + 8
    if recomputed != layer.storage.total_bits:
        violations.append(
            f"{layer.name}: storage accounting stale "
            f"({layer.storage.total_bits} recorded vs {recomputed} recomputed)"
        )


def verify_compression(
    model: nn.Module,
    report: ModelCompressionReport,
    atol: float = 1e-9,
) -> List[str]:
    """Audit every compressed layer; return violations (empty = clean).

    Checks, per layer: (1) all coefficient entries are signed powers of
    two inside the recorded ΩP window; (2) the live module weight equals
    the {Ce, B} rebuild within ``atol``; (3) the recorded storage bits
    match a from-scratch recount (assuming the default 4/8-bit widths).
    """
    violations: List[str] = []
    modules = dict(model.named_modules())
    for layer in report.layers:
        module = modules.get(layer.name)
        if module is None:
            violations.append(f"{layer.name}: module missing from model")
            continue
        _check_pow2(layer, violations)
        _check_rebuild(layer, module.weight.data, violations, atol)
        _check_storage(layer, violations)
    return violations
