"""Quickstart: SmartExchange a small CNN in under a minute.

Trains a small conv net on the synthetic CIFAR-10 stand-in, applies the
SmartExchange decomposition post-hoc, and prints the compression rate
and the accuracy before/after — the paper's core algorithm in five
calls.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.datasets import synthetic_cifar10


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = synthetic_cifar10(train_per_class=12, test_per_class=6)

    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, dataset.num_classes, rng=rng),
    )

    print("training a small CNN on the synthetic CIFAR-10 stand-in ...")
    nn.fit(model, dataset.train_images, dataset.train_labels,
           dataset.test_images, dataset.test_labels, epochs=6, lr=0.03)
    before = nn.evaluate(model, dataset.test_images, dataset.test_labels)

    # The SmartExchange decomposition: W ~= Ce x B with Ce sparse and
    # power-of-2 (theta and the sparsity target are the paper's knobs).
    config = SmartExchangeConfig(theta=4e-3, max_iterations=10,
                                 target_row_sparsity=0.3)
    _, report = apply_smartexchange(model, config, model_name="quickstart-cnn")
    after = nn.evaluate(model, dataset.test_images, dataset.test_labels)

    print(f"accuracy before  : {before:6.1%}")
    print(f"accuracy after   : {after:6.1%}")
    print(f"compression rate : {report.compression_rate:5.1f}x "
          f"({report.original_mb:.3f} MB -> {report.param_mb:.3f} MB)")
    print(f"vector sparsity  : {report.vector_sparsity:6.1%}")
    for layer in report.layers:
        print(f"  {layer.name:10s} kind={layer.kind:10s} "
              f"CR={layer.compression_rate:5.1f}x "
              f"row-sparsity={layer.vector_sparsity:5.1%}")


if __name__ == "__main__":
    main()
