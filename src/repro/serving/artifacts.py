"""Versioned on-disk store for compressed-model artifacts.

A *bundle* is one published model version::

    <root>/<name>/<version>/
        manifest.json   # layer specs, codec, sizes, checksums
        weights.npz     # the encoded payloads (any registered codec)
        residual.npz    # optional: every parameter/buffer NOT encoded
                        # (biases, BN state, skipped layers)

``weights.npz`` holds one :class:`~repro.codecs.LayerPayload` per
encoded layer; the manifest records, per layer, the codec that encoded
it plus everything needed to validate the rebuilt tensor against the
serving skeleton, so a reader never needs the original model (or the
compressor that produced the bundle) to reconstruct dense weights.

Three publish paths cover the whole compression zoo:

- :meth:`ArtifactStore.publish` — a SmartExchange
  :class:`~repro.core.model_transform.ModelCompressionReport` (the
  paper's encoding; kept for compatibility with the PR-1 API).
- :meth:`ArtifactStore.publish_compressed` — a baseline
  :class:`~repro.compression.base.CompressionReport` whose compressor
  emitted payloads (pruning / quantization baselines).
- :meth:`ArtifactStore.publish_payloads` / :meth:`publish_model` — raw
  ``{layer: LayerPayload}`` maps, e.g. the ``dense`` passthrough.

Backward compatibility: manifests written before the codec field
existed (format 1) and their SmartExchange-only ``weights.npz`` layout
still load and serve — the missing ``codec`` defaults to
``"smartexchange"`` and the legacy npz is adapted lazily on read.

Checksums (SHA-256 per file) gate every load: a flipped byte raises
:class:`ArtifactCorruptionError` instead of serving garbage weights.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.codecs import (
    LayerPayload,
    LazyPayloadFile,
    SmartExchangeCodec,
    WeightCodec,
    encode_model,
    get_codec,
    payload_matrix_count,
    write_payloads_npz,
)
from repro.codecs.smartexchange import plan_from_json, plan_to_json
from repro.core.config import SmartExchangeConfig
from repro.core.model_transform import ModelCompressionReport
from repro.core.reshape import ReshapePlan

MANIFEST_FORMAT = 2
_SUPPORTED_FORMATS = (1, 2)
WEIGHTS_FILE = "weights.npz"
RESIDUAL_FILE = "residual.npz"
MANIFEST_FILE = "manifest.json"
FP32_BYTES = 4
DEFAULT_CODEC = "smartexchange"  # what pre-codec manifests encoded


class ArtifactError(Exception):
    """Base error for artifact-store failures."""


class ArtifactNotFoundError(ArtifactError, KeyError):
    """The requested model/version is not in the store."""


class ArtifactCorruptionError(ArtifactError):
    """A bundle file does not match its manifest checksum."""


@dataclass(frozen=True)
class LayerArtifactSpec:
    """Everything needed to rebuild one layer's dense weight.

    ``codec`` names the registered decoder; ``plan`` / ``matrix_count``
    describe the SmartExchange reshape and are ``None`` / irrelevant
    for other codecs (their payloads are self-describing).
    """

    name: str
    kind: str  # "conv" | "fc" | "pointwise" | "weight"
    weight_shape: tuple  # shape of the tensor installed into the model
    codec: str = DEFAULT_CODEC
    matrix_count: int = 1
    plan: Optional[ReshapePlan] = None

    def to_json(self) -> Dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "weight_shape": list(self.weight_shape),
            "codec": self.codec,
            "matrix_count": self.matrix_count,
        }
        if self.plan is not None:
            out["plan"] = plan_to_json(self.plan)
        return out

    @staticmethod
    def from_json(data: Dict) -> "LayerArtifactSpec":
        plan = data.get("plan")
        return LayerArtifactSpec(
            name=data["name"],
            kind=data["kind"],
            weight_shape=tuple(data["weight_shape"]),
            codec=data.get("codec", DEFAULT_CODEC),
            matrix_count=int(data["matrix_count"]),
            plan=None if plan is None else plan_from_json(plan),
        )

    @property
    def dense_bytes(self) -> int:
        return int(np.prod(self.weight_shape)) * FP32_BYTES


@dataclass
class ArtifactManifest:
    """The bundle descriptor written next to the payload files."""

    name: str
    version: str
    model_name: str
    created: float
    layers: List[LayerArtifactSpec] = field(default_factory=list)
    codec: str = DEFAULT_CODEC  # bundle-level codec ("mixed" if varied)
    payload_bytes: int = 0  # analytic encoded bytes (the DRAM image)
    dense_bytes: int = 0  # FP32 bytes of the weights the payloads replace
    compression_rate: float = 1.0
    vector_sparsity: float = 0.0
    checksums: Dict[str, str] = field(default_factory=dict)
    file_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def bundle_bytes(self) -> int:
        """Total on-disk bytes of the payload files."""
        return sum(self.file_bytes.values())

    @property
    def bytes_saved(self) -> int:
        """Dense FP32 bytes avoided by storing the encoded form."""
        return self.dense_bytes - self.payload_bytes

    def layer(self, name: str) -> LayerArtifactSpec:
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def to_json(self) -> Dict:
        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "version": self.version,
            "model_name": self.model_name,
            "created": self.created,
            "codec": self.codec,
            "layers": [spec.to_json() for spec in self.layers],
            "payload_bytes": self.payload_bytes,
            "dense_bytes": self.dense_bytes,
            "compression_rate": self.compression_rate,
            "vector_sparsity": self.vector_sparsity,
            "checksums": self.checksums,
            "file_bytes": self.file_bytes,
        }

    @staticmethod
    def from_json(data: Dict) -> "ArtifactManifest":
        if int(data.get("format", -1)) not in _SUPPORTED_FORMATS:
            raise ArtifactError(
                f"unsupported manifest format {data.get('format')!r}"
            )
        # Pre-codec manifests (format 1) predate the codec field; every
        # bundle they describe is the SmartExchange encoding.
        return ArtifactManifest(
            name=data["name"],
            version=data["version"],
            model_name=data["model_name"],
            created=float(data["created"]),
            codec=data.get("codec", DEFAULT_CODEC),
            layers=[LayerArtifactSpec.from_json(l) for l in data["layers"]],
            payload_bytes=int(data["payload_bytes"]),
            dense_bytes=int(data["dense_bytes"]),
            compression_rate=float(data["compression_rate"]),
            vector_sparsity=float(data["vector_sparsity"]),
            checksums=dict(data["checksums"]),
            file_bytes={k: int(v) for k, v in data["file_bytes"].items()},
        )


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _spec_from_payload(name: str, payload: LayerPayload) -> LayerArtifactSpec:
    """Derive the manifest spec for one encoded layer."""
    if payload.codec == "smartexchange" and not payload.meta.get("empty"):
        return LayerArtifactSpec(
            name=name,
            kind=payload.meta["kind"],
            weight_shape=tuple(payload.weight_shape),
            codec=payload.codec,
            matrix_count=payload_matrix_count(payload),
            plan=plan_from_json(payload.meta["plan"]),
        )
    ndim = len(payload.weight_shape)
    kind = "conv" if ndim == 4 else "fc" if ndim == 2 else "weight"
    return LayerArtifactSpec(
        name=name,
        kind=kind,
        weight_shape=tuple(payload.weight_shape),
        codec=payload.codec,
        matrix_count=1,
    )


def _residual_state(model, compressed_layer_names: List[str]) -> Dict[str, np.ndarray]:
    """Every parameter/buffer the payloads do NOT cover."""
    compressed_keys = {f"{name}.weight" for name in compressed_layer_names}
    state = model.state_dict()
    return {k: v for k, v in state.items() if k not in compressed_keys}


class ArtifactStore:
    """Filesystem-backed store of versioned compressed-model bundles."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_payloads(
        self,
        payloads: Mapping[str, LayerPayload],
        name: str,
        model_name: Optional[str] = None,
        version: Optional[str] = None,
        model=None,
        compression_rate: Optional[float] = None,
        vector_sparsity: float = 0.0,
    ) -> ArtifactManifest:
        """Pack ``{layer: payload}`` into a new immutable bundle.

        The generic publish path every codec goes through.  ``model``
        (the live ``nn.Module``) is optional; when given, its
        non-encoded parameters and buffers are stored alongside so the
        serving engine can reconstruct the full network.  A bundle may
        mix codecs per layer (the manifest's bundle-level ``codec``
        reads ``"mixed"`` then); decode dispatch is per layer.
        """
        if not payloads:
            raise ArtifactError("refusing to publish an empty payload map")
        version = version or self._next_version(name)
        bundle = self.root / name / version
        if bundle.exists():
            raise ArtifactError(f"bundle {name}:{version} already exists")
        codec_set = sorted({p.codec for p in payloads.values()})
        bundle_codec = codec_set[0] if len(codec_set) == 1 else "mixed"
        # Stage into a temp dir and rename into place so a mid-publish
        # failure never leaves a half-written (manifest-less) bundle.
        staging = bundle.parent / f".{version}.staging-{os.getpid()}"
        staging.mkdir(parents=True)
        try:
            payload_bytes = write_payloads_npz(staging / WEIGHTS_FILE, payloads)
            files = [WEIGHTS_FILE]
            if model is not None:
                residual = _residual_state(model, list(payloads))
                np.savez_compressed(staging / RESIDUAL_FILE, **residual)
                files.append(RESIDUAL_FILE)

            specs = [
                _spec_from_payload(layer, payload)
                for layer, payload in payloads.items()
            ]
            dense_bytes = sum(spec.dense_bytes for spec in specs)
            if compression_rate is None:
                compression_rate = (
                    dense_bytes / payload_bytes if payload_bytes else 1.0
                )
            manifest = ArtifactManifest(
                name=name,
                version=version,
                model_name=model_name or name,
                created=time.time(),
                layers=specs,
                codec=bundle_codec,
                payload_bytes=payload_bytes,
                dense_bytes=dense_bytes,
                compression_rate=compression_rate,
                vector_sparsity=vector_sparsity,
                checksums={f: _sha256(staging / f) for f in files},
                file_bytes={f: (staging / f).stat().st_size for f in files},
            )
            with open(staging / MANIFEST_FILE, "w") as handle:
                json.dump(manifest.to_json(), handle, indent=2, sort_keys=True)
            staging.rename(bundle)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return manifest

    def publish(
        self,
        report: ModelCompressionReport,
        config: SmartExchangeConfig,
        name: Optional[str] = None,
        version: Optional[str] = None,
        model=None,
    ) -> ArtifactManifest:
        """Publish a SmartExchange-transformed model (the paper's path)."""
        codec = SmartExchangeCodec(config)
        payloads = {
            layer.name: codec.payload_from_compression(layer, config)
            for layer in report.layers
        }
        return self.publish_payloads(
            payloads,
            name=name or report.model_name,
            model_name=report.model_name,
            version=version,
            model=model,
            compression_rate=report.compression_rate,
            vector_sparsity=report.vector_sparsity,
        )

    def publish_compressed(
        self,
        report,
        name: Optional[str] = None,
        version: Optional[str] = None,
        model=None,
    ) -> ArtifactManifest:
        """Publish a baseline-compressor ``CompressionReport``.

        Requires the compressor to have emitted payloads (every
        :mod:`repro.compression` technique does).
        """
        if not getattr(report, "payloads", None):
            raise ArtifactError(
                f"compression report {report.technique!r} carries no "
                "payloads; re-run the compressor on this repo version"
            )
        return self.publish_payloads(
            report.payloads,
            name=name or report.model_name,
            model_name=report.model_name,
            version=version,
            model=model,
            compression_rate=report.compression_rate,
        )

    def publish_model(
        self,
        model,
        name: str,
        codec: Union[str, WeightCodec] = "dense",
        version: Optional[str] = None,
    ) -> ArtifactManifest:
        """Encode every conv / linear weight of ``model`` and publish.

        The one-call path for baselines that need no compressor state —
        e.g. ``codec="dense"`` for the uncompressed reference bundle.
        """
        if isinstance(codec, str):
            codec = get_codec(codec)
        payloads = encode_model(model, codec)
        return self.publish_payloads(
            payloads, name=name, version=version, model=model
        )

    def _next_version(self, name: str) -> str:
        numbers = []
        for version in self.versions(name):
            if version.startswith("v") and version[1:].isdigit():
                numbers.append(int(version[1:]))
        return f"v{max(numbers, default=0) + 1}"

    # ------------------------------------------------------------------
    # Listing / resolution
    # ------------------------------------------------------------------
    def models(self) -> List[str]:
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and any(p.iterdir())
        )

    def versions(self, name: str) -> List[str]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted(
            p.name for p in model_dir.iterdir()
            if not p.name.startswith(".") and (p / MANIFEST_FILE).is_file()
        )

    def latest_version(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            raise ArtifactNotFoundError(f"no bundles for model {name!r}")
        return max(versions, key=lambda v: self.manifest(name, v).created)

    def _bundle_dir(self, name: str, version: Optional[str]) -> Path:
        version = version or self.latest_version(name)
        bundle = self.root / name / version
        if not (bundle / MANIFEST_FILE).is_file():
            raise ArtifactNotFoundError(f"no bundle {name}:{version}")
        return bundle

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def manifest(self, name: str, version: Optional[str] = None) -> ArtifactManifest:
        bundle = self._bundle_dir(name, version)
        with open(bundle / MANIFEST_FILE) as handle:
            return ArtifactManifest.from_json(json.load(handle))

    def verify(self, name: str, version: Optional[str] = None) -> ArtifactManifest:
        """Checksum every payload file; raise on any mismatch."""
        manifest = self.manifest(name, version)
        bundle = self.root / manifest.name / manifest.version
        for filename, expected in manifest.checksums.items():
            path = bundle / filename
            if not path.is_file():
                raise ArtifactCorruptionError(
                    f"{manifest.name}:{manifest.version} is missing {filename}"
                )
            actual = _sha256(path)
            if actual != expected:
                raise ArtifactCorruptionError(
                    f"{manifest.name}:{manifest.version}/{filename} checksum "
                    f"mismatch: expected {expected[:12]}…, got {actual[:12]}…"
                )
        return manifest

    def load_payloads(
        self,
        name: str,
        version: Optional[str] = None,
        verify: bool = True,
        lazy: bool = True,
    ) -> Mapping[str, LayerPayload]:
        """Checksum-verified payload map: ``{layer: LayerPayload}``.

        The returned mapping is *lazy*: only the per-layer index is
        read up front, and a layer's arrays are decompressed on first
        access (``lazy=False`` materializes everything now).  Legacy
        SmartExchange-only ``weights.npz`` files are adapted on the fly
        using the manifest's reshape plans.

        ``verify=False`` skips the hash pass — for callers that already
        ran :meth:`verify` on this bundle (e.g. the registry).
        """
        manifest = (
            self.verify(name, version) if verify
            else self.manifest(name, version)
        )
        bundle = self.root / manifest.name / manifest.version
        legacy_layers = {
            spec.name: (spec.kind, spec.plan)
            for spec in manifest.layers
            if spec.plan is not None
        }
        payloads = LazyPayloadFile(
            bundle / WEIGHTS_FILE, legacy_layers=legacy_layers
        )
        return payloads.materialize() if not lazy else payloads

    def load_residual(
        self, name: str, version: Optional[str] = None, verify: bool = True
    ) -> Optional[Dict[str, np.ndarray]]:
        """The stored non-compressed state, or None if not published."""
        manifest = (
            self.verify(name, version) if verify
            else self.manifest(name, version)
        )
        if RESIDUAL_FILE not in manifest.checksums:
            return None
        bundle = self.root / manifest.name / manifest.version
        with np.load(bundle / RESIDUAL_FILE, allow_pickle=False) as data:
            return {key: data[key].copy() for key in data.files}

    def bundle_bytes(self, name: str, version: Optional[str] = None) -> int:
        """Actual on-disk bytes of the bundle's payload files."""
        return self.manifest(name, version).bundle_bytes
