"""Tests for the full-size layer inventories (and the model tracer)."""

import numpy as np
import pytest

from repro.hardware.layers import LayerKind, trace_layer_specs
from repro.hardware.modelspecs import (
    MODEL_SPEC_BUILDERS,
    deeplabv3plus_specs,
    efficientnet_b0_specs,
    mlp1_specs,
    mlp2_specs,
    mobilenet_v2_specs,
    model_specs,
    resnet50_specs,
    resnet164_specs,
    total_macs,
    total_weight_count,
    vgg11_specs,
    vgg19_specs,
)
from repro.nn import models


class TestKnownFullSizeNumbers:
    def test_resnet50_parameter_count(self):
        # ResNet-50 conv+fc weights: ~25.5 M parameters.
        count = total_weight_count(resnet50_specs())
        assert abs(count - 25.5e6) / 25.5e6 < 0.03

    def test_resnet50_mac_count(self):
        # ~4.1 GMACs at 224x224.
        macs = total_macs(resnet50_specs())
        assert abs(macs - 4.1e9) / 4.1e9 < 0.05

    def test_vgg11_is_fc_dominated(self):
        # Paper Fig. 13: VGG11's FC weights are up to ~95.66% of its size.
        specs = vgg11_specs()
        fc_weights = sum(s.weight_count for s in specs
                         if s.kind == LayerKind.FC)
        share = fc_weights / total_weight_count(specs)
        assert share > 0.90

    def test_vgg19_cifar_parameter_count(self):
        # Paper Table II: VGG19 (CIFAR head) = 80.13 MB FP32 ~ 20 M params.
        count = total_weight_count(vgg19_specs())
        assert abs(count - 20.0e6) / 20.0e6 < 0.05

    def test_resnet164_parameter_count(self):
        # Paper Table II: 6.75 MB FP32 ~ 1.7 M params.
        count = total_weight_count(resnet164_specs())
        assert abs(count - 1.7e6) / 1.7e6 < 0.05

    def test_mobilenet_mac_count(self):
        # ~300 MMACs at 224x224 (the MobileNetV2 paper's number).
        macs = total_macs(mobilenet_v2_specs())
        assert abs(macs - 300e6) / 300e6 < 0.15

    def test_efficientnet_b0_mac_count(self):
        # ~390 MMACs at 224x224.
        macs = total_macs(efficientnet_b0_specs())
        assert abs(macs - 390e6) / 390e6 < 0.2

    def test_mlp_sizes(self):
        assert abs(total_weight_count(mlp1_specs()) * 4 / 2**20 - 14.125) < 0.2
        assert abs(total_weight_count(mlp2_specs()) * 4 / 2**20 - 1.07) < 0.06


class TestInventoryStructure:
    def test_registry_contains_all_benchmarks(self):
        for name in ("vgg11", "vgg19", "resnet50", "resnet164", "mobilenetv2",
                     "efficientnet_b0", "deeplabv3plus", "mlp1", "mlp2"):
            assert name in MODEL_SPEC_BUILDERS

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            model_specs("alexnet")

    def test_mobilenet_has_depthwise_layers(self):
        kinds = [s.kind for s in mobilenet_v2_specs()]
        assert kinds.count(LayerKind.DEPTHWISE) == 17  # one per block

    def test_efficientnet_has_squeeze_excite(self):
        kinds = [s.kind for s in efficientnet_b0_specs()]
        assert kinds.count(LayerKind.SQUEEZE_EXCITE) == 2 * 16

    def test_deeplab_has_dilated_branches(self):
        dilations = {s.dilation for s in deeplabv3plus_specs()}
        assert {6, 12, 18}.issubset(dilations)

    def test_deeplab_output_stride_16(self):
        specs = deeplabv3plus_specs(input_h=352, input_w=480)
        aspp = next(s for s in specs if s.name == "aspp.b0")
        assert aspp.in_h == 352 // 16
        assert aspp.in_w == 480 // 16

    def test_spatial_chaining_consistent(self):
        """Each conv layer's input size must match its predecessor's
        output size within a sequential segment (VGG inventory)."""
        specs = vgg19_specs()
        conv_specs = [s for s in specs if s.kind == LayerKind.CONV]
        for prev, cur in zip(conv_specs, conv_specs[1:]):
            assert cur.in_h in (prev.out_h, prev.out_h // 2)


class TestTracerAgreement:
    """The analytic inventories must match a traced live model."""

    def test_vgg19_trace_matches_analytic(self):
        model = models.vgg19(num_classes=10, width_mult=1.0)
        traced = trace_layer_specs(model, (1, 3, 32, 32))
        analytic = vgg19_specs(input_hw=32, num_classes=10)
        traced_convs = [s for s in traced if s.kind == LayerKind.CONV]
        analytic_convs = [s for s in analytic if s.kind == LayerKind.CONV]
        assert len(traced_convs) == len(analytic_convs)
        for t, a in zip(traced_convs, analytic_convs):
            assert (t.in_channels, t.out_channels) == (a.in_channels, a.out_channels)
            assert (t.in_h, t.in_w) == (a.in_h, a.in_w)
            assert t.stride == a.stride

    def test_resnet50_trace_matches_analytic_shapes(self):
        model = models.resnet50(num_classes=1000, width_mult=1.0)
        traced = trace_layer_specs(model, (1, 3, 64, 64))
        analytic = resnet50_specs(input_hw=64, num_classes=1000)
        traced_convs = [s for s in traced if s.kind == LayerKind.CONV]
        analytic_convs = [s for s in analytic if s.kind == LayerKind.CONV]
        assert len(traced_convs) == len(analytic_convs)
        traced_shapes = sorted((s.in_channels, s.out_channels, s.kernel,
                                s.in_h) for s in traced_convs)
        analytic_shapes = sorted((s.in_channels, s.out_channels, s.kernel,
                                  s.in_h) for s in analytic_convs)
        assert traced_shapes == analytic_shapes

    def test_mobilenet_trace_classifies_depthwise(self):
        model = models.mobilenet_v2(num_classes=10, width_mult=1.0)
        traced = trace_layer_specs(model, (1, 3, 32, 32))
        analytic = mobilenet_v2_specs(input_hw=32, num_classes=10)
        assert ([s.kind for s in traced]
                == [s.kind for s in analytic])

    def test_efficientnet_trace_finds_squeeze_excite(self):
        model = models.efficientnet_b0(num_classes=10, width_mult=1.0)
        traced = trace_layer_specs(model, (1, 3, 32, 32))
        se_layers = [s for s in traced if s.kind == LayerKind.SQUEEZE_EXCITE]
        assert len(se_layers) == 2 * 16

    def test_tracer_restores_forward(self):
        model = models.vgg19(num_classes=10, width_mult=0.125)
        model.eval()
        x = np.random.default_rng(0).normal(size=(1, 3, 32, 32))
        before = model(x).numpy()
        trace_layer_specs(model, (1, 3, 32, 32))
        after = model(x).numpy()
        np.testing.assert_array_equal(before, after)
