"""Shared resource constants (paper Table V).

All accelerators get the same compute and on-chip SRAM budget:

- SmartExchange / Bit-pragmatic: 8K bit-serial multipliers;
- DianNao / SCNN / Cambricon-X: 1K 8-bit (non-bit-serial) multipliers —
  the same silicon, since one 8-bit multiplier ~ eight bit-serial lanes;
- on-chip SRAM: 512 KB input GB (16 KB x 32 banks), 4 KB output GB
  (2 KB x 2), 256 KB weight storage (2 KB x 2 banks per PE slice x 64).

The baselines use centralized buffers, so their SRAM macros are larger
(costlier per access) than SmartExchange's data-type partitioned banks.
"""

from __future__ import annotations

from repro.hardware.memory import BufferConfig

MULTIPLIERS_8BIT = 1024
BIT_SERIAL_LANES = 8192
ACT_BITS = 8
# 64 GB/s at 1 GHz — a standard DDR4-class interface; all designs get the
# same DRAM bandwidth.
DRAM_BYTES_PER_CYCLE = 64.0

INPUT_GB_KB = 512.0
WEIGHT_GB_KB = 256.0
OUTPUT_GB_KB = 4.0

# Centralized buffers: macro = bank of a large central SRAM.
BASELINE_BUFFERS = BufferConfig(
    input_kb=INPUT_GB_KB,
    weight_kb=WEIGHT_GB_KB,
    output_kb=OUTPUT_GB_KB,
    input_macro_kb=64.0,
    weight_macro_kb=64.0,
    output_macro_kb=4.0,
)

# SmartExchange: data-type driven partition (Table V bank sizes).
SMARTEXCHANGE_BUFFERS = BufferConfig(
    input_kb=INPUT_GB_KB,
    weight_kb=WEIGHT_GB_KB,
    output_kb=OUTPUT_GB_KB,
    input_macro_kb=16.0,
    weight_macro_kb=2.0,
    output_macro_kb=2.0,
)
