"""Trace recording and replay: completed requests to JSONL and back.

:class:`TraceRecorder` serializes one record per completed request —
arrival time (seconds since the observability handle's epoch), model
key, engine key, batch id, end-to-end latency, rebuild seconds, and
the request's full span tree — as one JSON object per line.  Records
are written with sorted keys and compact separators, so a file round-
trips bit-for-bit: ``json.dumps(json.loads(line), ...)`` under the
same settings reproduces the line exactly (the round-trip test pins
this).

:class:`TraceReader` loads a JSONL file back and exposes it as a
*replayable request schedule*: :meth:`TraceReader.schedule` returns
:class:`ReplayRequest` rows ordered by arrival, and
:meth:`TraceReader.by_model` groups them per model — the input format
a trace-driven policy simulator consumes (replay the arrivals against
candidate admission/batch/tier policies without standing up a fleet).
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["ReplayRequest", "TraceReader", "TraceRecorder", "jsonable"]

_DUMP_KWARGS = {"sort_keys": True, "separators": (",", ":")}


def jsonable(value):
    """Coerce a record value into plain JSON types.

    Numpy scalars (``float64`` latencies, ``int64`` byte counts) leak
    into span tags easily; ``.item()`` unwraps them without importing
    numpy here.  Non-finite floats become strings so a record line
    never contains bare ``NaN``/``Infinity`` (invalid JSON).
    """
    if isinstance(value, dict):
        return {str(key): jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (bool, int, float, str)):
        try:
            value = item()
        except Exception:  # pragma: no cover - exotic .item()
            return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class TraceRecorder:
    """Thread-safe JSONL writer of completed request records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(self.path, "w", encoding="utf-8")
        self._written = 0

    @property
    def records_written(self) -> int:
        with self._lock:
            return self._written

    def record(self, record: Dict) -> Dict:
        """Serialize one record as a JSONL line (returns the cleaned
        record).  Safe from concurrent worker threads."""
        cleaned = jsonable(record)
        line = json.dumps(cleaned, **_DUMP_KWARGS)
        with self._lock:
            if self._file.closed:
                raise ValueError(f"recorder for {self.path} is closed")
            self._file.write(line + "\n")
            self._file.flush()
            self._written += 1
        return cleaned

    def record_request(
        self,
        *,
        trace_id: str,
        model: Optional[str],
        engine: Optional[str],
        arrival_s: float,
        latency_s: float,
        rebuild_s: float = 0.0,
        batch_id: Optional[int] = None,
        tenant: Optional[str] = None,
        spans: Optional[Dict] = None,
        error: Optional[str] = None,
    ) -> Dict:
        """Build and write the canonical per-request record.

        ``tenant`` carries the submitting tenant (``None`` for
        untenanted traffic) so a recorded trace replays with tenancy
        intact; files written before the field existed load fine —
        the reader defaults the missing key to ``None``.
        """
        record: Dict = {
            "trace_id": trace_id,
            "model": model,
            "engine": engine,
            "arrival_s": arrival_s,
            "latency_s": latency_s,
            "rebuild_s": rebuild_s,
            "batch_id": batch_id,
            "tenant": tenant,
            "spans": spans,
        }
        if error is not None:
            record["error"] = error
        return self.record(record)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass(frozen=True)
class ReplayRequest:
    """One row of a replayable schedule (sorted by ``arrival_s``)."""

    arrival_s: float
    model: Optional[str]
    trace_id: str
    engine: Optional[str] = None
    batch_id: Optional[int] = None
    latency_s: float = 0.0
    rebuild_s: float = 0.0
    tenant: Optional[str] = None


class TraceReader:
    """Load a recorded JSONL trace back as data + a request schedule."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[Dict]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def records(self) -> List[Dict]:
        return list(self)

    def schedule(self) -> List[ReplayRequest]:
        """The replayable request schedule, ordered by arrival.

        Equal-timestamp arrivals are tie-broken by (model, trace id),
        not by file order: concurrent workers race their records onto
        disk, so two recordings of the same workload can interleave
        simultaneous arrivals differently — the tie-break makes every
        load of every recording of the same requests produce one
        canonical sequence, which trace-driven simulation depends on.
        """
        rows = [
            ReplayRequest(
                arrival_s=record.get("arrival_s", 0.0),
                model=record.get("model"),
                trace_id=record.get("trace_id", ""),
                engine=record.get("engine"),
                batch_id=record.get("batch_id"),
                latency_s=record.get("latency_s", 0.0),
                rebuild_s=record.get("rebuild_s", 0.0),
                tenant=record.get("tenant"),
            )
            for record in self
        ]
        rows.sort(key=lambda row: (row.arrival_s, row.model or "", row.trace_id))
        return rows

    def by_model(self) -> Dict[Optional[str], List[ReplayRequest]]:
        """The schedule grouped per model (arrival order kept)."""
        grouped: Dict[Optional[str], List[ReplayRequest]] = {}
        for row in self.schedule():
            grouped.setdefault(row.model, []).append(row)
        return grouped
