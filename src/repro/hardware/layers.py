"""Layer-shape abstraction shared by all five accelerator simulators.

A :class:`LayerSpec` is the hardware view of one layer: shapes, kind and
derived work counts.  A :class:`LayerWorkload` adds the sparsity profile
and (for SmartExchange) the compressed weight storage.  Specs can be
built analytically (see :mod:`repro.hardware.modelspecs`) or traced from
a live ``nn`` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro import nn
from repro.nn.functional import conv_output_size


class LayerKind(Enum):
    CONV = "conv"  # standard 2-D convolution (includes 1x1 pointwise)
    DEPTHWISE = "depthwise"  # depth-wise convolution
    FC = "fc"  # fully connected
    SQUEEZE_EXCITE = "squeeze_excite"  # the FC pair of an SE block


@dataclass(frozen=True)
class LayerSpec:
    """Shapes of one layer as the accelerators see it."""

    name: str
    kind: LayerKind
    in_channels: int  # C
    out_channels: int  # M
    kernel: int = 1  # R = S
    stride: int = 1
    padding: int = 0
    in_h: int = 1
    in_w: int = 1
    dilation: int = 1

    def __post_init__(self) -> None:
        if self.in_channels < 1 or self.out_channels < 1:
            raise ValueError(f"{self.name}: channels must be positive")
        if self.kernel < 1 or self.stride < 1:
            raise ValueError(f"{self.name}: kernel/stride must be positive")

    # ------------------------------------------------------------------
    @property
    def out_h(self) -> int:
        if self.kind in (LayerKind.FC, LayerKind.SQUEEZE_EXCITE):
            return 1
        return conv_output_size(self.in_h, self.kernel, self.stride, self.padding,
                                self.dilation)

    @property
    def out_w(self) -> int:
        if self.kind in (LayerKind.FC, LayerKind.SQUEEZE_EXCITE):
            return 1
        return conv_output_size(self.in_w, self.kernel, self.stride, self.padding,
                                self.dilation)

    @property
    def is_fc_like(self) -> bool:
        return self.kind in (LayerKind.FC, LayerKind.SQUEEZE_EXCITE)

    @property
    def weight_count(self) -> int:
        """Scalar weights in the layer."""
        if self.kind == LayerKind.DEPTHWISE:
            return self.out_channels * self.kernel * self.kernel
        return self.out_channels * self.in_channels * self.kernel * self.kernel

    @property
    def input_count(self) -> int:
        if self.is_fc_like:
            return self.in_channels
        return self.in_channels * self.in_h * self.in_w

    @property
    def output_count(self) -> int:
        return self.out_channels * self.out_h * self.out_w

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference."""
        if self.is_fc_like:
            return self.in_channels * self.out_channels
        per_output = self.kernel * self.kernel
        if self.kind != LayerKind.DEPTHWISE:
            per_output *= self.in_channels
        return self.output_count * per_output

    @property
    def reduction_depth(self) -> int:
        """Accumulation length per output element (C*R*S or R*S or C)."""
        if self.is_fc_like:
            return self.in_channels
        if self.kind == LayerKind.DEPTHWISE:
            return self.kernel * self.kernel
        return self.in_channels * self.kernel * self.kernel


@dataclass(frozen=True)
class LayerSparsity:
    """Sparsity profile of one layer (all values are zero fractions)."""

    weight_element: float = 0.0  # unstructured zero weights
    weight_vector: float = 0.0  # zero coefficient/weight rows (SE structure)
    act_element: float = 0.0  # zero activations (ReLU)
    act_vector: float = 0.0  # all-zero activation rows
    act_bit: float = 0.0  # zero-bit fraction of 8-bit activations
    act_booth: float = 0.0  # zero Booth-term fraction

    def __post_init__(self) -> None:
        for name in ("weight_element", "weight_vector", "act_element",
                     "act_vector", "act_bit", "act_booth"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a fraction in [0, 1]")


@dataclass(frozen=True)
class LayerWorkload:
    """A layer plus everything an accelerator needs to simulate it.

    ``input_onchip`` / ``output_onchip`` mark activations that stay
    resident in the (double-buffered) input global buffer between
    consecutive layers, skipping the DRAM round trip.  All designs have
    the same SRAM budget, so the flags apply uniformly.
    """

    spec: LayerSpec
    sparsity: LayerSparsity = field(default_factory=LayerSparsity)
    # SmartExchange-compressed weight storage in bits (None => layer not
    # SmartExchange-compressed; simulators fall back to dense 8-bit).
    se_storage_bits: Optional[int] = None
    batch: int = 1
    input_onchip: bool = False
    output_onchip: bool = False

    def with_sparsity(self, **kwargs) -> "LayerWorkload":
        return replace(self, sparsity=replace(self.sparsity, **kwargs))


# ----------------------------------------------------------------------
# SmartExchange storage model on top of a spec (analytical counterpart of
# repro.core.storage for full-size inventories).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SEGeometry:
    """Coefficient-matrix geometry of one layer in SmartExchange form."""

    matrices: int  # independent {Ce, B} pairs (one per filter / FC row)
    rows: int  # coefficient rows per matrix
    basis_size: int  # S (columns of Ce, side of B)

    @property
    def total_rows(self) -> int:
        return self.matrices * self.rows


def se_geometry(spec: LayerSpec, basis_size: Optional[int] = None) -> SEGeometry:
    """Section III-C reshape geometry for a layer spec.

    Conv (R=S>1): per filter, Ce is (C*R, S) with a per-filter S x S basis.
    FC / 1x1 / SE: per output row, Ce is (ceil(C/S), S) with its basis.
    Depthwise: per filter, Ce is (R, S).
    """
    s = basis_size or max(spec.kernel, 3)
    if spec.kind == LayerKind.DEPTHWISE:
        s = spec.kernel if spec.kernel > 1 else s
        return SEGeometry(spec.out_channels, spec.kernel, s)
    if spec.kind == LayerKind.CONV and spec.kernel > 1:
        return SEGeometry(spec.out_channels, spec.in_channels * spec.kernel,
                          spec.kernel)
    rows = int(np.ceil(spec.in_channels / s))
    return SEGeometry(spec.out_channels, rows, s)


def smartexchange_storage_breakdown(
    spec: LayerSpec,
    weight_vector_sparsity: float,
    ce_bits: int = 4,
    b_bits: int = 8,
    basis_size: Optional[int] = None,
) -> dict:
    """Bits per component: {"coefficient", "basis", "index", "meta"}."""
    if not 0.0 <= weight_vector_sparsity <= 1.0:
        raise ValueError("weight_vector_sparsity must be in [0, 1]")
    geometry = se_geometry(spec, basis_size)
    alive_rows = int(np.ceil(geometry.rows * (1.0 - weight_vector_sparsity)))
    s = geometry.basis_size
    return {
        "coefficient": geometry.matrices * alive_rows * s * ce_bits,
        "basis": geometry.matrices * s * s * b_bits,
        "index": geometry.matrices * geometry.rows,
        "meta": geometry.matrices * 8,
    }


def smartexchange_storage_bits(
    spec: LayerSpec,
    weight_vector_sparsity: float,
    ce_bits: int = 4,
    b_bits: int = 8,
    basis_size: Optional[int] = None,
) -> int:
    """Total bits to store a layer in SmartExchange form {Ce, B, index}."""
    breakdown = smartexchange_storage_breakdown(
        spec, weight_vector_sparsity, ce_bits, b_bits, basis_size
    )
    return int(sum(breakdown.values()))


def dense_storage_bits(spec: LayerSpec, weight_bits: int = 8) -> int:
    """Bits to store the layer's weights densely."""
    return spec.weight_count * weight_bits


# ----------------------------------------------------------------------
# Tracing specs from a live model
# ----------------------------------------------------------------------
def trace_layer_specs(
    model: nn.Module, input_shape: Tuple[int, ...]
) -> List[LayerSpec]:
    """Run one forward pass and record a LayerSpec per conv/linear call.

    Layer kinds are classified from the module: grouped conv with
    ``groups == C == M`` is DEPTHWISE; 1x1 convs inside a module whose
    class name contains "SqueezeExcite" are SQUEEZE_EXCITE; Linear is FC.
    """
    records: List[LayerSpec] = []
    name_of = {id(m): n for n, m in model.named_modules()}
    se_members = set()
    for module_name, module in model.named_modules():
        if "SqueezeExcite" in type(module).__name__:
            for _, child in module.named_modules():
                se_members.add(id(child))

    original_conv_forward = nn.Conv2d.forward
    original_linear_forward = nn.Linear.forward

    def conv_forward(self, x):
        if self.is_depthwise:
            kind = LayerKind.DEPTHWISE
        elif id(self) in se_members:
            kind = LayerKind.SQUEEZE_EXCITE
        else:
            kind = LayerKind.CONV
        if kind == LayerKind.SQUEEZE_EXCITE:
            records.append(LayerSpec(
                name=name_of.get(id(self), "conv"),
                kind=kind,
                in_channels=self.in_channels,
                out_channels=self.out_channels,
            ))
        else:
            records.append(LayerSpec(
                name=name_of.get(id(self), "conv"),
                kind=kind,
                in_channels=self.in_channels,
                out_channels=self.out_channels,
                kernel=self.kernel_size,
                stride=self.stride,
                padding=self.padding,
                in_h=x.shape[2],
                in_w=x.shape[3],
                dilation=self.dilation,
            ))
        return original_conv_forward(self, x)

    def linear_forward(self, x):
        records.append(LayerSpec(
            name=name_of.get(id(self), "linear"),
            kind=LayerKind.FC,
            in_channels=self.in_features,
            out_channels=self.out_features,
        ))
        return original_linear_forward(self, x)

    nn.Conv2d.forward = conv_forward
    nn.Linear.forward = linear_forward
    try:
        model.eval()
        model(nn.Tensor(np.zeros(input_shape)))
    finally:
        nn.Conv2d.forward = original_conv_forward
        nn.Linear.forward = original_linear_forward
    return records
