"""Backward compat: pre-codec (format-1) bundles still load and serve.

The checked-in fixture under ``fixtures/legacy/`` was written the way
PR 1/2 published bundles — a format-1 manifest with no ``codec`` keys
and the SmartExchange-only ``core.serialize`` weights layout.  The
codec redesign must keep serving it unchanged (regenerate the fixture
with ``fixtures/make_legacy_bundle.py`` only if the fixture model
itself changes).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.codecs import LayerPayload
from repro.serving import ArtifactStore, InferenceEngine, ModelRegistry
from repro.serving.artifacts import DEFAULT_CODEC

from tests.serving.conftest import build_model

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "legacy"
MODEL = "legacy-cnn"


@pytest.fixture
def legacy_store() -> ArtifactStore:
    return ArtifactStore(FIXTURES)


class TestLegacyManifest:
    def test_fixture_really_predates_the_codec_field(self):
        raw = json.loads(
            (FIXTURES / MODEL / "v1" / "manifest.json").read_text()
        )
        assert raw["format"] == 1
        assert "codec" not in raw
        assert all("codec" not in layer for layer in raw["layers"])

    def test_missing_codec_defaults_to_smartexchange(self, legacy_store):
        manifest = legacy_store.manifest(MODEL)
        assert manifest.codec == DEFAULT_CODEC == "smartexchange"
        for spec in manifest.layers:
            assert spec.codec == "smartexchange"
            assert spec.plan is not None

    def test_checksums_still_verify(self, legacy_store):
        legacy_store.verify(MODEL)


class TestLegacyServing:
    def test_payloads_adapt_to_layer_payloads(self, legacy_store):
        payloads = legacy_store.load_payloads(MODEL)
        manifest = legacy_store.manifest(MODEL)
        assert set(payloads) == {spec.name for spec in manifest.layers}
        for spec in manifest.layers:
            payload = payloads[spec.name]
            assert isinstance(payload, LayerPayload)
            assert payload.codec == "smartexchange"
            assert len(payload.meta["matrices"]) == spec.matrix_count

    def test_legacy_bundle_serves_end_to_end(self, legacy_store):
        registry = ModelRegistry(legacy_store)
        handle = registry.get(MODEL)
        engine = InferenceEngine(build_model(seed=3), handle)
        batch = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        offline = engine.predict(batch)
        assert offline.shape == (4, 4)
        assert np.isfinite(offline).all()
        # ... and through the online worker pool.
        engine.start(workers=2)
        try:
            tickets = [engine.submit(sample) for sample in batch]
            online = np.stack([t.result(timeout=30.0) for t in tickets])
        finally:
            engine.stop()
        np.testing.assert_allclose(online, offline, rtol=0, atol=1e-12)
        summary = engine.summary()
        assert summary["codec"] == "smartexchange"
        assert summary["bundle_bytes_saved"] > 0

    def test_rebuilt_weights_match_fresh_decompression(self, legacy_store):
        """The fixture's stored weights decode to what compressing the
        same seeded model today produces (up to basis quantization)."""
        from repro.core import apply_smartexchange
        from repro.serving import rebuild_layer_weight

        from tests.serving.conftest import FAST

        model = build_model(seed=0)
        _, report = apply_smartexchange(model, FAST, model_name=MODEL)
        manifest = legacy_store.manifest(MODEL)
        payloads = legacy_store.load_payloads(MODEL)
        modules = dict(model.named_modules())
        for spec in manifest.layers:
            rebuilt = rebuild_layer_weight(payloads[spec.name], spec)
            installed = modules[spec.name].weight.data
            scale = max(np.abs(installed).max(), 1e-9)
            assert np.abs(rebuilt - installed).max() < 0.02 * scale + 1e-6
