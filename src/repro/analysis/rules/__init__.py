"""Rule registry: every built-in rule family, by id."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.core import Rule
from repro.analysis.rules.hygiene import (
    BareExceptRule,
    ImportTimeThreadingRule,
    MutableDefaultRule,
    TimeDisciplineRule,
)
from repro.analysis.rules.lifecycle import ResourceLifecycleRule
from repro.analysis.rules.locks import LockCoverageRule
from repro.analysis.rules.metrics import (
    CounterDirectionRule,
    MetricLabelSchemaRule,
    MetricNameRule,
)
from repro.analysis.rules.wire import WirePicklabilityRule

ALL_RULES: List[Type[Rule]] = [
    LockCoverageRule,
    WirePicklabilityRule,
    MetricNameRule,
    CounterDirectionRule,
    MetricLabelSchemaRule,
    ResourceLifecycleRule,
    TimeDisciplineRule,
    BareExceptRule,
    MutableDefaultRule,
    ImportTimeThreadingRule,
]

RULES_BY_ID: Dict[str, Type[Rule]] = {rule.id: rule for rule in ALL_RULES}


def make_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh rule instances for one run; ``select`` narrows by id."""
    if select is None:
        return [rule() for rule in ALL_RULES]
    unknown = [rule_id for rule_id in select if rule_id not in RULES_BY_ID]
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES_BY_ID))}"
        )
    return [RULES_BY_ID[rule_id]() for rule_id in select]
