"""Tests for activation capture."""

import numpy as np

from repro import nn
from repro.nn.introspect import collect_activations


def make_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(4, 4, 3, padding=1, rng=rng),
        nn.ReLU6(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(4, 2, rng=rng),
    )


class TestCollectActivations:
    def test_captures_every_activation_module(self, rng):
        model = make_model(rng)
        captured = collect_activations(model, rng.normal(size=(2, 1, 8, 8)))
        assert set(captured) == {"1", "3"}

    def test_captured_shapes(self, rng):
        model = make_model(rng)
        captured = collect_activations(model, rng.normal(size=(2, 1, 8, 8)))
        assert captured["1"].shape == (2, 4, 8, 8)

    def test_relu_outputs_nonnegative(self, rng):
        model = make_model(rng)
        captured = collect_activations(model, rng.normal(size=(2, 1, 8, 8)))
        assert (captured["1"] >= 0).all()

    def test_forward_restored_after_capture(self, rng):
        model = make_model(rng)
        model.eval()
        x = rng.normal(size=(1, 1, 8, 8))
        before = model(x).numpy()
        collect_activations(model, x)
        after = model(x).numpy()
        np.testing.assert_array_equal(before, after)
        # No lingering instance-level forward wrappers.
        for module in model.modules():
            assert "forward" not in module.__dict__

    def test_kind_filter(self, rng):
        model = make_model(rng)
        captured = collect_activations(
            model, rng.normal(size=(1, 1, 8, 8)), kinds=(nn.ReLU,)
        )
        assert set(captured) == {"1"}
