"""Optimizers for the re-training loops."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam:
    """Adam optimizer (used for the MLP experiments)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param.data -= self.lr * update


class StepLR:
    """Multiplies the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
