"""Request queueing and batch coalescing for the serving engine.

Single requests are enqueued with :meth:`RequestQueue.submit` and
coalesced into batches under a :class:`BatchPolicy` — a protocol with
two implementations:

- :class:`StaticBatchPolicy` — the classic dial: a batch closes when it
  reaches ``max_batch_size`` or when ``max_wait_s`` has elapsed since
  the first request in it arrived.
- :class:`CostAwareBatchPolicy` — the batch-close point is derived from
  the model's layer mix through a rebuild cost model: every batch pays
  a fixed install cost (expected rebuild seconds for the layers a
  forward pass pulls through the cache), so the policy keeps waiting
  while amortizing that cost over one more request is worth more than
  the time spent waiting, and closes immediately when the cache is warm
  and a batch costs nothing extra.

Everything here is architecture-agnostic: a request's payload is just an
ndarray (one sample, no batch axis); the engine stacks them on axis 0.
"""

from __future__ import annotations

import copy
import itertools
import threading
import time
from dataclasses import dataclass
from typing import (
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np


def per_ticket_error(error: BaseException) -> BaseException:
    """A fresh exception instance to set on one ticket.

    One batch failure fans out to many tickets, and each ticket's
    ``result()`` may re-raise from a different waiter thread.  Raising
    the *same* instance concurrently mutates its ``__traceback__`` and
    chains ``__context__`` across unrelated callers — so every ticket
    gets its own copy (same type and args where possible, a
    ``RuntimeError`` wrapper otherwise), with the original attached as
    ``__cause__``.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        clone = None
    if clone is error or type(clone) is not type(error):
        clone = RuntimeError(f"batch failed: {error!r}")
    clone.__cause__ = error
    return clone


@runtime_checkable
class BatchPolicy(Protocol):
    """When to close a batch (the protocol).

    ``max_batch_size`` caps how many requests a batch may hold;
    ``wait_budget(pending)`` is how long — in seconds since the batch
    opened — the queue should keep waiting for stragglers given that
    ``pending`` requests have already been collected.  The queue
    re-evaluates the budget on every arrival, so a policy can shrink
    it as the batch grows.
    """

    name: str
    max_batch_size: int

    def wait_budget(self, pending: int) -> float:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class StaticBatchPolicy:
    """The fixed max-batch / max-wait dial (the classic policy)."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002

    name = "static"

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")

    def wait_budget(self, pending: int) -> float:
        return self.max_wait_s


class CostAwareBatchPolicy:
    """Close batches where the estimated cost curve says to.

    Every batch pays a fixed cost ``C``: the expected rebuild seconds
    to install the model's layer mix through the rebuild cache (from
    :meth:`repro.serving.RebuildEngine.estimated_install_seconds`,
    which prices currently-uncached layers at the cost model's
    per-codec rates).  With ``n`` requests coalesced, each carries
    ``C / n`` of it — so waiting for request ``n + 1`` is worth roughly
    ``C / n`` of extra latency and no more.  The policy therefore sets
    the wait budget to ``min(max_wait_s, C / n)``: expensive layer
    mixes (a thrashing smartexchange cache) grow batches toward
    ``max_batch_size``, while a warm cache (``C ~ 0``) closes batches
    immediately for minimum latency.

    Until :meth:`bind_costs` attaches a cost source the policy behaves
    exactly like :class:`StaticBatchPolicy` (budget = ``max_wait_s``);
    the inference engine binds its rebuild engine automatically.
    """

    name = "cost-aware"

    def __init__(
        self, max_batch_size: int = 32, max_wait_s: float = 0.05
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._install_cost: Optional[Callable[[], float]] = None

    def bind_costs(self, source) -> "CostAwareBatchPolicy":
        """Attach the per-batch cost source.

        ``source`` is a rebuild engine (anything exposing
        ``estimated_install_seconds()``) or a zero-argument callable
        returning the expected per-batch install seconds.

        A policy instance prices exactly one engine's cache: rebinding
        to a *different* source raises rather than silently letting a
        second engine's (possibly warm) cache set the first engine's
        wait budget — share the cost *model* across a fleet, not the
        batch policy.
        """
        estimator = getattr(source, "estimated_install_seconds", None)
        if estimator is None:
            estimator = source
        if self._install_cost is not None and self._install_cost != estimator:
            raise ValueError(
                "CostAwareBatchPolicy is already bound to another rebuild "
                "cache; use one policy instance per engine"
            )
        self._install_cost = estimator
        return self

    def expected_batch_seconds(self) -> Optional[float]:
        """The current per-batch fixed cost (None when unbound)."""
        if self._install_cost is None:
            return None
        return max(0.0, float(self._install_cost()))

    def wait_budget(self, pending: int) -> float:
        cost = self.expected_batch_seconds()
        if cost is None:
            return self.max_wait_s
        return min(self.max_wait_s, cost / max(pending, 1))


class Ticket:
    """Handle returned by ``submit``: blocks until the result is set.

    Completion can also be observed without blocking via
    :meth:`add_done_callback` (this is what the asyncio front door
    uses to bridge worker threads back into an event loop).
    """

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._done = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Ticket"], None]] = []
        self._callback_lock = threading.Lock()

    def set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._fire()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._fire()

    def _fire(self) -> None:
        with self._callback_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                # A broken observer (e.g. an asyncio bridge whose event
                # loop already closed) must not propagate into the
                # serving worker that completed the ticket.
                pass

    def add_done_callback(self, fn: Callable[["Ticket"], None]) -> None:
        """Run ``fn(ticket)`` once the ticket completes.

        Runs immediately (in the calling thread) if the ticket is
        already done; otherwise runs in the thread that completes it.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} not done")
        if self._error is not None:
            raise self._error
        return self._result


@dataclass
class Request:
    """One enqueued sample plus its completion ticket.

    ``trace`` carries the request's observability context (a
    :class:`~repro.observability.RequestTrace` opened at submit, or
    ``None`` when tracing is off) from the submitting thread to the
    worker that executes the batch; ``tenant`` carries the submitting
    tenant independently of tracing, so per-tenant metering works with
    observability disabled.  The queue itself touches neither.
    """

    request_id: int
    payload: np.ndarray
    ticket: Ticket
    enqueued_at: float = 0.0
    trace: Optional[object] = None
    tenant: Optional[str] = None


class QueueClosed(Exception):
    """Raised by ``next_batch`` after ``close()`` drains the queue."""


class RequestQueue:
    """Thread-safe queue that hands out policy-coalesced batches."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy or StaticBatchPolicy()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: List[Request] = []
        self._closed = False
        self._ids = itertools.count()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, payload: np.ndarray, trace=None, tenant=None) -> Ticket:
        """Enqueue one sample; returns the ticket to wait on."""
        ticket = Ticket(next(self._ids))
        request = Request(
            request_id=ticket.request_id,
            payload=np.asarray(payload),
            ticket=ticket,
            enqueued_at=time.perf_counter(),
            trace=trace,
            tenant=tenant,
        )
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._pending.append(request)
            self._not_empty.notify()
        return ticket

    def close(self) -> None:
        """No new submissions; ``next_batch`` drains then raises."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def next_batch(self, timeout: Optional[float] = None) -> List[Request]:
        """Block for the next coalesced batch.

        Waits (up to ``timeout``) for at least one request, then keeps
        collecting until the batch is full or the policy's wait budget
        — re-evaluated on every arrival, since a cost-aware policy
        shrinks it as the batch grows — has passed since the *first
        request in the batch arrived*.  Raises :class:`QueueClosed`
        once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._not_empty:
            while not self._pending:
                if self._closed:
                    raise QueueClosed("queue is closed and drained")
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return []
                self._not_empty.wait(remaining)

            # The wait budget is anchored to the first request's
            # *arrival*, not to this worker waking up: a request that
            # already queued behind a slow batch has spent its budget
            # and must not pay it a second time.
            opened_at = self._pending[0].enqueued_at
            while (
                len(self._pending) < self.policy.max_batch_size
                and not self._closed
            ):
                budget = self.policy.wait_budget(len(self._pending))
                remaining = opened_at + budget - time.perf_counter()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            batch = self._pending[: self.policy.max_batch_size]
            del self._pending[: len(batch)]
            return batch


def coalesce(
    inputs: Sequence[np.ndarray], max_batch_size: int
) -> List[List[np.ndarray]]:
    """Offline batching: greedily group samples into full batches."""
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    inputs = list(inputs)
    return [
        inputs[start : start + max_batch_size]
        for start in range(0, len(inputs), max_batch_size)
    ]


def stack_batch(requests: Sequence[Request]) -> np.ndarray:
    """Stack request payloads into the (N, ...) model input."""
    return np.stack([request.payload for request in requests], axis=0)
