"""Tests for the model zoo (small-width instances)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import models
from repro.nn.models.resnet import resnet_cifar
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def image_batch():
    return np.random.default_rng(0).normal(size=(2, 3, 32, 32))


class TestVGG:
    def test_vgg11_forward_shape(self, image_batch):
        model = models.vgg11(num_classes=7, width_mult=0.125)
        assert model(Tensor(image_batch)).shape == (2, 7)

    def test_vgg19_forward_shape(self, image_batch):
        model = models.vgg19(num_classes=10, width_mult=0.125)
        assert model(Tensor(image_batch)).shape == (2, 10)

    def test_vgg_configs_have_expected_conv_counts(self):
        assert sum(1 for x in models.VGG_CONFIGS["vgg11"] if x != "M") == 8
        assert sum(1 for x in models.VGG_CONFIGS["vgg19"] if x != "M") == 16

    def test_width_mult_scales_parameters(self):
        narrow = models.vgg11(num_classes=10, width_mult=0.125)
        wide = models.vgg11(num_classes=10, width_mult=0.25)
        assert wide.num_parameters() > 2 * narrow.num_parameters()

    def test_all_convs_have_bn(self):
        model = models.vgg19(num_classes=10, width_mult=0.125)
        convs = sum(isinstance(m, nn.Conv2d) for m in model.features.modules())
        bns = sum(isinstance(m, nn.BatchNorm2d) for m in model.features.modules())
        assert convs == bns == 16


class TestResNet:
    def test_resnet50_forward_shape(self, image_batch):
        model = models.resnet50(num_classes=5, width_mult=0.125)
        assert model(Tensor(image_batch)).shape == (2, 5)

    def test_resnet164_depth(self):
        model = models.resnet164(num_classes=10, width_mult=0.25)
        convs = sum(isinstance(m, nn.Conv2d) for m in model.modules())
        # 1 stem + 54 blocks x 3 convs + downsamples (3 stage entries).
        assert convs == 1 + 54 * 3 + 3

    def test_resnet_cifar_family(self, image_batch):
        model = resnet_cifar(29, num_classes=4, width_mult=0.25)
        assert model(Tensor(image_batch)).shape == (2, 4)

    def test_resnet_cifar_unknown_depth_raises(self):
        with pytest.raises(ValueError, match="unsupported"):
            resnet_cifar(33)

    def test_bottleneck_expansion(self):
        model = resnet_cifar(29, num_classes=10, width_mult=1.0)
        assert model.feature_channels == 64 * 4

    def test_residual_identity_when_shapes_match(self, rng):
        from repro.nn.models.resnet import Bottleneck
        block = Bottleneck(32, 8, stride=1, rng=rng)
        assert isinstance(block.downsample, nn.Identity)
        block2 = Bottleneck(16, 8, stride=1, rng=rng)
        assert isinstance(block2.downsample, nn.Sequential)

    def test_stage_blocks_mismatch_raises(self):
        from repro.nn.models.resnet import ResNet
        with pytest.raises(ValueError):
            ResNet([2, 2], [16], num_classes=10)


class TestCompactModels:
    def test_mobilenet_forward_shape(self, image_batch):
        model = models.mobilenet_v2(num_classes=6, width_mult=0.25)
        assert model(Tensor(image_batch)).shape == (2, 6)

    def test_mobilenet_has_depthwise_convs(self):
        model = models.mobilenet_v2(num_classes=10, width_mult=0.25)
        depthwise = [m for m in model.modules()
                     if isinstance(m, nn.Conv2d) and m.is_depthwise]
        expected_blocks = sum(n for _, _, n, _ in models.MOBILENET_V2_BLOCKS)
        assert len(depthwise) == expected_blocks

    def test_mobilenet_residual_connectivity(self, rng):
        from repro.nn.models.mobilenet import InvertedResidual
        residual = InvertedResidual(8, 8, stride=1, expansion=6, rng=rng)
        assert residual.use_residual
        strided = InvertedResidual(8, 8, stride=2, expansion=6, rng=rng)
        assert not strided.use_residual

    def test_efficientnet_forward_shape(self, image_batch):
        model = models.efficientnet_b0(num_classes=6, width_mult=0.25)
        assert model(Tensor(image_batch)).shape == (2, 6)

    def test_efficientnet_has_squeeze_excite(self):
        model = models.efficientnet_b0(num_classes=10, width_mult=0.25)
        from repro.nn.models.efficientnet import SqueezeExcite
        se_blocks = [m for m in model.modules() if isinstance(m, SqueezeExcite)]
        expected = sum(n for _, _, n, _, _ in models.EFFICIENTNET_B0_BLOCKS)
        assert len(se_blocks) == expected

    def test_squeeze_excite_gates_channels(self, rng):
        from repro.nn.models.efficientnet import SqueezeExcite
        se = SqueezeExcite(8, 2, rng=rng)
        x = rng.normal(size=(2, 8, 4, 4))
        out = se(Tensor(x)).numpy()
        # Output is the input scaled by per-channel gates in (0, 1).
        gates = out / np.where(x == 0, 1, x)
        assert np.nanmax(np.abs(gates)) <= 1.0 + 1e-9

    def test_5x5_kernels_present_in_efficientnet(self):
        model = models.efficientnet_b0(num_classes=10, width_mult=0.25)
        kernels = {m.kernel_size for m in model.modules()
                   if isinstance(m, nn.Conv2d) and m.is_depthwise}
        assert kernels == {3, 5}


class TestDeepLab:
    def test_forward_restores_input_resolution(self, rng):
        model = models.deeplabv3plus(num_classes=4, width_mult=0.125)
        out = model(Tensor(rng.normal(size=(1, 3, 48, 64))))
        assert out.shape == (1, 4, 48, 64)

    def test_predict_labels(self, rng):
        model = models.deeplabv3plus(num_classes=3, width_mult=0.125)
        labels = model.predict_labels(rng.normal(size=(1, 3, 32, 32)))
        assert labels.shape == (1, 32, 32)
        assert set(np.unique(labels)).issubset({0, 1, 2})

    def test_aspp_uses_dilated_convs(self):
        model = models.deeplabv3plus(num_classes=3, width_mult=0.125)
        dilations = {m.dilation for m in model.aspp.modules()
                     if isinstance(m, nn.Conv2d)}
        assert {6, 12, 18}.issubset(dilations)


class TestMLP:
    def test_mlp_forward_flattens(self, rng):
        model = models.mlp_2()
        out = model(Tensor(rng.normal(size=(3, 1, 28, 28))))
        assert out.shape == (3, 10)

    def test_mlp2_matches_paper_size(self):
        # LeNet-300-100: ~1.07 MB of FP32 parameters (paper Table II).
        model = models.mlp_2()
        size_mb = model.num_parameters() * 4 / 2**20
        assert abs(size_mb - 1.07) < 0.06

    def test_mlp1_matches_paper_size(self):
        # 784-1500-1500-10: ~14.1 MB of FP32 parameters (paper Table II).
        model = models.mlp_1()
        size_mb = model.num_parameters() * 4 / 2**20
        assert abs(size_mb - 14.125) < 0.5

    def test_mlp_needs_two_widths(self):
        from repro.nn.models.mlp import MLP
        with pytest.raises(ValueError):
            MLP([10])


class TestKnownSizes:
    def test_resnet164_paper_parameter_size(self):
        # Paper Table II: ResNet164 has 6.75 MB of FP32 parameters.
        model = models.resnet164(num_classes=10)
        size_mb = model.num_parameters() * 4 / 2**20
        assert abs(size_mb - 6.75) < 0.35

    def test_models_trainable_one_step(self, rng):
        model = models.mobilenet_v2(num_classes=3, width_mult=0.125)
        x = rng.normal(size=(2, 3, 16, 16))
        y = np.array([0, 1])
        optimizer = nn.SGD(model.parameters(), lr=0.01)
        loss = nn.cross_entropy(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
        loss2 = nn.cross_entropy(model(Tensor(x)), y)
        assert np.isfinite(loss2.item())
