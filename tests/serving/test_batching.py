"""Batch coalescing policy and the request queue."""

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    StaticBatchPolicy,
    QueueClosed,
    RequestQueue,
    coalesce,
    stack_batch,
)


class TestBatchPolicy:
    def test_defaults(self):
        policy = StaticBatchPolicy()
        assert policy.max_batch_size >= 1
        assert policy.max_wait_s >= 0

    @pytest.mark.parametrize("size,wait", [(0, 0.0), (-1, 0.0), (1, -0.1)])
    def test_invalid_rejected(self, size, wait):
        with pytest.raises(ValueError):
            StaticBatchPolicy(max_batch_size=size, max_wait_s=wait)


class TestCoalesce:
    def test_groups_full_batches(self):
        groups = coalesce([np.zeros(2)] * 10, max_batch_size=4)
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_empty(self):
        assert coalesce([], max_batch_size=4) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            coalesce([np.zeros(2)], max_batch_size=0)


class TestRequestQueue:
    def test_coalesces_up_to_max_batch(self):
        queue = RequestQueue(StaticBatchPolicy(max_batch_size=3, max_wait_s=0.01))
        tickets = [queue.submit(np.full(2, i)) for i in range(5)]
        first = queue.next_batch()
        second = queue.next_batch()
        assert [len(first), len(second)] == [3, 2]
        assert [r.request_id for r in first] == [t.request_id for t in tickets[:3]]

    def test_stack_batch_shape_and_order(self):
        queue = RequestQueue(StaticBatchPolicy(max_batch_size=4, max_wait_s=0.0))
        for i in range(3):
            queue.submit(np.full((2, 2), float(i)))
        batch = stack_batch(queue.next_batch())
        assert batch.shape == (3, 2, 2)
        np.testing.assert_array_equal(batch[:, 0, 0], [0.0, 1.0, 2.0])

    def test_waits_for_stragglers(self):
        queue = RequestQueue(StaticBatchPolicy(max_batch_size=2, max_wait_s=0.5))
        queue.submit(np.zeros(1))

        def late_submit():
            time.sleep(0.05)
            queue.submit(np.ones(1))

        thread = threading.Thread(target=late_submit)
        thread.start()
        batch = queue.next_batch()
        thread.join()
        assert len(batch) == 2  # straggler made it within max_wait_s

    def test_timeout_returns_empty(self):
        queue = RequestQueue(StaticBatchPolicy(max_batch_size=2, max_wait_s=0.0))
        assert queue.next_batch(timeout=0.01) == []

    def test_close_drains_then_raises(self):
        queue = RequestQueue(StaticBatchPolicy(max_batch_size=8, max_wait_s=0.0))
        queue.submit(np.zeros(1))
        queue.close()
        assert len(queue.next_batch()) == 1
        with pytest.raises(QueueClosed):
            queue.next_batch()
        with pytest.raises(QueueClosed):
            queue.submit(np.zeros(1))

    def test_ticket_result_timeout(self):
        queue = RequestQueue()
        ticket = queue.submit(np.zeros(1))
        assert not ticket.done()
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)

    def test_ticket_error_propagates(self):
        queue = RequestQueue()
        ticket = queue.submit(np.zeros(1))
        ticket.set_error(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            ticket.result(timeout=1.0)


class TestWaitBudgetAnchor:
    """The batch wait budget starts when the first request *arrived*.

    Regression: ``next_batch`` used to re-anchor the budget to the
    moment the worker dequeued (``opened_at = perf_counter()``), so a
    request that had already queued behind a slow batch paid the full
    wait budget a second time.
    """

    def test_aged_request_closes_immediately(self):
        queue = RequestQueue(
            StaticBatchPolicy(max_batch_size=8, max_wait_s=0.2)
        )
        queue.submit(np.zeros(1))
        time.sleep(0.25)  # the request outlives its whole budget queued
        start = time.perf_counter()
        batch = queue.next_batch()
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        # Budget spent while queued: no second wait. Pre-fix this
        # waited the full 0.2 s again.
        assert elapsed < 0.1

    def test_fresh_request_still_waits_for_stragglers(self):
        queue = RequestQueue(
            StaticBatchPolicy(max_batch_size=2, max_wait_s=0.5)
        )
        queue.submit(np.zeros(1))

        def late_submit():
            time.sleep(0.05)
            queue.submit(np.ones(1))

        thread = threading.Thread(target=late_submit)
        thread.start()
        batch = queue.next_batch()
        thread.join()
        assert len(batch) == 2  # budget anchored at arrival still open

    def test_anchor_stress(self):
        """50 iterations: an aged request must never wait again."""
        for _ in range(50):
            queue = RequestQueue(
                StaticBatchPolicy(max_batch_size=8, max_wait_s=0.05)
            )
            queue.submit(np.zeros(1))
            time.sleep(0.06)
            start = time.perf_counter()
            batch = queue.next_batch()
            elapsed = time.perf_counter() - start
            assert len(batch) == 1
            assert elapsed < 0.04
