"""Shim for environments without the ``wheel`` package (legacy install)."""

from setuptools import setup

setup()
