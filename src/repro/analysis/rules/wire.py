"""WIRE001 — wire-object picklability.

Objects shipped over procpool pipes must survive ``pickle``: no locks,
threads, conditions, events, queues, shared-memory handles,
memoryviews, lambdas, or generators in their fields.  A violation here
is invisible until the first ``conn.send`` at runtime — in the worst
case only on the crash-recovery path — so the check runs at review
time instead.

Wire classes are found two ways:

- by name: the known procpool wire set (``WorkerSpec``,
  ``WorkerHello``, ``BatchEnvelope``, ``BatchResult``,
  ``ReplayRequest``) plus anything listed in a module-level
  ``WIRE_CLASSES = (...)`` tuple, and
- by use: any class constructed directly inside a ``.send(...)`` /
  ``.put(...)`` call argument in the same file.

Fields are read from dataclass-style annotations in the class body and
from ``self.X = ...`` assignments in ``__init__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.astutil import (
    iter_class_defs,
    iter_methods,
    leaf_name,
    names_in,
    self_attr,
)
from repro.analysis.core import Finding, Rule
from repro.analysis.walker import SourceFile

#: Classes known to cross the procpool pipe boundary.
DEFAULT_WIRE_CLASSES = {
    "WorkerSpec",
    "WorkerHello",
    "BatchEnvelope",
    "BatchResult",
    "ReplayRequest",
}

#: Type/constructor names that do not pickle (or must never be shipped
#: even where technically picklable, like shared-memory handles whose
#: lifetime is process-local).
_FORBIDDEN = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "Timer",
    "local",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "SharedMemory",
    "ShareableList",
    "memoryview",
    "Generator",
    "Iterator",
    "TextIOWrapper",
    "BufferedReader",
    "BufferedWriter",
}

_SEND_METHODS = {"send", "send_bytes", "put", "put_nowait"}


class WirePicklabilityRule(Rule):
    id = "WIRE001"
    name = "wire-picklability"
    description = (
        "classes sent over process pipes must not hold unpicklable state"
    )

    def visit(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        wire_names = set(DEFAULT_WIRE_CLASSES)
        wire_names.update(self._declared_wire_classes(source.tree))
        wire_names.update(self._sent_constructions(source.tree))
        findings: List[Finding] = []
        for cls in iter_class_defs(source.tree):
            if cls.name not in wire_names:
                continue
            findings.extend(self._check_class(source, cls))
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _declared_wire_classes(tree: ast.Module) -> Set[str]:
        """Names listed in a module-level ``WIRE_CLASSES`` tuple/list."""
        names: Set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == "WIRE_CLASSES"
                for target in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
                    elif isinstance(element, ast.Name):
                        names.add(element.id)
        return names

    @staticmethod
    def _sent_constructions(tree: ast.Module) -> Set[str]:
        """Class names constructed directly inside ``conn.send(...)`` /
        ``queue.put(...)`` arguments."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                not isinstance(node.func, ast.Attribute)
                or node.func.attr not in _SEND_METHODS
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Call) and isinstance(
                        inner.func, ast.Name
                    ):
                        name = inner.func.id
                        if name and name[0].isupper():
                            names.add(name)
        return names

    # ------------------------------------------------------------------
    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        # Dataclass-style annotated fields.
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                yield from self._check_field(
                    source,
                    cls.name,
                    node.target.id,
                    annotation=node.annotation,
                    value=node.value,
                    where=node,
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield from self._check_field(
                            source,
                            cls.name,
                            target.id,
                            annotation=None,
                            value=node.value,
                            where=node,
                        )
        # __init__ self-assignments.
        for method in iter_methods(cls):
            if method.name != "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = self_attr(target)
                        if attr is not None:
                            yield from self._check_field(
                                source,
                                cls.name,
                                attr,
                                annotation=None,
                                value=node.value,
                                where=node,
                            )
                elif isinstance(node, ast.AnnAssign):
                    attr = self_attr(node.target)
                    if attr is not None:
                        yield from self._check_field(
                            source,
                            cls.name,
                            attr,
                            annotation=node.annotation,
                            value=node.value,
                            where=node,
                        )

    def _check_field(
        self,
        source: SourceFile,
        class_name: str,
        field_name: str,
        annotation: Optional[ast.AST],
        value: Optional[ast.AST],
        where: ast.AST,
    ) -> Iterable[Finding]:
        offenders: Set[str] = set()
        for expr in (annotation, value):
            if expr is None:
                continue
            offenders.update(names_in(expr) & _FORBIDDEN)
            # A lambda *stored in the field* will not pickle; a lambda
            # used as ``field(default_factory=lambda: [])`` lives on
            # the class, not the instance, and is fine.
            factory_lambdas = {
                keyword.value
                for inner in ast.walk(expr)
                if isinstance(inner, ast.Call)
                and leaf_name(inner.func) == "field"
                for keyword in inner.keywords
                if keyword.arg == "default_factory"
                and isinstance(keyword.value, ast.Lambda)
            }
            for inner in ast.walk(expr):
                if isinstance(inner, ast.Lambda):
                    if inner not in factory_lambdas:
                        offenders.add("lambda")
                elif isinstance(inner, (ast.GeneratorExp,)):
                    offenders.add("generator expression")
        if offenders:
            what = ", ".join(sorted(offenders))
            yield self.finding(
                source,
                where,
                f"wire class {class_name} field '{field_name}' holds "
                f"unpicklable state ({what}); it cannot cross a "
                f"process pipe",
            )
