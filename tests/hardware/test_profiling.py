"""Tests for measured activation-sparsity profiling."""

import numpy as np
import pytest

from repro import nn
from repro.hardware.profiling import (
    assign_to_consumers,
    measure_activation_sparsity,
)


def make_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.Conv2d(8, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(8, 4, rng=rng),
    )


class TestMeasurement:
    def test_stats_per_activation(self, rng):
        model = make_model(rng)
        stats = measure_activation_sparsity(model, rng.normal(size=(4, 3, 8, 8)))
        assert set(stats) == {"2", "5"}
        for sparsity in stats.values():
            assert 0.0 <= sparsity.act_element <= 1.0
            assert 0.0 <= sparsity.act_booth <= 1.0

    def test_relu_outputs_have_element_sparsity(self, rng):
        model = make_model(rng)
        stats = measure_activation_sparsity(model, rng.normal(size=(4, 3, 8, 8)))
        # ReLU zeroes roughly half the pre-activations.
        assert stats["2"].act_element > 0.2

    def test_booth_below_bit_sparsity(self, rng):
        model = make_model(rng)
        stats = measure_activation_sparsity(model, rng.normal(size=(4, 3, 8, 8)))
        for sparsity in stats.values():
            assert sparsity.act_booth <= sparsity.act_bit + 1e-9


class TestAssignment:
    def test_consumers_get_producer_stats(self, rng):
        model = make_model(rng)
        stats = measure_activation_sparsity(model, rng.normal(size=(2, 3, 8, 8)))
        assigned = assign_to_consumers(model, stats)
        # conv "3" consumes ReLU "2"; linear "8" consumes ReLU "5".
        assert assigned["3"] is stats["2"]
        assert assigned["8"] is stats["5"]

    def test_stem_layer_unassigned(self, rng):
        model = make_model(rng)
        stats = measure_activation_sparsity(model, rng.normal(size=(2, 3, 8, 8)))
        assigned = assign_to_consumers(model, stats)
        assert "0" not in assigned  # the stem conv sees the raw input

    def test_compiles_into_workloads(self, rng):
        from repro.hardware import compile_workloads, parse_model
        model = make_model(rng)
        images = rng.normal(size=(2, 3, 8, 8))
        stats = assign_to_consumers(
            model, measure_activation_sparsity(model, images)
        )
        specs = parse_model(model, (1, 3, 8, 8))
        program = compile_workloads(specs, activation_sparsity=stats)
        conv2 = next(w for w in program.workloads if w.spec.name == "3")
        assert conv2.sparsity.act_booth > 0.0
