"""EWMA per-layer hit rates: phase changes re-price, history stays.

The decayed rate is what :meth:`RebuildEngine.estimated_install_seconds`
discounts uncached layers by; the all-time counts stay around for
audit.  A flash crowd that displaces the old working set must re-price
within tens of accesses — the old all-time average stayed anchored to
stale history forever.
"""

import pytest

from repro.serving import ModelRegistry, RebuildEngine
from repro.serving.rebuild import RebuildCacheStats


@pytest.fixture
def handle(published):
    store, manifest, *_ = published
    return ModelRegistry(store).get(manifest.name)


class TestEwmaArithmetic:
    def test_seeded_at_first_observation(self):
        stats = RebuildCacheStats()
        stats.record_access("a", hit=True)
        assert stats.layer_hit_rate("a") == 1.0
        stats = RebuildCacheStats()
        stats.record_access("a", hit=False)
        assert stats.layer_hit_rate("a") == 0.0

    def test_decay_walk(self):
        stats = RebuildCacheStats()
        alpha = stats.hit_rate_alpha
        stats.record_access("a", hit=False)  # seeds 0.0
        stats.record_access("a", hit=True)   # alpha
        stats.record_access("a", hit=True)   # alpha + (1-alpha)*alpha
        assert stats.layer_hit_rate("a") == pytest.approx(
            alpha + (1 - alpha) * alpha
        )

    def test_custom_alpha(self):
        stats = RebuildCacheStats(hit_rate_alpha=0.5)
        stats.record_access("a", hit=False)
        stats.record_access("a", hit=True)
        assert stats.layer_hit_rate("a") == pytest.approx(0.5)
        assert stats.hit_rate_alpha == 0.5

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="hit_rate_alpha"):
            RebuildCacheStats(hit_rate_alpha=0.0)
        with pytest.raises(ValueError, match="hit_rate_alpha"):
            RebuildCacheStats(hit_rate_alpha=1.5)
        # alpha == 1 is legal: no memory, last observation wins.
        stats = RebuildCacheStats(hit_rate_alpha=1.0)
        stats.record_access("a", hit=True)
        stats.record_access("a", hit=False)
        assert stats.layer_hit_rate("a") == 0.0

    def test_phase_change_forgets_where_average_would_not(self):
        """After 100 hits then 20 misses the EWMA is near zero; the
        all-time average is still anchored above 0.8."""
        stats = RebuildCacheStats()
        for _ in range(100):
            stats.record_access("a", hit=True)
        for _ in range(20):
            stats.record_access("a", hit=False)
        ewma = stats.layer_hit_rate("a")
        all_time = stats.layer_hits["a"] / stats.layer_accesses["a"]
        assert ewma < 0.02
        assert all_time > 0.8

    def test_reset_clears_ewma(self):
        stats = RebuildCacheStats()
        stats.record_access("a", hit=True)
        stats.reset()
        assert stats.layer_hit_rate("a") == 0.0
        assert stats.layer_hit_rates() == {}


class TestInstallEstimateResponds:
    def test_estimate_tracks_decayed_rate(self, handle):
        """With the cache cleared, the install estimate discounts each
        layer by its decayed hit rate — so a hot history prices the
        pass cheaper than a cold one, and a phase change re-prices it
        back up."""
        engine = RebuildEngine(
            payloads=handle.payloads, specs=handle.layer_specs
        )
        try:
            cold = engine.estimated_install_seconds()
            assert cold > 0
            # Build a hot history, then empty the cache so every layer
            # is pending again: the estimate must now be discounted.
            for _ in range(40):
                for name in engine.layer_names:
                    engine.layer_weight(name)
            engine.clear()
            hot = engine.estimated_install_seconds()
            assert hot < cold
            # A miss storm (clear between passes) decays the rates
            # back toward zero and the estimate climbs again.
            for _ in range(40):
                for name in engine.layer_names:
                    engine.layer_weight(name)
                engine.clear()
            stormy = engine.estimated_install_seconds()
            assert stormy > hot
            assert all(
                engine.stats.layer_hit_rate(name) < 0.01
                for name in engine.layer_names
            )
        finally:
            engine.close()
