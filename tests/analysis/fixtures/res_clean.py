"""Resource constructions every teardown idiom covers: context
manager, ownership handed to the caller, stored on a class with
close(), passed onward.  Zero findings."""

import contextlib
import shutil
import tempfile
from multiprocessing import shared_memory


class SpillDir:
    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="repro-spill-")

    def close(self):
        shutil.rmtree(self.root, ignore_errors=True)


def place_segment(nbytes):
    """Creator hands the open segment to the caller."""
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return shm


def probe_segment(nbytes):
    with contextlib.closing(
        shared_memory.SharedMemory(create=True, size=nbytes)
    ) as shm:
        return shm.size


def register_segment(registry, nbytes):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    registry.adopt(shm)
