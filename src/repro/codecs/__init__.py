"""Pluggable weight codecs: one encode/decode contract from compression
to serving.

Every stored-weight scheme in the paper — the SmartExchange
``{B, Ce, index}`` decomposition and all the baselines it is compared
against — implements the same :class:`WeightCodec` protocol here, so
the artifact store publishes, and the serving engine rebuilds, any of
them interchangeably (the ``codec`` field of a bundle manifest picks
the decoder).

Registered codecs:

=================  ====================================================
``dense``          FP32 passthrough (the uncompressed baseline)
``smartexchange``  basis + power-of-2 sparse coefficients (the paper)
``prune-csr``      magnitude-pruned values as CSR + presence bitmap
``quant-linear``   symmetric linear int quantization (S8 family)
``quant-pow2``     power-of-two weights over a fitted ΩP window
``quant-fp8``      8-bit floating point (s|eeee|mmm)
=================  ====================================================

Typical use::

    from repro import codecs

    codec = codecs.get_codec("quant-linear")
    payload = codec.encode(weight)          # LayerPayload
    restored = codec.decode(payload)        # dense ndarray
    stored = codec.payload_bytes(payload)   # analytic bytes
"""

from repro.codecs.base import (
    CodecError,
    LayerPayload,
    WeightCodec,
    codec_names,
    encode_model,
    get_codec,
    register_codec,
)
from repro.codecs.dense import DenseCodec
from repro.codecs.quant import FP8Codec, LinearQuantCodec, Pow2QuantCodec
from repro.codecs.smartexchange import SmartExchangeCodec, payload_matrix_count
from repro.codecs.sparse import PruneCSRCodec
from repro.codecs.store import (
    PAYLOAD_FORMAT,
    LazyPayloadFile,
    write_payloads_npz,
)

register_codec("dense", DenseCodec)
register_codec("smartexchange", SmartExchangeCodec)
register_codec("prune-csr", PruneCSRCodec)
register_codec("quant-linear", LinearQuantCodec)
register_codec("quant-pow2", Pow2QuantCodec)
register_codec("quant-fp8", FP8Codec)

__all__ = [
    "CodecError",
    "LayerPayload",
    "WeightCodec",
    "register_codec",
    "get_codec",
    "codec_names",
    "encode_model",
    "DenseCodec",
    "SmartExchangeCodec",
    "payload_matrix_count",
    "PruneCSRCodec",
    "LinearQuantCodec",
    "Pow2QuantCodec",
    "FP8Codec",
    "LazyPayloadFile",
    "write_payloads_npz",
    "PAYLOAD_FORMAT",
]
