"""repro.costs: the EWMA codec cost model and the hardware bridge."""

import threading

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.costs import (
    DEFAULT_SECONDS_PER_BYTE,
    DEFAULT_TIER_PRIORS,
    CodecCostModel,
    HardwareCostBridge,
)


class TestCodecCostModel:
    def test_default_prior_for_unknown_codec(self):
        model = CodecCostModel()
        assert not model.calibrated("quant-linear")
        assert model.seconds_per_byte("quant-linear") == DEFAULT_SECONDS_PER_BYTE
        assert model.estimate_seconds("quant-linear", 1000) == pytest.approx(
            1000 * DEFAULT_SECONDS_PER_BYTE
        )

    def test_first_observation_sets_rate(self):
        model = CodecCostModel(alpha=0.25)
        model.observe("dense", dense_bytes=1000, seconds=1e-3)
        assert model.seconds_per_byte("dense") == pytest.approx(1e-6)
        assert model.observations("dense") == 1
        assert model.calibrated("dense")

    def test_ewma_blends_later_observations(self):
        model = CodecCostModel(alpha=0.5)
        model.observe("c", dense_bytes=100, seconds=100 * 1e-6)  # rate 1e-6
        model.observe("c", dense_bytes=100, seconds=100 * 3e-6)  # rate 3e-6
        # 0.5 * 3e-6 + 0.5 * 1e-6
        assert model.seconds_per_byte("c") == pytest.approx(2e-6)
        assert model.observations("c") == 2

    def test_degenerate_observations_ignored(self):
        model = CodecCostModel()
        model.observe("c", dense_bytes=0, seconds=1.0)
        model.observe("c", dense_bytes=100, seconds=-1.0)
        assert not model.calibrated("c")

    def test_seed_and_force_semantics(self):
        model = CodecCostModel()
        model.seed("c", 2e-6)
        assert model.seconds_per_byte("c") == pytest.approx(2e-6)
        model.seed("c", 9e-6, force=False)  # already has a rate: no-op
        assert model.seconds_per_byte("c") == pytest.approx(2e-6)
        model.seed("c", 9e-6, force=True)
        assert model.seconds_per_byte("c") == pytest.approx(9e-6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CodecCostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CodecCostModel(default_seconds_per_byte=0.0)
        with pytest.raises(ValueError):
            CodecCostModel().seed("c", 0.0)

    def test_calibrate_probes_each_codec_once(self):
        rng = np.random.default_rng(0)
        payloads, specs = {}, {}

        class Spec:
            def __init__(self, codec):
                self.codec = codec

        for i, codec in enumerate(("dense", "quant-linear", "quant-linear")):
            weight = rng.normal(size=(8, 16))
            payloads[f"l{i}"] = get_codec(codec).encode(weight)
            specs[f"l{i}"] = Spec(codec)
        model = CodecCostModel()
        probed = model.calibrate(payloads, specs)
        assert set(probed) == {"dense", "quant-linear"}
        for codec, rate in probed.items():
            assert rate > 0
            assert model.calibrated(codec)
        # A second pass without force probes nothing new.
        assert model.calibrate(payloads, specs) == {}
        assert model.calibrate(payloads, specs, force=True) != {}

    def test_as_dict_snapshot(self):
        model = CodecCostModel()
        model.observe("dense", 100, 1e-4)
        snap = model.as_dict()
        assert snap["codecs"]["dense"]["observations"] == 1
        assert snap["codecs"]["dense"]["seconds_per_byte"] > 0

    def test_calibrate_probes_largest_layer_per_codec(self):
        """Regression: the probe used to time whichever layer came
        first, so a tiny layer's coarse-timer tick could misprice the
        whole codec.  The largest-dense-bytes layer must be decoded."""
        rng = np.random.default_rng(3)

        class Spec:
            def __init__(self, codec, weight_shape):
                self.codec = codec
                self.weight_shape = weight_shape

        shapes = {"tiny": (2, 2), "large": (32, 32), "mid": (8, 8)}
        payloads, specs = {}, {}
        for name, shape in shapes.items():
            weight = rng.normal(size=shape)
            payloads[name] = get_codec("dense").encode(weight)
            specs[name] = Spec("dense", shape)

        decoded = []
        dense = get_codec("dense")
        original_decode = dense.decode

        def spying_decode(payload):
            decoded.append(payload.weight_shape)
            return original_decode(payload)

        dense.decode = spying_decode
        try:
            probed = CodecCostModel().calibrate(payloads, specs)
        finally:
            dense.decode = original_decode
        assert set(probed) == {"dense"}
        assert decoded == [(32, 32)]  # one probe, the largest layer

    def test_per_layer_rate_starts_from_codec_prior(self):
        model = CodecCostModel(alpha=0.5)
        model.observe("c", dense_bytes=100, seconds=100 * 2e-6)  # codec 2e-6
        # A layer's first observation blends into the codec prior
        # instead of replacing it.
        model.observe("c", 100, 100 * 6e-6, layer="deep")
        # 0.5 * 6e-6 + 0.5 * 2e-6 (codec rate before this observation)
        assert model.seconds_per_byte("c", layer="deep") == pytest.approx(4e-6)
        assert model.observations("c", layer="deep") == 1
        # The codec-level EWMA absorbed the observation too.
        assert model.seconds_per_byte("c") == pytest.approx(4e-6)

    def test_per_layer_rates_diverge_from_codec_prior(self):
        """Two layers of one codec with different decode behavior end
        up with different rates — the codec rate is only the prior."""
        model = CodecCostModel(alpha=0.5)
        for _ in range(4):
            model.observe("c", 100, 100 * 1e-6, layer="cheap")
            model.observe("c", 100, 100 * 9e-6, layer="costly")
        cheap = model.seconds_per_byte("c", layer="cheap")
        costly = model.seconds_per_byte("c", layer="costly")
        codec = model.seconds_per_byte("c")
        assert cheap < codec < costly
        # A layer with no observations of its own falls back to the
        # codec rate.
        assert model.seconds_per_byte("c", layer="unseen") == codec
        assert model.estimate_seconds("c", 1000, layer="cheap") < (
            model.estimate_seconds("c", 1000, layer="costly")
        )

    def test_snapshot_layer_rates_is_a_copy(self):
        model = CodecCostModel()
        model.observe("c", 100, 1e-4, layer="l")
        rates = model.snapshot_layer_rates()
        assert ("c", "l") in rates
        rates[("c", "l")] = 0.0
        assert model.seconds_per_byte("c", layer="l") > 0

    def test_snapshot_all_rates_matches_individual_snapshots(self):
        model = CodecCostModel()
        model.observe("c", 100, 1e-4, layer="l")
        model.observe("d", 100, 2e-4)
        codec_rates, layer_rates = model.snapshot_all_rates()
        assert codec_rates == model.snapshot_rates()
        assert layer_rates == model.snapshot_layer_rates()

    def test_calibrate_falls_back_past_unusable_largest_layer(self):
        """If a codec's largest candidate is not a LayerPayload, the
        next-largest usable layer is probed instead of silently
        leaving the codec uncalibrated."""
        rng = np.random.default_rng(5)

        class Spec:
            def __init__(self, codec, weight_shape):
                self.codec = codec
                self.weight_shape = weight_shape

        payloads = {
            "big": [{"not": "a payload"}],  # legacy/raw entry
            "mid": get_codec("dense").encode(rng.normal(size=(8, 8))),
        }
        specs = {
            "big": Spec("dense", (32, 32)),
            "mid": Spec("dense", (8, 8)),
        }
        model = CodecCostModel()
        probed = model.calibrate(payloads, specs)
        assert set(probed) == {"dense"}
        assert model.calibrated("dense")

    def test_as_dict_nests_layer_rates(self):
        model = CodecCostModel()
        model.observe("c", 100, 1e-4, layer="l0")
        model.observe("c", 100, 1e-4)
        snap = model.as_dict()
        assert snap["codecs"]["c"]["observations"] == 2
        layer = snap["codecs"]["c"]["layers"]["l0"]
        assert layer["observations"] == 1
        assert layer["seconds_per_byte"] > 0

    def test_snapshot_rates_is_a_copy(self):
        model = CodecCostModel()
        model.observe("dense", 100, 1e-4)
        rates = model.snapshot_rates()
        assert rates == {"dense": pytest.approx(1e-6)}
        rates["dense"] = 0.0  # mutating the copy must not leak back
        assert model.seconds_per_byte("dense") == pytest.approx(1e-6)

    def test_calibrate_tolerates_zero_second_probe(self, monkeypatch):
        """A decode measured as 0.0 s (coarse timer) keeps the prior."""
        import repro.costs.model as costs_model

        ticks = iter([1.0, 1.0])  # start == end -> 0.0 s probe
        monkeypatch.setattr(
            costs_model.time, "perf_counter", lambda: next(ticks)
        )
        payloads = {"a": get_codec("dense").encode(np.ones((4, 4)))}

        class Spec:
            codec = "dense"

        model = CodecCostModel()
        assert model.calibrate(payloads, {"a": Spec()}) == {}
        assert not model.calibrated("dense")
        assert model.seconds_per_byte("dense") == DEFAULT_SECONDS_PER_BYTE

    def test_concurrent_observers_are_safe(self):
        model = CodecCostModel()
        errors = []

        def worker(codec):
            try:
                for _ in range(200):
                    model.observe(codec, 100, 1e-5)
                    model.seconds_per_byte(codec)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(f"c{i % 3}",))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = sum(model.observations(f"c{i}") for i in range(3))
        assert total == 6 * 200


class TestHardwareCostBridge:
    def test_unit_conversion(self):
        bridge = HardwareCostBridge(effective_watts=1.0)
        # miss energy in pJ -> joules -> seconds at 1 W, per dense byte
        pj = bridge.miss_energy_pj(payload_bytes=100, dense_bytes=1000)
        assert bridge.seconds_per_byte(100, 1000) == pytest.approx(
            pj * 1e-12 / 1000
        )

    def test_compression_saves_energy(self):
        bridge = HardwareCostBridge()
        dense_bytes = 10_000
        # A 10x-compressed payload: fetching 1/10th of the bytes from
        # DRAM dwarfs the MAC-class rebuild ops (the paper's premise).
        assert bridge.energy_saved_pj(dense_bytes // 10, dense_bytes) > 0
        # The degenerate "payload as big as dense" trade saves nothing.
        assert bridge.energy_saved_pj(dense_bytes, dense_bytes) <= 0

    def test_bigger_payload_costs_more(self):
        bridge = HardwareCostBridge()
        cheap = bridge.miss_energy_pj(100, 1000)
        costly = bridge.miss_energy_pj(900, 1000)
        assert costly > cheap

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HardwareCostBridge(effective_watts=0.0)
        with pytest.raises(ValueError):
            HardwareCostBridge(rebuild_ops_per_byte=-1.0)

    def test_seed_fills_only_unmeasured_codecs(self):
        rng = np.random.default_rng(1)
        payloads = {
            "a": get_codec("dense").encode(rng.normal(size=(4, 8))),
            "b": get_codec("quant-linear").encode(rng.normal(size=(4, 8))),
        }
        model = CodecCostModel()
        model.observe("dense", 256, 1e-5)  # "dense" already measured
        measured = model.seconds_per_byte("dense")
        seeded = HardwareCostBridge().seed(model, payloads)
        assert "quant-linear" in seeded
        assert "dense" not in seeded
        assert model.seconds_per_byte("dense") == measured
        assert model.seconds_per_byte("quant-linear") == pytest.approx(
            seeded["quant-linear"]
        )

    def test_seed_force_overrides(self):
        rng = np.random.default_rng(2)
        payloads = {"a": get_codec("dense").encode(rng.normal(size=(4, 8)))}
        model = CodecCostModel()
        model.observe("dense", 256, 1e-5)
        seeded = HardwareCostBridge().seed(model, payloads, force=True)
        assert model.seconds_per_byte("dense") == pytest.approx(
            seeded["dense"]
        )


class TestTierRates:
    def test_known_tier_prior_before_any_observation(self):
        model = CodecCostModel()
        for tier, prior in DEFAULT_TIER_PRIORS.items():
            assert model.tier_seconds_per_byte(tier) == prior
            assert model.tier_observations(tier) == 0

    def test_unknown_tier_falls_back_to_codec_default(self):
        model = CodecCostModel()
        assert model.tier_seconds_per_byte("tape") == DEFAULT_SECONDS_PER_BYTE

    def test_first_observation_blends_into_prior(self):
        model = CodecCostModel(alpha=0.25)
        rate = model.observe_tier_access("disk", dense_bytes=1000, seconds=1e-3)
        expected = 0.25 * 1e-6 + 0.75 * DEFAULT_TIER_PRIORS["disk"]
        assert rate == pytest.approx(expected)
        assert model.tier_seconds_per_byte("disk") == pytest.approx(expected)
        assert model.tier_observations("disk") == 1

    def test_degenerate_observation_ignored(self):
        model = CodecCostModel()
        model.observe_tier_access("disk", dense_bytes=0, seconds=1.0)
        model.observe_tier_access("disk", dense_bytes=100, seconds=-1.0)
        assert model.tier_observations("disk") == 0
        assert model.tier_seconds_per_byte("disk") == DEFAULT_TIER_PRIORS["disk"]

    def test_estimate_tier_seconds(self):
        model = CodecCostModel()
        model.seed_tier("disk", 1e-8)
        assert model.estimate_tier_seconds("disk", 1000) == pytest.approx(1e-5)
        assert model.estimate_tier_seconds("disk", -5) == 0.0

    def test_seed_tier_force_semantics(self):
        model = CodecCostModel()
        model.seed_tier("disk", 1e-8)
        model.seed_tier("disk", 5e-8, force=False)  # defers to existing
        assert model.tier_seconds_per_byte("disk") == 1e-8
        model.seed_tier("disk", 5e-8)
        assert model.tier_seconds_per_byte("disk") == 5e-8
        with pytest.raises(ValueError):
            model.seed_tier("disk", 0.0)

    def test_seeding_is_not_an_observation(self):
        model = CodecCostModel()
        model.seed_tier("disk", 1e-8)
        assert model.tier_observations("disk") == 0

    def test_snapshot_tier_rates(self):
        model = CodecCostModel()
        assert model.snapshot_tier_rates() == {}
        model.seed_tier("compressed-ram", 2e-9)
        assert model.snapshot_tier_rates() == {"compressed-ram": 2e-9}

    def test_clone_is_isolated_both_ways(self):
        model = CodecCostModel(alpha=0.5)
        model.observe("dense", 1000, 1e-4)
        model.observe_tier_access("disk", 1000, 1e-4)
        twin = model.clone()
        assert twin.alpha == model.alpha
        assert twin.seconds_per_byte("dense") == model.seconds_per_byte("dense")
        assert twin.tier_seconds_per_byte("disk") == model.tier_seconds_per_byte(
            "disk"
        )
        twin.observe_tier_access("disk", 10, 1.0)
        twin.observe("dense", 10, 1.0)
        assert twin.tier_seconds_per_byte("disk") != model.tier_seconds_per_byte(
            "disk"
        )
        assert model.tier_observations("disk") == 1
        assert model.observations("dense") == 1

    def test_as_dict_reports_tiers(self):
        model = CodecCostModel()
        model.observe_tier_access("compressed-ram", 1000, 1e-5)
        snap = model.as_dict()
        assert snap["tiers"]["compressed-ram"]["observations"] == 1
        assert snap["tiers"]["compressed-ram"]["seconds_per_byte"] == (
            model.tier_seconds_per_byte("compressed-ram")
        )


class TestHardwareBridgeTiers:
    def test_tier_rates_are_positive_and_ordered(self):
        bridge = HardwareCostBridge()
        ram = bridge.tier_seconds_per_byte("compressed-ram")
        disk = bridge.tier_seconds_per_byte("disk")
        assert 0 < ram < disk  # RAM inflate beats a disk read

    def test_disk_rate_is_reciprocal_bandwidth(self):
        bridge = HardwareCostBridge(disk_bytes_per_second=100e6)
        assert bridge.tier_seconds_per_byte("disk") == pytest.approx(1e-8)

    def test_unknown_tier_falls_back_to_priors(self):
        bridge = HardwareCostBridge()
        assert (
            bridge.tier_seconds_per_byte("tape") == DEFAULT_SECONDS_PER_BYTE
        )

    def test_invalid_disk_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            HardwareCostBridge(disk_bytes_per_second=0.0)

    def test_seed_tiers_fills_only_unseeded(self):
        bridge = HardwareCostBridge()
        model = CodecCostModel()
        model.seed_tier("disk", 123e-9)
        seeded = bridge.seed_tiers(model)
        assert "compressed-ram" in seeded
        assert "disk" not in seeded
        assert model.tier_seconds_per_byte("disk") == 123e-9
        assert model.tier_seconds_per_byte("compressed-ram") == pytest.approx(
            seeded["compressed-ram"]
        )

    def test_seed_tiers_force_overrides(self):
        bridge = HardwareCostBridge()
        model = CodecCostModel()
        model.seed_tier("disk", 123e-9)
        seeded = bridge.seed_tiers(model, force=True)
        assert model.tier_seconds_per_byte("disk") == pytest.approx(
            seeded["disk"]
        )
