"""Committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that are known and
deliberately unfixed.  A current finding that matches an entry by
``(rule, file, message)`` is filtered out of the gate; matching
ignores line numbers so unrelated edits do not churn the file.  An
entry that matches *no* current finding — or whose file no longer
exists — is **stale**, and CI's self-check (``--fail-on-stale``)
fails so fixed findings get removed from the baseline in the same PR
that fixes them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    file: str
    message: str
    line: int = 0  # informational; not used for matching

    @property
    def key(self) -> tuple:
        return (self.rule, self.file, self.message)


def load_baseline(path: Path) -> List[BaselineEntry]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a baseline file (missing 'findings')")
    entries = []
    for raw in data["findings"]:
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                file=str(raw["file"]),
                message=str(raw["message"]),
                line=int(raw.get("line", 0)),
            )
        )
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "file": finding.file,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    root: Path,
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Split ``findings`` against the baseline.

    Returns ``(new_findings, stale_entries)``: findings not covered by
    any entry, and entries that covered nothing (or point at files
    that no longer exist).  One entry covers every finding sharing its
    key, so a message that recurs N times needs one entry, not N.
    """
    covered: Dict[tuple, bool] = {entry.key: False for entry in entries}
    new_findings: List[Finding] = []
    for finding in findings:
        if finding.baseline_key in covered:
            covered[finding.baseline_key] = True
        else:
            new_findings.append(finding)
    stale: List[BaselineEntry] = []
    for entry in entries:
        if not covered[entry.key] or not (root / entry.file).exists():
            stale.append(entry)
    return new_findings, stale
