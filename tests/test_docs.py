"""Documentation integrity: the promises in the docs point at real code."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_text():
    return (ROOT / "README.md").read_text()


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_required_docs_present(self, name):
        assert (ROOT / name).is_file(), f"{name} is missing"

    def test_experiments_md_covers_all_figures(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Table I", "Figure 4", "Figure 8", "Figure 9",
                       "Table II", "Table III", "Figure 10", "Figure 11",
                       "Figure 12", "Figure 13", "Figure 14", "Figure 15"):
            assert figure in text, f"EXPERIMENTS.md lacks {figure}"


class TestDesignIndexPointsAtRealFiles:
    def test_bench_targets_exist(self, design_text):
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design_text):
            assert (ROOT / "benchmarks" / match.group(1)).is_file(), match.group(0)

    def test_experiment_modules_exist(self, design_text):
        for match in re.finditer(r"experiments/(\w+)\.py", design_text):
            path = ROOT / "src" / "repro" / "experiments" / f"{match.group(1)}.py"
            assert path.is_file(), match.group(0)


class TestReadmePromises:
    def test_listed_examples_exist(self, readme_text):
        for match in re.finditer(r"examples/(\w+\.py)", readme_text):
            assert (ROOT / "examples" / match.group(1)).is_file(), match.group(0)

    def test_quickstart_snippet_runs(self, readme_text):
        """The README's first code block must be valid, runnable API."""
        import numpy as np
        from repro import nn
        from repro.core import SmartExchangeConfig, apply_smartexchange

        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.BatchNorm2d(8), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(8, 10),
        )
        config = SmartExchangeConfig(theta=4e-3, max_iterations=3,
                                     target_row_sparsity=0.3)
        _, report = apply_smartexchange(model, config)
        assert report.compression_rate > 1.0

    def test_hardware_snippet_runs(self):
        from repro.hardware import (
            DianNao,
            SmartExchangeAccelerator,
            build_workloads,
        )
        workloads = build_workloads("resnet50")
        se = SmartExchangeAccelerator().simulate_model(workloads, "resnet50")
        dn = DianNao().simulate_model(workloads, "resnet50")
        assert dn.total_energy_pj / se.total_energy_pj > 1.0
