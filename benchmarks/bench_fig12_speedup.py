"""Bench: regenerate Figure 12 (normalized speedup)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig12_speedup


def bench_fig12_speedup(benchmark):
    result = run_and_print(benchmark, fig12_speedup.run)
    assert result.rows[-1]["smartexchange"] > 5.0
