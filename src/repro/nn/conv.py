"""Convolution layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

_DEFAULT_RNG = np.random.default_rng(0)


class Conv2d(Module):
    """2-D convolution with optional grouping.

    ``groups == in_channels == out_channels`` gives a depth-wise
    convolution (MobileNetV2 / EfficientNet).  The stored weight layout is
    ``(out_channels, in_channels // groups, kh, kw)`` — the layout the
    SmartExchange reshaping rules in :mod:`repro.core.reshape` consume.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        dilation: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        rng = rng or _DEFAULT_RNG
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.dilation = dilation
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(rng, shape))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.in_channels == self.out_channels

    @property
    def is_pointwise(self) -> bool:
        return self.kernel_size == 1 and self.groups == 1

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
            dilation=self.dilation,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
            f"g={self.groups}, d={self.dilation})"
        )
