"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    make_classification,
    make_segmentation,
    synthetic_camvid,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)


class TestClassification:
    def test_shapes_and_counts(self):
        dataset = make_classification("t", num_classes=4, image_size=16,
                                      channels=3, train_per_class=5,
                                      test_per_class=2)
        assert dataset.train_images.shape == (20, 3, 16, 16)
        assert dataset.test_images.shape == (8, 3, 16, 16)
        assert dataset.image_shape == (3, 16, 16)

    def test_all_classes_present(self):
        dataset = make_classification("t", 5, 8, train_per_class=3)
        assert set(dataset.train_labels) == set(range(5))

    def test_deterministic_given_seed(self):
        a = make_classification("t", 3, 8, seed=7)
        b = make_classification("t", 3, 8, seed=7)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = make_classification("t", 3, 8, seed=1)
        b = make_classification("t", 3, 8, seed=2)
        assert not np.allclose(a.train_images, b.train_images)

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            make_classification("t", 1, 8)

    def test_classes_are_separable_by_prototype(self):
        """A nearest-prototype classifier must beat chance by a wide
        margin — the datasets must be learnable for compression deltas
        to mean anything."""
        dataset = make_classification("t", 4, 16, train_per_class=10,
                                      test_per_class=10, noise=0.3, seed=0)
        prototypes = np.stack([
            dataset.train_images[dataset.train_labels == cls].mean(axis=0)
            for cls in range(4)
        ])
        flat_test = dataset.test_images.reshape(len(dataset.test_images), -1)
        flat_proto = prototypes.reshape(4, -1)
        distances = ((flat_test[:, None] - flat_proto[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == dataset.test_labels).mean()
        assert accuracy > 0.8

    def test_named_wrappers(self):
        assert synthetic_cifar10(2, 1).image_shape == (3, 32, 32)
        assert synthetic_imagenet(num_classes=4, image_size=24,
                                  train_per_class=2,
                                  test_per_class=1).num_classes == 4
        assert synthetic_mnist(2, 1).image_shape == (1, 28, 28)


class TestSegmentation:
    def test_shapes(self):
        dataset = make_segmentation("s", num_classes=4, height=24, width=32,
                                    train_count=3, test_count=2)
        assert dataset.train_images.shape == (3, 3, 24, 32)
        assert dataset.train_masks.shape == (3, 24, 32)
        assert dataset.image_shape == (3, 24, 32)

    def test_mask_labels_in_range(self):
        dataset = make_segmentation("s", num_classes=5, height=16, width=16)
        assert dataset.train_masks.min() >= 0
        assert dataset.train_masks.max() < 5

    def test_background_present(self):
        dataset = make_segmentation("s", num_classes=4, height=32, width=32,
                                    shapes_per_image=2)
        assert (dataset.train_masks == 0).any()

    def test_foreground_present(self):
        dataset = make_segmentation("s", num_classes=4, height=32, width=32,
                                    shapes_per_image=4)
        assert (dataset.train_masks > 0).any()

    def test_deterministic(self):
        a = make_segmentation("s", 3, 16, 16, seed=5)
        b = make_segmentation("s", 3, 16, 16, seed=5)
        np.testing.assert_array_equal(a.train_masks, b.train_masks)

    def test_needs_background_plus_one(self):
        with pytest.raises(ValueError):
            make_segmentation("s", 1, 16, 16)

    def test_camvid_wrapper(self):
        dataset = synthetic_camvid(height=16, width=24, train_count=2,
                                   test_count=1)
        assert dataset.num_classes == 11
        assert dataset.train_images.shape == (2, 3, 16, 24)

    def test_shape_colours_match_labels(self):
        """Pixels of one class share (approximately) one colour, so the
        task is actually learnable."""
        dataset = make_segmentation("s", num_classes=3, height=32, width=32,
                                    noise=0.0, train_count=4, seed=0)
        for image, mask in zip(dataset.train_images, dataset.train_masks):
            for cls in np.unique(mask):
                pixels = image[:, mask == cls]
                spread = pixels.std(axis=1).max()
                assert spread < 0.15
