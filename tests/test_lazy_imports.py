"""`import repro` stays cheap: subpackages resolve lazily on attribute
access and are advertised via ``__dir__``."""

import subprocess
import sys

import repro


def test_subpackages_resolve_lazily():
    for name in ("codecs", "core", "compression", "costs", "hardware",
                 "serving"):
        module = getattr(repro, name)
        assert module.__name__ == f"repro.{name}"


def test_dir_lists_subpackages():
    listed = dir(repro)
    for name in ("codecs", "core", "compression", "costs", "hardware",
                 "serving", "nn", "datasets", "sparsity", "experiments"):
        assert name in listed


def test_unknown_attribute_raises():
    try:
        repro.not_a_subpackage
    except AttributeError as error:
        assert "not_a_subpackage" in str(error)
    else:
        raise AssertionError("expected AttributeError")


def test_bare_import_does_not_eagerly_load_subpackages():
    # Run in a clean interpreter: `import repro` must not drag in the
    # heavy subpackages until they are touched.
    code = (
        "import sys, repro; "
        "heavy = [m for m in sys.modules if m.startswith('repro.') "
        "and m not in ('repro.version',)]; "
        "assert not heavy, heavy; "
        "repro.codecs; "
        "assert 'repro.codecs' in sys.modules"
    )
    subprocess.run([sys.executable, "-c", code], check=True)
