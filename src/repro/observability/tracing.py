"""Lightweight request tracing: spans, a tracer, and a ring buffer.

A :class:`Span` is one timed phase of work — monotonic start
(``time.perf_counter``), duration, free-form tags, and a parent link —
and spans of one request share a trace id minted when the request
enters the system.  Spans nest two ways:

- **explicitly**, by passing ``parent=`` (how the serving engine ties
  a worker-thread phase span to a root span begun on the submitting
  thread), and
- **implicitly**, through a per-thread active-span stack
  (:meth:`Tracer.span` / :meth:`Tracer.activate`), which is how the
  rebuild engine's per-layer decode spans land under whatever phase
  span the worker currently has open without the rebuild engine
  knowing anything about requests.

Finished spans are appended to a bounded :class:`SpanCollector` ring
buffer — old spans fall off the back under sustained load, the
``dropped`` counter says how many — and parents also keep their
children, so a request's root span carries its whole tree for the
trace recorder even after the ring has moved on.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["Span", "SpanCollector", "Tracer"]

DEFAULT_SPAN_CAPACITY = 4096

_INHERIT = object()  # sentinel: resolve parent from the thread-local stack


class Span:
    """One timed phase: name, trace/parent ids, tags, and children."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "tags",
        "children",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int] = None,
        start_s: Optional[float] = None,
        tags: Optional[Dict] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = time.perf_counter() if start_s is None else start_s
        self.duration_s: Optional[float] = None
        self.tags: Dict = dict(tags) if tags else {}
        self.children: List["Span"] = []

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def as_dict(self) -> Dict:
        """Flat form (no children) — what the collector stores."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }

    def as_tree(self) -> Dict:
        """Nested form — what the trace recorder serializes."""
        out = self.as_dict()
        out["children"] = [child.as_tree() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, duration={self.duration_s})"
        )


class SpanCollector:
    """Thread-safe bounded ring buffer of finished spans (flat dicts).

    At capacity the oldest span is evicted per append; ``dropped``
    counts evictions so a reader can tell a quiet system from one
    whose history outran the ring.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: "deque[Dict]" = deque(maxlen=capacity)
        self._dropped = 0
        self._total = 0

    def add(self, span: Dict) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)
            self._total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def total(self) -> int:
        """Spans ever collected (including since-evicted ones)."""
        with self._lock:
            return self._total

    def export(self) -> List[Dict]:
        """Snapshot of the buffered spans, oldest first (copies)."""
        with self._lock:
            return [dict(span) for span in self._spans]

    def drain(self) -> List[Dict]:
        """Export and clear (eviction/total counters kept)."""
        with self._lock:
            spans = [dict(span) for span in self._spans]
            self._spans.clear()
        return spans


class Tracer:
    """Mints trace ids, opens/finishes spans, feeds the collector."""

    def __init__(self, collector: Optional[SpanCollector] = None) -> None:
        # `collector or ...` would discard an *empty* collector: the
        # ring defines __len__, so a fresh one is falsy.
        self.collector = collector if collector is not None else SpanCollector()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids):08d}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost active span on *this* thread (or None)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Span] = _INHERIT,
        trace_id: Optional[str] = None,
        tags: Optional[Dict] = None,
        start_s: Optional[float] = None,
    ) -> Span:
        """Open a span.  ``parent`` defaults to this thread's active
        span; pass ``parent=None`` explicitly for a root.  A root with
        no ``trace_id`` mints a fresh one."""
        if parent is _INHERIT:
            parent = self.current_span()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = trace_id or self.new_trace_id()
            parent_id = None
        span = Span(
            name,
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            start_s=start_s,
            tags=tags,
        )
        if parent is not None:
            parent.children.append(span)
        return span

    def finish_span(
        self, span: Span, end_s: Optional[float] = None, **tags
    ) -> Span:
        """Close a span (idempotent) and push it into the collector."""
        if span.finished:
            return span
        end = time.perf_counter() if end_s is None else end_s
        span.duration_s = max(0.0, end - span.start_s)
        if tags:
            span.tags.update(tags)
        self.collector.add(span.as_dict())
        return span

    def emit(
        self,
        name: str,
        start_s: float,
        end_s: Optional[float] = None,
        parent: Optional[Span] = _INHERIT,
        trace_id: Optional[str] = None,
        tags: Optional[Dict] = None,
    ) -> Span:
        """Record an already-measured span in one call."""
        span = self.start_span(
            name, parent=parent, trace_id=trace_id, tags=tags, start_s=start_s
        )
        return self.finish_span(span, end_s=end_s)

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self, span: Span):
        """Make ``span`` this thread's active span (for implicit
        nesting) without owning its finish."""
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = _INHERIT,
        trace_id: Optional[str] = None,
        tags: Optional[Dict] = None,
    ):
        """Open, activate, and finish a span around a block."""
        opened = self.start_span(name, parent=parent, trace_id=trace_id, tags=tags)
        with self.activate(opened):
            try:
                yield opened
            finally:
                self.finish_span(opened)
