"""Leak-prone resource constructions: a segment that nothing can ever
unlink, a discarded temp directory, and a class that stores a segment
but defines no teardown."""

import tempfile
from multiprocessing import shared_memory


def leaky_probe(nbytes):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return shm.size


def scratch():
    tempfile.mkdtemp(prefix="repro-test-")


class Holder:
    def __init__(self, nbytes):
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
