"""repro.analysis — AST-based static analysis for the serving stack.

The serving layer is a concurrent system with machine-checkable
invariants — lock coverage over shared state, picklability of objects
that cross process pipes, a metrics naming/label schema, resource
lifecycle for shared-memory segments and spill directories, and
monotonic-clock discipline in latency paths.  This package enforces
them at review time:

>>> python -m repro.analysis src/repro

Architecture: a :class:`~repro.analysis.core.Rule` inspects parsed
:class:`~repro.analysis.walker.SourceFile` objects (one AST parse per
file per run, shared across rules) and emits
:class:`~repro.analysis.core.Finding` records; the CLI filters them
through inline ``# repro: ignore[RULE-ID]`` suppressions and the
committed ``analysis-baseline.json``, and exits non-zero on anything
new.  See DESIGN.md ("Static analysis layer") for the rule catalog
and how to add a rule.
"""

from repro.analysis.baseline import (
    BaselineEntry,
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import ERROR, WARNING, Finding, Rule, sort_findings
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, make_rules
from repro.analysis.walker import Analyzer, SourceFile, iter_python_files

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "ERROR",
    "Finding",
    "Rule",
    "RULES_BY_ID",
    "SourceFile",
    "WARNING",
    "apply_baseline",
    "iter_python_files",
    "load_baseline",
    "make_rules",
    "sort_findings",
    "write_baseline",
]
