"""Wire classes holding unpicklable state: one from the known
procpool set, one auto-detected from its ``conn.send(...)`` use."""

import threading
from dataclasses import dataclass


class BatchEnvelope:
    """Known wire name carrying a lock — dies in pickle at send time."""

    def __init__(self, batch_id, samples):
        self.batch_id = batch_id
        self.samples = samples
        self._lock = threading.Lock()


@dataclass
class CustomPing:
    """Not a known wire name; detected because it is constructed
    inside a ``.send(...)`` argument below."""

    sequence: int
    done: threading.Event


def ping(conn, sequence, event):
    conn.send(CustomPing(sequence, done=event))
