"""PE-array shape design-space exploration.

The paper fixes the 3-D PE array at dimM x dimC x dimF = 64 x 16 x 8
(8K bit-serial lanes).  This ablation sweeps alternative factorizations
of the same 8K lanes across the benchmark suite and reports the geomean
speedup and energy efficiency of each shape — checking that the paper's
choice sits at (or near) the best point under this cost model.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.common import ExperimentResult, geometric_mean
from repro.hardware import (
    DianNao,
    SmartExchangeAccelerator,
    SmartExchangeAcceleratorConfig,
    build_workloads,
)
from repro.hardware.workloads import BENCHMARK_SUITE

# Factorizations of 8192 lanes (dim_m, dim_c, dim_f).
ARRAY_SHAPES: Tuple[Tuple[int, int, int], ...] = (
    (64, 16, 8),  # the paper's configuration
    (128, 8, 8),
    (32, 32, 8),
    (64, 8, 16),
    (16, 16, 32),
    (256, 16, 2),
)


def run(shapes: Tuple[Tuple[int, int, int], ...] = ARRAY_SHAPES) -> ExperimentResult:
    table = ExperimentResult("Ablation — PE-array shape (8K lanes, geomeans)")
    suite_workloads = {
        model: build_workloads(model) for model, _ in BENCHMARK_SUITE
    }
    diannao = DianNao()
    reference = {
        model: diannao.simulate_model(workloads, model)
        for model, workloads in suite_workloads.items()
    }
    for dim_m, dim_c, dim_f in shapes:
        config = SmartExchangeAcceleratorConfig(
            dim_m=dim_m, dim_c=dim_c, dim_f=dim_f
        )
        accelerator = SmartExchangeAccelerator(config)
        speedups: List[float] = []
        gains: List[float] = []
        for model, workloads in suite_workloads.items():
            result = accelerator.simulate_model(workloads, model)
            speedups.append(
                reference[model].total_cycles / result.total_cycles
            )
            gains.append(
                reference[model].total_energy_pj / result.total_energy_pj
            )
        table.rows.append({
            "dim_m": dim_m,
            "dim_c": dim_c,
            "dim_f": dim_f,
            "geomean_speedup_x": geometric_mean(speedups),
            "geomean_energy_gain_x": geometric_mean(gains),
            "is_paper_shape": (dim_m, dim_c, dim_f) == (64, 16, 8),
        })
    table.notes = (
        "All shapes use the same 8192 bit-serial lanes; differences come "
        "purely from how layer dimensions map onto the array."
    )
    return table
