"""Serving telemetry: throughput, latency percentiles, and the realized
storage-vs-compute trade.

:class:`ServingStats` is fed by the engine (one ``record_batch`` per
executed batch, one ``record_request`` per completed request) and folds
in the rebuild-cache counters and bundle accounting on demand, so one
``summary()`` call answers: how fast are we serving, what did batching
buy, how often did the rebuild cache hit, and how many dense bytes did
the compressed form keep out of memory per request.

Counters live in a :class:`~repro.observability.metrics.MetricsRegistry`
rather than ad-hoc fields: each accumulator allocates typed instruments
(``repro_serving_*`` counters and histograms, per-worker/per-policy
slices as label dimensions) and reads its summary numbers back out of
them, so the registry's ``to_prometheus_text()`` export and the
``summary()`` dict can never drift apart.  Exact latency percentiles
still come from the raw sample lists (histograms quantize); the
histograms are the export/streaming view of the same observations.

Counters are also sliced per batch policy (``record_batch``'s
``policy`` tag), and :meth:`ServingStats.cost_curve` summarizes the
rebuild engine's sampled trade curve — resident bytes vs cumulative
rebuild seconds over the access stream — which is how the realized
storage-vs-compute trade of an admission policy gets plotted.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.serving.artifacts import ArtifactManifest
from repro.serving.rebuild import RebuildCacheStats

LATENCY_PERCENTILES = (50.0, 90.0, 99.0)

# Batch-size histogram bounds: powers of two up to the largest batch a
# policy will realistically form.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def percentiles(
    values: Sequence[float], points: Sequence[float] = LATENCY_PERCENTILES
) -> Dict[str, float]:
    """{"p50": ..., "p90": ..., ...} over the finite samples.

    Well-defined on the edge cases a live accumulator hits:

    - no samples (empty list, empty array) → all points 0.0;
    - one sample → every point is that sample (nothing to
      interpolate);
    - arrays of any shape are flattened, and non-finite samples
      (NaN/inf from a failed timer) are dropped rather than poisoning
      every percentile.
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size:
        array = array[np.isfinite(array)]
    if array.size == 0:
        return {f"p{point:g}": 0.0 for point in points}
    if array.size == 1:
        only = float(array[0])
        return {f"p{point:g}": only for point in points}
    return {
        f"p{point:g}": float(np.percentile(array, point)) for point in points
    }


class WorkerStats:
    """Per-worker slice of the engine's counters (one pool member).

    The three fields are metric-backed properties over
    ``repro_serving_worker_*`` counters tagged with the worker index,
    so the Prometheus export carries the same per-worker slices the
    summary prints.  ``+=`` keeps working through the setters.
    """

    PREFIX = "repro_serving_worker"
    HELP = "per-worker slice of the serving pool counters"

    __slots__ = ("_batches", "_requests", "_busy")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> None:
        metrics = metrics if metrics is not None else MetricsRegistry()
        prefix, help_text = self.PREFIX, self.HELP
        self._batches = metrics.counter(
            f"{prefix}_batches_total", help_text, tags
        )
        self._requests = metrics.counter(
            f"{prefix}_requests_total", help_text, tags
        )
        self._busy = metrics.counter(
            f"{prefix}_busy_seconds_total", help_text, tags
        )

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @batches.setter
    def batches(self, value: int) -> None:
        self._batches.set(value)

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @requests.setter
    def requests(self, value: int) -> None:
        self._requests.set(value)

    @property
    def busy_seconds(self) -> float:
        return self._busy.value

    @busy_seconds.setter
    def busy_seconds(self, value: float) -> None:
        self._busy.set(value)

    def reset(self) -> None:
        self._batches.reset()
        self._requests.reset()
        self._busy.reset()

    def as_dict(self) -> Dict:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "busy_seconds": self.busy_seconds,
        }


class PolicyStats(WorkerStats):
    """Per-batch-policy slice of the engine's counters (same shape)."""

    PREFIX = "repro_serving_policy"
    HELP = "per-batch-policy slice of the serving counters"

    __slots__ = ()


class ServingStats:
    """Thread-safe accumulator for the inference engine's counters.

    With a worker pool, summed per-batch busy seconds overstate elapsed
    time (N workers each busy for T seconds overlap in wall-clock), so
    the accumulator also tracks the observed *pool* serving window —
    from the start of the first worker batch to the end of the last —
    and :attr:`throughput_rps` divides pooled requests by that window
    (offline-only use keeps the busy-seconds denominator).
    ``busy_seconds`` stays available; ``busy_seconds / wall_seconds``
    over a pool-only run is the realized parallelism.

    Pass ``metrics=`` to allocate the instruments out of a shared
    registry (the engine shares one registry between its serving and
    rebuild stats so one export covers both).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.request_latencies_s: List[float] = []
        self.batch_latencies_s: List[float] = []
        self.batch_sizes: List[int] = []
        self.per_worker: Dict[int, WorkerStats] = {}
        self.per_policy: Dict[str, PolicyStats] = {}
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self._requests = self.metrics.counter(
            "repro_serving_requests_total", "requests served (batched)"
        )
        self._batches = self.metrics.counter(
            "repro_serving_batches_total", "batches executed"
        )
        self._failed = self.metrics.counter(
            "repro_serving_failed_requests_total",
            "requests whose batch raised instead of completing",
        )
        self._busy = self.metrics.counter(
            "repro_serving_busy_seconds_total",
            "summed per-batch execution seconds",
        )
        self._request_latency = self.metrics.histogram(
            "repro_serving_request_latency_seconds",
            "end-to-end request latency (queueing + execution)",
        )
        self._batch_latency = self.metrics.histogram(
            "repro_serving_batch_latency_seconds",
            "per-batch execution latency",
        )
        self._batch_size = self.metrics.histogram(
            "repro_serving_batch_size",
            "formed batch sizes",
            buckets=BATCH_SIZE_BUCKETS,
        )

    def reset(self) -> None:
        """Zero everything atomically under the stats lock.

        Every piece of state — sample lists, instruments, per-worker /
        per-policy slices, and the wall-clock window anchors — is
        cleared inside one critical section, so a concurrent
        ``record_batch`` lands either entirely before or entirely
        after the reset, never across it.  Slice instruments are
        zeroed *before* the dicts are dropped so the metrics registry
        (where the series outlive the dict entries) agrees with the
        freshly empty summary.
        """
        with self._lock:
            self.request_latencies_s = []
            self.batch_latencies_s = []
            self.batch_sizes = []
            for slice_ in self.per_worker.values():
                slice_.reset()
            for slice_ in self.per_policy.values():
                slice_.reset()
            self.per_worker = {}
            self.per_policy = {}
            self._window_start = None
            self._window_end = None
            for instrument in (
                self._requests,
                self._batches,
                self._failed,
                self._busy,
                self._request_latency,
                self._batch_latency,
                self._batch_size,
            ):
                instrument.reset()

    # ------------------------------------------------------------------
    def record_batch(
        self,
        batch_size: int,
        latency_s: float,
        worker: Optional[int] = None,
        policy: Optional[str] = None,
    ) -> None:
        end = time.perf_counter()
        start = end - float(latency_s)
        with self._lock:
            self.batch_sizes.append(int(batch_size))
            self.batch_latencies_s.append(float(latency_s))
            self._requests.inc(int(batch_size))
            self._batches.inc()
            self._busy.inc(float(latency_s))
            self._batch_latency.observe(float(latency_s))
            self._batch_size.observe(int(batch_size))
            if policy is not None:
                slice_ = self.per_policy.get(policy)
                if slice_ is None:
                    slice_ = self.per_policy[policy] = PolicyStats(
                        self.metrics, tags={"policy": policy}
                    )
                slice_.batches += 1
                slice_.requests += int(batch_size)
                slice_.busy_seconds += float(latency_s)
            if worker is not None:
                # The wall window tracks pool serving only, so offline
                # batches (and the idle gaps around them) never dilute
                # the pooled throughput.
                if self._window_start is None or start < self._window_start:
                    self._window_start = start
                if self._window_end is None or end > self._window_end:
                    self._window_end = end
                stats = self.per_worker.get(worker)
                if stats is None:
                    stats = self.per_worker[worker] = WorkerStats(
                        self.metrics, tags={"worker": str(worker)}
                    )
                stats.batches += 1
                stats.requests += int(batch_size)
                stats.busy_seconds += float(latency_s)

    def record_request(self, latency_s: float) -> None:
        """End-to-end latency of one request (queueing + execution)."""
        with self._lock:
            self.request_latencies_s.append(float(latency_s))
            self._request_latency.observe(float(latency_s))

    def record_failed(self, count: int = 1) -> None:
        """Requests whose batch raised instead of completing."""
        with self._lock:
            self._failed.inc(int(count))

    # ------------------------------------------------------------------
    @property
    def request_count(self) -> int:
        return int(self._requests.value)

    @property
    def batch_count(self) -> int:
        return int(self._batches.value)

    @property
    def failed_requests(self) -> int:
        return int(self._failed.value)

    @property
    def busy_seconds(self) -> float:
        return self._busy.value

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            return self._mean_batch_size_locked()

    def _mean_batch_size_locked(self) -> float:
        # Caller holds self._lock.
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    @property
    def wall_seconds(self) -> float:
        """Observed *pool* serving window (first worker batch start →
        last worker batch end); 0.0 when only the offline path ran."""
        with self._lock:
            return self._wall_seconds_locked()

    def _wall_seconds_locked(self) -> float:
        # Caller holds self._lock: the window endpoints move together
        # under it, so reading the pair here can never tear.
        if self._window_start is None or self._window_end is None:
            return 0.0
        return self._window_end - self._window_start

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self.per_worker)

    @property
    def throughput_rps(self) -> float:
        """Requests per second of serving time.

        For pool serving (per-worker records exist) this is pooled
        requests over the pool's wall-clock window, so overlapping
        workers count as parallelism instead of as extra elapsed time
        and offline batches never dilute the number.  For the offline
        path it stays total requests over summed busy seconds —
        offline calls may be sporadic, and idle gaps between them are
        not serving time.
        """
        with self._lock:
            return self._throughput_rps_locked()

    def _throughput_rps_locked(self) -> float:
        # Caller holds self._lock.
        if self.per_worker:
            wall = self._wall_seconds_locked()
            if wall == 0.0:
                return 0.0
            pooled = sum(w.requests for w in self.per_worker.values())
            return pooled / wall
        if self.busy_seconds == 0.0:
            return 0.0
        return self.request_count / self.busy_seconds

    # ------------------------------------------------------------------
    def summary(
        self,
        rebuild: Optional[RebuildCacheStats] = None,
        manifest: Optional[ArtifactManifest] = None,
    ) -> Dict:
        """One flat dict of everything a dashboard would plot."""
        with self._lock:
            out: Dict = {
                "requests": self.request_count,
                "failed_requests": self.failed_requests,
                "batches": self.batch_count,
                "mean_batch_size": self._mean_batch_size_locked(),
                "throughput_rps": self._throughput_rps_locked(),
                "busy_seconds": self.busy_seconds,
                "wall_seconds": self._wall_seconds_locked(),
                "workers": len(self.per_worker),
            }
            if self.per_worker:
                out["per_worker"] = {
                    index: stats.as_dict()
                    for index, stats in sorted(self.per_worker.items())
                }
            if self.per_policy:
                out["per_policy"] = {
                    name: stats.as_dict()
                    for name, stats in sorted(self.per_policy.items())
                }
            for key, value in percentiles(self.request_latencies_s).items():
                out[f"request_latency_{key}_ms"] = value * 1e3
            for key, value in percentiles(self.batch_latencies_s).items():
                out[f"batch_latency_{key}_ms"] = value * 1e3
        if rebuild is not None:
            for key, value in rebuild.as_dict().items():
                out[f"rebuild_{key}"] = value
        if manifest is not None:
            out["codec"] = manifest.codec
            out["bundle_payload_bytes"] = manifest.payload_bytes
            out["bundle_dense_bytes"] = manifest.dense_bytes
            out["bundle_bytes_saved"] = manifest.bytes_saved
            out["bundle_compression_rate"] = manifest.compression_rate
            if rebuild is not None:
                # The trade, per request: rebuild compute paid in place
                # of holding/loading dense weights (the paper's exchange).
                out["rebuilt_bytes_per_request"] = (
                    rebuild.rebuilt_bytes / max(out["requests"], 1)
                )
        return out

    def report(
        self,
        rebuild: Optional[RebuildCacheStats] = None,
        manifest: Optional[ArtifactManifest] = None,
        phases: Optional[Dict[str, Dict]] = None,
    ) -> str:
        """Human-readable one-screen summary.

        ``phases`` is an optional span-derived latency breakdown
        (:meth:`repro.observability.Observability.latency_breakdown`):
        one line per request phase with count / p50 / p95 / total.
        """
        summary = self.summary(rebuild=rebuild, manifest=manifest)
        per_worker = summary.pop("per_worker", {})
        per_policy = summary.pop("per_policy", {})
        # Per-layer hit rates are a dict per layer — a plot input, not
        # a report line; the flat summary keeps them.
        summary.pop("rebuild_layer_hit_rates", None)
        # Tier counters are dict-of-dicts; render them as one compact
        # line per tier below the scalars (the flat summary keeps the
        # full dicts).
        tier_counts = summary.pop("rebuild_tiers", {})
        tier_hits = summary.pop("rebuild_tier_hit_counts", {})
        lines = ["== serving stats =="]
        for key, value in summary.items():
            if isinstance(value, float):
                lines.append(f"{key:30s} {value:12.4g}")
            else:
                lines.append(f"{key:30s} {value!s:>12s}")
        if tier_hits:
            served = " / ".join(
                f"{tier}:{count}" for tier, count in tier_hits.items()
            )
            lines.append(f"{'served_from':30s} {served}")
        for tier, counts in tier_counts.items():
            lines.append(
                f"tier[{tier}]".ljust(30)
                + f" {counts['hits']:.0f} hits / "
                f"{counts['demotions']:.0f} demotions / "
                f"{counts['promotions']:.0f} promotions / "
                f"{counts['evictions']:.0f} evictions / "
                f"{counts['corrupt']:.0f} corrupt / "
                f"{counts['fault_seconds']:.4g}s faulting"
            )
        for index, worker in per_worker.items():
            lines.append(
                f"worker[{index}]".ljust(30)
                + f" {worker['batches']} batches / {worker['requests']} "
                f"requests / {worker['busy_seconds']:.4g}s busy"
            )
        for name, slice_ in per_policy.items():
            lines.append(
                f"policy[{name}]".ljust(30)
                + f" {slice_['batches']} batches / {slice_['requests']} "
                f"requests / {slice_['busy_seconds']:.4g}s busy"
            )
        for name, phase in (phases or {}).items():
            lines.append(
                f"phase[{name}]".ljust(30)
                + f" n={phase['count']} p50={phase['p50_ms']:.3g}ms "
                f"p95={phase['p95_ms']:.3g}ms total={phase['total_s']:.4g}s"
            )
        return "\n".join(lines)

    def cost_curve(
        self, rebuild: RebuildCacheStats, max_points: int = 64
    ) -> Dict:
        """The realized storage-vs-compute trade of one rebuild cache.

        Downsamples the rebuild engine's sampled curve — one point per
        rebuild: (accesses so far, resident dense bytes, cumulative
        rebuild seconds) — to at most ``max_points``, and attaches the
        headline numbers a policy comparison needs: total rebuild
        seconds paid, the estimated seconds cache hits avoided, and how
        many admissions the policy declined.
        """
        points = list(rebuild.curve)
        if len(points) > max_points:
            keep = np.linspace(0, len(points) - 1, max_points).astype(int)
            points = [points[i] for i in keep]
        return {
            "policy": rebuild.policy,
            "rebuild_seconds": rebuild.rebuild_seconds,
            "est_seconds_saved": rebuild.est_seconds_saved,
            "rejected": rebuild.rejected,
            "evictions": rebuild.evictions,
            "points": [
                {
                    "accesses": accesses,
                    "cached_bytes": cached_bytes,
                    "rebuild_seconds": seconds,
                }
                for accesses, cached_bytes, seconds in points
            ],
        }


class HostStats:
    """Fleet-level accumulator for a :class:`~repro.serving.host.
    ServingHost`: routing decisions per engine/model, plus on-demand
    aggregation over the engines' own summaries.

    Routing counters are ``repro_host_routed_total{engine=...}`` /
    ``repro_host_routed_model_total{model=...}`` series in the host's
    metrics registry; the ``routed_by_engine`` / ``routed_by_model``
    dict views are derived from those series (zero-valued series are
    filtered, so a freshly reset host reads as empty).

    The host records one :meth:`record_routed` per routed request;
    :meth:`summary` folds those counters together with each engine's
    ``summary()`` dict into the numbers a fleet dashboard needs —
    total requests and failures, total rebuild seconds paid, and the
    pooled rebuild-cache hit rate (Σ hits / Σ accesses, not a mean of
    per-engine rates, so empty engines don't dilute it).
    """

    _ENGINE_SERIES = "repro_host_routed_total"
    _MODEL_SERIES = "repro_host_routed_model_total"

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def reset(self) -> None:
        with self._lock:
            for name in (self._ENGINE_SERIES, self._MODEL_SERIES):
                for instrument in self.metrics.series(name):
                    instrument.reset()

    def _series_dict(self, name: str, tag: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for instrument in self.metrics.series(name):
            count = int(instrument.value)
            if count:
                out[instrument.tag_dict.get(tag, "")] = count
        return out

    @property
    def routed_by_engine(self) -> Dict[str, int]:
        return self._series_dict(self._ENGINE_SERIES, "engine")

    @property
    def routed_by_model(self) -> Dict[str, int]:
        return self._series_dict(self._MODEL_SERIES, "model")

    @property
    def routed_total(self) -> int:
        return sum(self.routed_by_engine.values())

    def record_routed(self, key: str, model: Optional[str] = None) -> None:
        """Count one request routed to engine ``key`` (of ``model``)."""
        with self._lock:
            self.metrics.counter(
                self._ENGINE_SERIES,
                "requests routed per engine",
                tags={"engine": key},
            ).inc()
            if model is not None:
                self.metrics.counter(
                    self._MODEL_SERIES,
                    "requests routed per model",
                    tags={"model": model},
                ).inc()

    def summary(
        self,
        per_engine: Optional[Dict[str, Dict]] = None,
        routing: Optional[str] = None,
    ) -> Dict:
        """One dict for the fleet: routed counters plus aggregates over
        ``per_engine`` (each value one engine's ``summary()`` dict)."""
        with self._lock:
            routed_engine = self.routed_by_engine
            routed_model = self.routed_by_model
        out: Dict = {
            "routing": routing,
            "routed": sum(routed_engine.values()),
            "routed_by_engine": routed_engine,
            "routed_by_model": routed_model,
        }
        if per_engine is None:
            return out
        models = {
            summary.get("model")
            for summary in per_engine.values()
            if summary.get("model") is not None
        }
        hits = sum(s.get("rebuild_hits", 0) for s in per_engine.values())
        accesses = sum(
            s.get("rebuild_accesses", 0) for s in per_engine.values()
        )
        out.update(
            {
                "engines": len(per_engine),
                "models": sorted(models),
                "requests": sum(
                    s.get("requests", 0) for s in per_engine.values()
                ),
                "failed_requests": sum(
                    s.get("failed_requests", 0) for s in per_engine.values()
                ),
                "rebuild_seconds": sum(
                    s.get("rebuild_rebuild_seconds", 0.0)
                    for s in per_engine.values()
                ),
                "rebuild_hit_rate": hits / accesses if accesses else 0.0,
                "per_engine": dict(per_engine),
            }
        )
        return out

    def report(self, summary: Dict) -> str:
        """Human-readable one-screen fleet summary (from :meth:`~repro.
        serving.host.ServingHost.summary` output)."""
        lines = [f"== serving host ({summary.get('routing')}) =="]
        for key in (
            "engines",
            "models",
            "requests",
            "failed_requests",
            "routed",
            "rebuild_seconds",
            "rebuild_hit_rate",
        ):
            if key in summary:
                value = summary[key]
                if isinstance(value, float):
                    lines.append(f"{key:30s} {value:12.4g}")
                else:
                    lines.append(f"{key:30s} {value!s:>12s}")
        for key, engine_summary in summary.get("per_engine", {}).items():
            routed = summary.get("routed_by_engine", {}).get(key, 0)
            lines.append(
                f"engine[{key}]".ljust(30)
                + f" model={engine_summary.get('model')} routed={routed} "
                f"requests={engine_summary.get('requests', 0)} "
                f"rebuild_s={engine_summary.get('rebuild_rebuild_seconds', 0.0):.4g} "
                f"hit_rate={engine_summary.get('rebuild_hit_rate', 0.0):.1%}"
            )
        for tenant, usage in sorted(summary.get("tenants", {}).items()):
            lines.append(
                f"tenant[{tenant}]".ljust(30)
                + f" requests={usage.get('requests', 0)} "
                f"served={usage.get('served', 0)} "
                f"rejected={usage.get('rejected', 0)} "
                f"rebuild_s={usage.get('rebuild_seconds', 0.0):.4g} "
                f"resident={usage.get('resident_bytes', 0)}B"
            )
        return "\n".join(lines)
