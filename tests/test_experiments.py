"""Integration tests: every table/figure harness runs and has the
paper's qualitative shape.  Training-based harnesses use the smallest
settings and the in-process CI-model cache.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation_components,
    fig9_evolution,
    fig10_energy_efficiency,
    fig11_dram_accesses,
    fig12_speedup,
    fig13_breakdown,
    fig14_sparsity_sweep,
    fig15_compact_ablation,
    table1_energy,
    table5_resources,
)
from repro.experiments.common import ExperimentResult, geometric_mean


class TestExperimentResult:
    def test_as_table_renders(self):
        result = ExperimentResult("demo", rows=[{"a": 1, "b": 2.5}])
        text = result.as_table()
        assert "demo" in text and "a" in text and "2.5" in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("empty").as_table()

    def test_column_access(self):
        result = ExperimentResult("demo", rows=[{"a": 1}, {"a": 2}])
        assert result.column("a") == [1, 2]

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestTable1:
    def test_matches_paper_exactly(self):
        result = table1_energy.run()
        for row in result.rows:
            if not np.isnan(row["paper_pj"]):
                assert row["energy_pj"] == pytest.approx(row["paper_pj"])


class TestTable5:
    def test_all_accelerators_listed(self):
        result = table5_resources.run()
        names = result.column("accelerator")
        for expected in ("diannao", "scnn", "cambricon-x", "bit-pragmatic",
                         "smartexchange"):
            assert expected in names


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_energy_efficiency.run()

    def test_smartexchange_best_on_every_model(self, result):
        for row in result.rows[:-1]:  # skip geomean row
            competitors = [row[k] for k in
                           ("diannao", "scnn", "cambricon-x", "bit-pragmatic")
                           if not np.isnan(row[k])]
            assert row["smartexchange"] > max(competitors), row["model"]

    def test_geomean_in_paper_band(self, result):
        geomean = result.rows[-1]["smartexchange"]
        # Paper geomean 3.7; accept a generous band for the simulator.
        assert 2.0 <= geomean <= 6.0


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_dram_accesses.run()

    def test_every_baseline_needs_more_dram(self, result):
        for row in result.rows[:-1]:
            for key in ("diannao", "scnn", "cambricon-x", "bit-pragmatic"):
                if not np.isnan(row[key]):
                    assert row[key] >= 1.0, (row["model"], key)

    def test_compact_models_smallest_gap(self, result):
        by_model = {row["model"]: row for row in result.rows[:-1]}
        compact = max(by_model["mobilenetv2"]["diannao"],
                      by_model["efficientnet_b0"]["diannao"])
        assert compact < by_model["resnet50"]["diannao"]
        assert compact < by_model["vgg19"]["diannao"]


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_speedup.run()

    def test_smartexchange_fastest_on_every_model(self, result):
        for row in result.rows[:-1]:
            competitors = [row[k] for k in
                           ("scnn", "cambricon-x", "bit-pragmatic")
                           if not np.isnan(row[k])]
            assert row["smartexchange"] > max(competitors), row["model"]

    def test_geomean_band(self, result):
        geomean = result.rows[-1]["smartexchange"]
        # Paper geomean 13.0x; our simulator lands in the same regime.
        assert 5.0 <= geomean <= 25.0


class TestFig13:
    def test_re_and_selector_negligible(self):
        result = fig13_breakdown.run(include_fc=False)
        for row in result.rows:
            assert row["re_pct"] < 1.0
            assert row["index_sel_pct"] < 1.0

    def test_activations_dominate_imagenet_compacts(self):
        result = fig13_breakdown.run(include_fc=False)
        by_model = {row["model"]: row for row in result.rows}
        for model in ("mobilenetv2", "efficientnet_b0", "vgg11"):
            assert (by_model[model]["dram_act_pct"]
                    > by_model[model]["dram_weight_pct"])

    def test_fc_inclusion_shifts_vgg11_to_weights(self):
        conv_only = {r["model"]: r for r in fig13_breakdown.run(False).rows}
        all_layers = {r["model"]: r for r in fig13_breakdown.run(True).rows}
        # Paper: VGG11's FC weight DRAM accesses dominate once included.
        assert (all_layers["vgg11"]["dram_weight_pct"]
                > conv_only["vgg11"]["dram_weight_pct"])


class TestFig14:
    def test_monotone_trends(self):
        result = fig14_sparsity_sweep.run()
        energy = result.column("energy_mj")
        latency = result.column("latency_ms")
        weights = result.column("weights_mb")
        input_access = result.column("input_access_mj")
        assert all(a > b for a, b in zip(energy, energy[1:]))
        assert all(a > b for a, b in zip(latency, latency[1:]))
        assert all(a > b for a, b in zip(weights, weights[1:]))
        assert all(a > b for a, b in zip(input_access, input_access[1:]))

    def test_sweep_covers_paper_points(self):
        result = fig14_sparsity_sweep.run()
        np.testing.assert_allclose(
            result.column("sparsity_pct"), [45.0, 51.7, 57.5, 60.0]
        )


class TestFig15:
    def test_savings_in_paper_band(self):
        result = fig15_compact_ablation.run()
        for row in result.rows:
            assert 30.0 <= row["latency_saving_pct"] <= 75.0
            assert row["energy_saving_pct"] >= 0.0


class TestAblation:
    def test_cumulative_gains(self):
        result = ablation_components.run()
        gains = result.column("energy_gain_x")
        assert gains[0] == 1.0
        assert all(b >= a for a, b in zip(gains, gains[1:]))
        # Paper: full design 3.65x energy, 7.41x speedup.
        assert result.rows[-1]["energy_gain_x"] > 1.5
        assert 4.0 <= result.rows[-1]["speedup_x"] <= 12.0

    def test_saving_shares_sum_to_100(self):
        result = ablation_components.run()
        shares = result.column("saving_share_pct")
        assert sum(shares) == pytest.approx(100.0, abs=1e-6)


@pytest.mark.slow
class TestTrainingBackedExperiments:
    """Slow harnesses that train CI models (shared via the cache)."""

    def test_fig9_dynamics(self):
        result = fig9_evolution.run(iterations=8)
        sparsities = result.column("ce_sparsity_pct")
        errors = result.column("recon_error")
        drifts = result.column("basis_drift")
        # Sparsity jumps early at an error cost; drift grows.
        assert max(sparsities[1:]) > sparsities[0]
        assert errors[1] > errors[0] * 0.9
        assert drifts[-1] > 0.0

    def test_fig4_booth_below_plain(self):
        from repro.experiments import fig4_bit_sparsity
        result = fig4_bit_sparsity.run(models=("vgg19",))
        row = result.rows[0]
        assert row["booth_sparsity_pct"] < row["bit_sparsity_pct"]
        assert 50.0 < row["bit_sparsity_pct"] < 100.0

    def test_posthoc_vgg19(self):
        from repro.experiments import posthoc_vgg19
        result = posthoc_vgg19.run(max_iterations=6)
        row = result.rows[0]
        assert row["cr_x"] > 4.0
        # Threshold-only post-processing must not destroy the model
        # (paper: 3.21% drop on the full-size network).
        assert row["acc_drop_pct"] < 20.0
        assert row["runtime_s"] < 120.0

    def test_table2_single_model(self):
        from repro.experiments import table2_retraining
        result = table2_retraining.run(models=("mlp2",), epochs=1)
        row = result.rows[0]
        assert row["cr_x"] > 5.0
        assert row["sparsity_pct"] > 50.0
        assert row["b_mb"] + row["ce_mb"] <= row["param_mb"] + 1e-9
