"""Batched inference directly from compressed artifacts.

:class:`InferenceEngine` owns one architecture skeleton (an
``nn.Module`` with the right shapes), one
:class:`~repro.serving.registry.CompressedModelHandle`, and one
:class:`~repro.serving.rebuild.RebuildEngine`.  Before every forward
pass it *installs* each compressed layer's weight from the rebuild
cache — so the dense model only ever exists layer-by-layer, bounded by
the cache capacity, while the full network state lives in the small
{B, Ce, index} payloads.

Three serving paths share the same execution core:

- **offline** — :meth:`predict` / :meth:`predict_many` run (coalesced)
  batches synchronously; this is what the benchmarks drive.
- **online** — :meth:`start` launches a pool of worker threads that
  drain one shared :class:`~repro.serving.batching.RequestQueue`;
  :meth:`submit` returns a ticket that resolves to that sample's
  output row.  Each worker owns its *own* skeleton (cloned from the
  engine's), so weight installation and forward passes never contend
  across workers; all workers share the engine's (internally locked)
  rebuild cache.
- **async** — :meth:`submit_async` (or the
  :class:`AsyncInferenceEngine` wrapper) bridges tickets into asyncio
  futures for event-loop callers.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.costs import CodecCostModel
from repro.observability import (
    NULL_OBSERVABILITY,
    MetricsRegistry,
    Observability,
    RequestTrace,
)
from repro.serving.batching import (
    BatchPolicy,
    QueueClosed,
    Request,
    RequestQueue,
    StaticBatchPolicy,
    Ticket,
    coalesce,
    per_ticket_error,
    stack_batch,
)
from repro.serving.rebuild import AdmissionPolicy, RebuildEngine
from repro.serving.registry import CompressedModelHandle
from repro.serving.stats import ServingStats


class ServingError(Exception):
    """Engine-level configuration or execution failure."""


def _map_modules(
    model: nn.Module, handle: CompressedModelHandle
) -> Dict[str, nn.Module]:
    """Resolve each bundle layer to its module in ``model`` (validated)."""
    modules = dict(model.named_modules())
    mapped: Dict[str, nn.Module] = {}
    for name, spec in handle.layer_specs.items():
        module = modules.get(name)
        if module is None:
            raise ServingError(
                f"model has no module {name!r} for bundle {handle.key}"
            )
        weight = getattr(module, "weight", None)
        if weight is None or tuple(weight.data.shape) != spec.weight_shape:
            raise ServingError(
                f"module {name!r} weight shape "
                f"{None if weight is None else weight.data.shape} does "
                f"not match bundle layer shape {spec.weight_shape}"
            )
        mapped[name] = module
    return mapped


class _Worker:
    """One pool member: a thread plus its privately-owned skeleton."""

    def __init__(
        self,
        index: int,
        model: nn.Module,
        modules: Dict[str, nn.Module],
    ) -> None:
        self.index = index
        self.model = model
        self.modules = modules
        self.thread: Optional[threading.Thread] = None


class InferenceEngine:
    """Serve predictions for one model version from its bundle."""

    def __init__(
        self,
        model: nn.Module,
        handle: CompressedModelHandle,
        policy: Optional[BatchPolicy] = None,
        cache_bytes: Optional[int] = None,
        admission: "Union[str, AdmissionPolicy, None]" = None,
        cost_model: Optional[CodecCostModel] = None,
        observability: Optional[Observability] = None,
        tiers=None,
        spill_dir: Optional[str] = None,
        ledger=None,
    ) -> None:
        self.model = model
        self.handle = handle
        self.policy = policy or StaticBatchPolicy()
        # Construction knobs kept verbatim: the process backend ships
        # them to worker processes so each child builds a rebuild
        # engine configured exactly like this one.
        self.cache_bytes = cache_bytes
        self.tiers_spec = tiers
        self.spill_dir = spill_dir
        # Optional per-tenant accounting hook (a
        # :class:`~repro.tenancy.TenantLedger`), usually injected by the
        # host so every engine it deploys books into one ledger.
        # Duck-typed: this module needs no tenancy import.
        self.ledger = ledger
        # All of this engine's instruments (serving + rebuild counters)
        # live in one private registry; with a shared Observability
        # handle the registry is federated into the fleet-wide export
        # under this engine's bundle key.
        self.metrics = MetricsRegistry()
        self.observability = (
            observability if observability is not None else NULL_OBSERVABILITY
        )
        self.stats = ServingStats(metrics=self.metrics)
        # One cost model per engine unless the caller shares one (e.g.
        # the registry's, so every engine for a store learns together).
        self.cost_model = cost_model or CodecCostModel()
        self.rebuild = RebuildEngine(
            payloads=handle.payloads,
            specs=handle.layer_specs,
            capacity_bytes=cache_bytes,
            policy=admission,
            cost_model=self.cost_model,
            metrics=self.metrics,
            observability=self.observability,
            tiers=tiers,
            spill_dir=spill_dir,
            ledger=ledger,
        )
        if self.observability.enabled:
            self.observability.register_metrics(self.metrics, name=handle.key)
        self._batch_ids = itertools.count(1)
        # A cost-aware batch policy prices batches off this engine's
        # rebuild cache; other policies have no hook and are left alone.
        bind = getattr(self.policy, "bind_costs", None)
        if bind is not None:
            bind(self.rebuild)
        self._modules = _map_modules(model, handle)
        if handle.residual is not None:
            model.load_state_dict(handle.residual, strict=False)
        model.eval()
        # Serializes install-weights + forward on the engine's own
        # skeleton, which the offline path uses directly.  Pool workers
        # never take it: each owns a private clone of the skeleton.
        self._forward_lock = threading.Lock()
        # Serializes start()/stop() transitions (worker bookkeeping).
        self._lifecycle_lock = threading.Lock()
        self._queue: Optional[RequestQueue] = None
        self._workers: List[_Worker] = []
        self._worker_error: Optional[BaseException] = None
        # Process-backend state (backend="process"): the pool of worker
        # processes and the shared-memory arena they attach.  The
        # engine owns the arena only when it placed it itself.
        self._backend = "thread"
        self._process_pool = None
        self._arena = None
        self._owns_arena = False

    # ------------------------------------------------------------------
    # Weight installation
    # ------------------------------------------------------------------
    def _install_weights(self, modules: Dict[str, nn.Module]) -> None:
        """Pull every compressed layer through the shared rebuild cache."""
        for name, module in modules.items():
            module.weight.data[...] = self.rebuild.layer_weight(name)

    # ------------------------------------------------------------------
    # Offline path
    # ------------------------------------------------------------------
    def predict(
        self, batch: np.ndarray, trace: Optional[RequestTrace] = None
    ) -> np.ndarray:
        """Run one already-formed batch; returns the output ndarray.

        With observability enabled the install and forward phases emit
        ``rebuild`` / ``compute`` spans (per-layer ``rebuild.layer``
        children come from the rebuild engine) — nested under
        ``trace``'s root when a caller (e.g. the host) passes one.
        """
        batch = np.asarray(batch)
        obs = self.observability
        start = time.perf_counter()
        with self._forward_lock:
            if obs.enabled:
                parent = trace.root if trace is not None else None
                tags = {"engine": self.handle.key, "path": "offline"}
                span = obs.tracer.start_span("rebuild", parent=parent, tags=tags)
                with obs.tracer.activate(span):
                    self._install_weights(self._modules)
                obs.tracer.finish_span(span)
                span = obs.tracer.start_span("compute", parent=parent, tags=tags)
                output = self.model(batch)
                result = output.data if isinstance(output, nn.Tensor) else output
                obs.tracer.finish_span(span, batch_size=len(batch))
            else:
                self._install_weights(self._modules)
                output = self.model(batch)
                result = output.data if isinstance(output, nn.Tensor) else output
        latency = time.perf_counter() - start
        self.stats.record_batch(len(batch), latency, policy=self.policy.name)
        for _ in range(len(batch)):
            self.stats.record_request(latency)
        if trace is not None and obs.enabled:
            obs.finish_request(trace)
        return np.asarray(result)

    def predict_many(
        self, inputs: Sequence[np.ndarray], batched: bool = True
    ) -> List[np.ndarray]:
        """Serve many single-sample requests, optionally coalesced.

        ``batched=False`` runs one forward pass per sample (the
        unbatched baseline); ``batched=True`` groups them under the
        engine's policy.  Returns one output row per input, in order.
        """
        max_batch = self.policy.max_batch_size if batched else 1
        outputs: List[np.ndarray] = []
        for group in coalesce(list(inputs), max_batch):
            rows = self.predict(np.stack(group, axis=0))
            outputs.extend(np.asarray(row) for row in rows)
        return outputs

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        """Workers currently tracked (0 when stopped)."""
        with self._lifecycle_lock:
            if self._process_pool is not None:
                return self._process_pool.worker_count
            return len(self._workers)

    @property
    def backend(self) -> str:
        """Execution backend of the current/last pool (``thread`` or
        ``process``)."""
        with self._lifecycle_lock:
            return self._backend

    def worker_pids(self) -> List[int]:
        """OS pids of the live worker processes (process backend only;
        empty for the thread backend).  The crash-recovery tests kill
        these directly."""
        with self._lifecycle_lock:
            pool = self._process_pool
        return [] if pool is None else pool.pids()

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the online queue (0 when stopped).

        The load signal :class:`~repro.serving.host.LeastLoadedPolicy`
        routes on; captured racily on purpose — routing needs a cheap
        instantaneous reading, not a fenced one.
        """
        queue = self._queue  # repro: ignore[LCK001] — advisory read
        return 0 if queue is None else len(queue)

    def estimated_install_seconds(self) -> float:
        """Expected rebuild seconds to pull this engine's layer mix
        through its cache right now (see
        :meth:`RebuildEngine.estimated_install_seconds`) — the signal
        cost-aware request routing compares across engines."""
        return self.rebuild.estimated_install_seconds()

    def start(
        self,
        workers: int = 1,
        backend: str = "thread",
        arena=None,
    ) -> "InferenceEngine":
        """Launch ``workers`` pool members draining one shared queue.

        ``backend="thread"`` (default): every worker is a thread with
        its own skeleton — cloned from the engine's after residual
        state was installed — so N workers run install-weights +
        forward concurrently without sharing mutable model state.
        They share the engine's rebuild cache (internally locked, cold
        misses de-duplicated) and its stats accumulator.

        ``backend="process"``: every worker is an OS process with its
        own skeleton, rebuild engine, and dense cache, attached
        read-only to one shared-memory copy of the compressed payloads
        — the GIL no longer bounds small-model scaling.  Pass
        ``arena`` (e.g. ``registry.arena(name)``) to share one
        placement across engines; without it the engine places (and
        owns) an arena from its handle's payloads.  ``submit`` /
        ``submit_async`` / ticket semantics are identical across
        backends.
        """
        if workers < 1:
            raise ServingError("workers must be >= 1")
        if backend not in ("thread", "process"):
            raise ServingError(
                f"unknown backend {backend!r}; use 'thread' or 'process'"
            )
        if backend == "thread" and arena is not None:
            raise ServingError("arena= requires backend='process'")
        with self._lifecycle_lock:
            if self._workers or self._process_pool is not None:
                raise ServingError("engine already started")
            queue = RequestQueue(self.policy)
            self._worker_error = None
            if backend == "process":
                self._start_process_pool(queue, workers, arena)
                return self
            self._backend = "thread"
            pool: List[_Worker] = []
            for index in range(workers):
                skeleton = self.model.clone()
                pool.append(
                    _Worker(index, skeleton, _map_modules(skeleton, self.handle))
                )
            for worker in pool:
                worker.thread = threading.Thread(
                    target=self._serve_loop,
                    args=(queue, worker),
                    name=f"repro-serving-worker-{worker.index}",
                    daemon=True,
                )
            self._queue = queue
            self._workers = pool
            for worker in pool:
                worker.thread.start()
        return self

    def _start_process_pool(
        self, queue: RequestQueue, workers: int, arena
    ) -> None:
        """Place/acquire the arena and launch the process pool.

        Caller holds ``self._lifecycle_lock``."""
        from repro.serving.arena import SharedPayloadArena
        from repro.serving.procpool import ProcessPool

        if arena is None:
            arena = SharedPayloadArena.from_payloads(
                self.handle.payloads, key=self.handle.key
            )
            owns = True
        else:
            arena.acquire()
            owns = False
        try:
            pool = ProcessPool(
                engine=self, queue=queue, workers=workers, arena=arena
            )
        except BaseException:
            if owns:
                arena.close()
            else:
                arena.release()
            raise
        self._backend = "process"
        self._arena = arena
        self._owns_arena = owns
        self._process_pool = pool
        self._queue = queue

    def submit(
        self,
        sample: np.ndarray,
        trace: Optional[RequestTrace] = None,
        tenant: Optional[str] = None,
    ) -> Ticket:
        """Enqueue one sample (no batch axis); returns its ticket.

        With observability enabled, the request's trace id is minted
        here (or inherited from ``trace`` when the host already opened
        one) and rides the queue to the worker that completes it.
        ``tenant`` attributes the request in the engine's ledger (when
        one is attached); a trace carrying a tenant supplies it when
        the argument is omitted.

        Safe against a concurrent :meth:`stop`: the queue reference is
        captured once, and a submission that loses the race surfaces as
        :class:`ServingError`, never ``AttributeError``.
        """
        obs = self.observability
        if tenant is None and trace is not None:
            tenant = trace.tenant
        if obs.enabled and trace is None:
            trace = obs.begin_request(
                model=self.handle.name, engine=self.handle.key, tenant=tenant
            )
        # Lock-free fast path (see docstring): one racy capture each,
        # with the loser surfacing as ServingError.
        queue = self._queue  # repro: ignore[LCK001]
        error = self._worker_error  # repro: ignore[LCK001]
        if error is not None:
            self._abort_trace(trace, "worker died")
            raise ServingError("worker died") from error
        if queue is None:
            self._abort_trace(trace, "engine not started")
            raise ServingError("engine not started; call start() first")
        try:
            ticket = queue.submit(sample, trace=trace, tenant=tenant)
        except QueueClosed as closed:
            self._abort_trace(trace, "queue closed")
            raise ServingError("engine is stopping; queue closed") from closed
        if self.ledger is not None:
            self.ledger.record_submitted(tenant)
        return ticket

    def _abort_trace(self, trace: Optional[RequestTrace], reason: str) -> None:
        """Close a request trace that never made it into the queue."""
        if trace is not None and self.observability.enabled:
            self.observability.finish_request(trace, error=reason)

    def submit_async(
        self,
        sample: np.ndarray,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> "asyncio.Future[np.ndarray]":
        """Enqueue one sample and return an asyncio future for its row.

        Must be called with a running event loop (or an explicit
        ``loop``); the ticket's completion — which happens on a worker
        thread — is marshalled back with ``call_soon_threadsafe``.
        """
        loop = loop or asyncio.get_running_loop()
        ticket = self.submit(sample)
        future: "asyncio.Future[np.ndarray]" = loop.create_future()

        def resolve(done: Ticket) -> None:
            def set_on_loop() -> None:
                if future.cancelled():
                    return
                try:
                    future.set_result(done.result(timeout=0))
                except BaseException as error:
                    future.set_exception(error)

            loop.call_soon_threadsafe(set_on_loop)

        ticket.add_done_callback(resolve)
        return future

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the queue, stop all workers, and surface their errors.

        Workers are only forgotten after they actually joined: on a
        join timeout the engine raises but keeps tracking the pool (and
        the closed queue), so a subsequent :meth:`start` refuses to
        launch a second pool over still-running threads.  Calling
        :meth:`stop` again retries the join.
        """
        with self._lifecycle_lock:
            queue, workers = self._queue, self._workers
            pool = self._process_pool
            if queue is None and not workers and pool is None:
                return
            if queue is not None:
                queue.close()
            if pool is not None:
                # Feeder threads drain the queue, sentinel the worker
                # processes, and exit; stragglers raise and keep the
                # pool tracked so a retry can re-join (same contract as
                # the thread path).
                pool.stop(timeout)
                self._process_pool = None
                self._queue = None
                arena, owns = self._arena, self._owns_arena
                self._arena = None
                self._owns_arena = False
                if arena is not None:
                    if owns:
                        arena.close()
                    else:
                        arena.release()
                if self._worker_error is not None:
                    raise ServingError("worker died") from self._worker_error
                return
            deadline = time.perf_counter() + timeout
            for worker in workers:
                remaining = max(0.0, deadline - time.perf_counter())
                worker.thread.join(remaining)
            stragglers = [w for w in workers if w.thread.is_alive()]
            if stragglers:
                raise ServingError(
                    f"{len(stragglers)} worker(s) did not stop in time"
                )
            self._workers = []
            self._queue = None
            if self._worker_error is not None:
                raise ServingError("worker died") from self._worker_error

    def close(self) -> None:
        """Stop the pool if one runs and release cache-tier resources
        (spill files).  The bundle handle is *not* closed — it may be
        shared by other engines via the registry."""
        try:
            self.stop()
        finally:
            self.rebuild.close()

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _serve_loop(self, queue: RequestQueue, worker: _Worker) -> None:
        try:
            while True:
                try:
                    requests = queue.next_batch()
                except QueueClosed:
                    return
                if not requests:
                    continue
                self._run_requests(requests, worker)
        except BaseException as error:  # pragma: no cover - defensive
            # Lock-free on purpose: a single reference store (atomic
            # under the GIL) that submit() reads racily; last writer
            # winning is fine — any dead worker fails the engine.
            self._worker_error = error  # repro: ignore[LCK001]
            self._fail_pending(queue, error)

    def _run_requests(self, requests: List[Request], worker: _Worker) -> None:
        obs = self.observability
        traced = (
            [r for r in requests if r.trace is not None] if obs.enabled else []
        )
        batch_id = next(self._batch_ids)
        dequeued = time.perf_counter()
        rebuild_span = compute_span = None
        if traced:
            # enqueue → dequeue wait, one span per request, against the
            # policy's (re-evaluated) wait budget for this batch size.
            budget = self.policy.wait_budget(len(requests))
            for request in traced:
                obs.tracer.emit(
                    "queue_wait",
                    start_s=request.enqueued_at,
                    end_s=dequeued,
                    parent=request.trace.root,
                    tags={
                        "engine": self.handle.key,
                        "worker": worker.index,
                        "batch_id": batch_id,
                        "batch_size": len(requests),
                        "wait_budget_s": budget,
                    },
                )
            # Rebuild + compute run once per batch; the spans hang off
            # the first traced request (the batch's *primary* trace),
            # and the peers get duplicate spans tagged ``shared`` below.
            primary = traced[0].trace
            phase_tags = {
                "engine": self.handle.key,
                "worker": worker.index,
                "batch_id": batch_id,
            }
        # Rebuild work below runs on this worker thread; activating the
        # batch's tenant shares here lets the rebuild engine charge the
        # measured seconds to exactly the tenants riding this batch.
        ledger = self.ledger
        attribution = (
            ledger.activate(ledger.shares([r.tenant for r in requests]))
            if ledger is not None
            else contextlib.nullcontext()
        )
        start = time.perf_counter()
        try:
            batch = stack_batch(requests)
            if traced:
                rebuild_span = obs.tracer.start_span(
                    "rebuild", parent=primary.root, tags=phase_tags
                )
                # Activation nests the rebuild engine's per-layer
                # ``rebuild.layer`` spans under this phase span.
                with obs.tracer.activate(rebuild_span):
                    with attribution:
                        self._install_weights(worker.modules)
                obs.tracer.finish_span(
                    rebuild_span, layers=len(worker.modules)
                )
                compute_span = obs.tracer.start_span(
                    "compute", parent=primary.root, tags=phase_tags
                )
                output = worker.model(batch)
                result = (
                    output.data if isinstance(output, nn.Tensor) else output
                )
                obs.tracer.finish_span(compute_span, batch_size=len(requests))
            else:
                with attribution:
                    self._install_weights(worker.modules)
                output = worker.model(batch)
                result = (
                    output.data if isinstance(output, nn.Tensor) else output
                )
        except Exception as error:
            # A bad batch (e.g. malformed sample shape) fails its own
            # tickets; the worker keeps serving subsequent requests.
            for span in (rebuild_span, compute_span):
                if span is not None and not span.finished:
                    obs.tracer.finish_span(span, error=type(error).__name__)
            for request in traced:
                obs.finish_request(
                    request.trace, batch_id=batch_id,
                    error=type(error).__name__,
                )
            self._fail_tickets(requests, error)
            self.stats.record_failed(len(requests))
            if ledger is not None:
                for request in requests:
                    ledger.record_failed(request.tenant)
            return
        finish = time.perf_counter()
        self.stats.record_batch(
            len(requests),
            finish - start,
            worker=worker.index,
            policy=self.policy.name,
        )
        rows = np.asarray(result)
        for request, row in zip(requests, rows):
            self.stats.record_request(finish - request.enqueued_at)
            if request.trace is not None and obs.enabled:
                if request.trace is not primary:
                    # Batch peers share the primary's install/forward
                    # work; they get duplicate phase spans (same
                    # interval) so each trace tree is self-contained —
                    # tagged ``shared`` so breakdowns count the work
                    # once.
                    for phase in (rebuild_span, compute_span):
                        obs.tracer.emit(
                            phase.name,
                            start_s=phase.start_s,
                            end_s=phase.start_s + phase.duration_s,
                            parent=request.trace.root,
                            tags={
                                **phase_tags,
                                "shared": True,
                                "shared_from": primary.trace_id,
                            },
                        )
                obs.finish_request(
                    request.trace, end_s=finish, batch_id=batch_id
                )
            if ledger is not None:
                ledger.record_served(request.tenant)
            request.ticket.set_result(np.asarray(row))

    @staticmethod
    def _fail_tickets(
        requests: Sequence[Request], error: BaseException
    ) -> None:
        # Each ticket gets its own exception instance: result() may
        # re-raise from many waiter threads at once, and a shared
        # instance would have its __traceback__ mutated concurrently.
        for request in requests:
            request.ticket.set_error(per_ticket_error(error))

    def _fail_pending(
        self, queue: RequestQueue, error: BaseException
    ) -> None:
        queue.close()
        try:
            while True:
                requests = queue.next_batch(timeout=0.0)
                if not requests:
                    return
                for request in requests:
                    if request.trace is not None:
                        self._abort_trace(request.trace, type(error).__name__)
                self._fail_tickets(requests, error)
        except QueueClosed:
            pass

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Serving + rebuild-cache + storage-trade counters, one dict.

        Includes the policy axis: ``batch_policy`` and the rebuild
        cache's ``rebuild_policy`` / ``rebuild_rejected`` /
        ``rebuild_est_seconds_saved`` counters, so two engines running
        different policies compare on one flat dict.
        """
        out = self.stats.summary(
            rebuild=self.rebuild.stats, manifest=self.handle.manifest
        )
        out["batch_policy"] = self.policy.name
        with self._lifecycle_lock:
            # One coherent snapshot: backend and pool must agree even
            # mid start()/stop().
            out["backend"] = self._backend
            pool = self._process_pool
        if pool is not None:
            out["worker_respawns"] = pool.respawns
        if self.observability.enabled:
            # Span-derived per-phase latency view over this engine's
            # buffered spans (queue wait / rebuild / compute).
            out["phase_latency"] = self.observability.latency_breakdown(
                engine=self.handle.key
            )
        return out

    def cost_curve(self) -> Dict:
        """The realized storage-vs-compute trade of this engine's cache
        (see :meth:`ServingStats.cost_curve`)."""
        return self.stats.cost_curve(self.rebuild.stats)

    def layer_cost_estimates(self) -> Dict[str, float]:
        """Per-layer estimated rebuild seconds at current codec rates."""
        return self.rebuild.layer_cost_estimates()

    def report(self) -> str:
        phases = None
        if self.observability.enabled:
            phases = self.observability.latency_breakdown(
                engine=self.handle.key
            )
        return self.stats.report(
            rebuild=self.rebuild.stats,
            manifest=self.handle.manifest,
            phases=phases,
        )


class AsyncInferenceEngine:
    """asyncio front door over an :class:`InferenceEngine` pool.

    Wraps an engine's online path in coroutines::

        async with AsyncInferenceEngine(engine, workers=4) as serving:
            rows = await serving.predict_many(samples)

    Worker threads still do the serving; the wrapper only bridges
    ticket completion into the caller's event loop, so thousands of
    in-flight requests cost one future each instead of one blocked
    thread each.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        workers: int = 1,
        backend: str = "thread",
    ) -> None:
        self.engine = engine
        self.workers = workers
        self.backend = backend

    async def __aenter__(self) -> "AsyncInferenceEngine":
        return self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def start(self) -> "AsyncInferenceEngine":
        self.engine.start(workers=self.workers, backend=self.backend)
        return self

    async def stop(self, timeout: float = 10.0) -> None:
        # stop() joins threads; keep the event loop responsive.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.engine.stop(timeout))

    async def predict(self, sample: np.ndarray) -> np.ndarray:
        """One sample in, one output row out."""
        return await self.engine.submit_async(sample)

    async def predict_many(
        self, samples: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Submit all samples concurrently; rows return in order.

        If any sample fails, the first failure is raised — after every
        future has completed, so no exception goes unretrieved.  A
        submit that fails mid-loop (engine stopping) first drains the
        futures already in flight for the same reason.
        """
        futures: List["asyncio.Future[np.ndarray]"] = []
        try:
            for sample in samples:
                futures.append(self.engine.submit_async(sample))
        except BaseException:
            await asyncio.gather(*futures, return_exceptions=True)
            raise
        rows = await asyncio.gather(*futures, return_exceptions=True)
        for row in rows:
            if isinstance(row, BaseException):
                raise row
        return list(rows)
