"""Human-readable reports over simulation results.

Renders per-layer tables and side-by-side design comparisons from
:class:`~repro.hardware.accelerator.ModelResult` objects — the
inspection surface a user reaches for when studying where a model's
time and energy go.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.hardware.accelerator import ModelResult


def _format_row(cells: List[str], widths: List[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _render(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [_format_row(headers, widths),
             _format_row(["-" * w for w in widths], widths)]
    lines += [_format_row(row, widths) for row in rows]
    return "\n".join(lines)


def layer_report(result: ModelResult, top: int | None = None) -> str:
    """Per-layer table: work, cycles, energy, and the binding resource.

    ``top`` keeps only the N most cycle-hungry layers (None = all).
    """
    layers = sorted(result.layers, key=lambda l: l.cycles, reverse=True)
    if top is not None:
        layers = layers[:top]
    rows = []
    total_energy = result.total_energy_pj or 1.0
    for layer in layers:
        bound = "dram" if layer.dram_cycles > layer.compute_cycles else "compute"
        rows.append([
            layer.name,
            f"{layer.macs / 1e6:.1f}M",
            f"{layer.cycles:,.0f}",
            f"{layer.total_energy_pj / 1e6:.2f}uJ",
            f"{100 * layer.total_energy_pj / total_energy:.1f}%",
            bound,
        ])
    header = (f"{result.model} on {result.accelerator}: "
              f"{result.total_cycles:,.0f} cycles, "
              f"{result.energy_mj():.3f} mJ")
    table = _render(
        ["layer", "macs", "cycles", "energy", "share", "bound"], rows
    )
    return f"{header}\n{table}"


def comparison_report(results: Iterable[ModelResult]) -> str:
    """Side-by-side comparison of several designs on the same model.

    Normalizes energy efficiency and speedup to the first result.
    """
    results = list(results)
    if not results:
        raise ValueError("no results to compare")
    models = {r.model for r in results}
    if len(models) != 1:
        raise ValueError(f"results span several models: {sorted(models)}")
    base = results[0]
    rows = []
    for result in results:
        bounds = result.bound_analysis()
        rows.append([
            result.accelerator,
            f"{result.energy_mj():.3f}mJ",
            f"{base.total_energy_pj / result.total_energy_pj:.2f}x",
            f"{result.latency_ms:.3f}ms",
            f"{base.total_cycles / result.total_cycles:.2f}x",
            f"{result.total_dram_bytes / 2**20:.2f}MiB",
            f"{100 * bounds['dram_bound']:.0f}%",
        ])
    table = _render(
        ["design", "energy", "eff-gain", "latency", "speedup", "dram",
         "dram-bound"],
        rows,
    )
    return f"model: {base.model} (normalized to {base.accelerator})\n{table}"


def breakdown_report(result: ModelResult, min_share: float = 0.005) -> str:
    """Energy breakdown sorted by share, hiding sub-``min_share`` rows."""
    breakdown = result.energy_breakdown()
    total = sum(breakdown.values()) or 1.0
    rows = []
    hidden = 0.0
    for key in sorted(breakdown, key=breakdown.get, reverse=True):
        share = breakdown[key] / total
        if share < min_share:
            hidden += share
            continue
        if breakdown[key] == 0:
            continue
        rows.append([key, f"{breakdown[key] / 1e6:.2f}uJ", f"{100 * share:.2f}%"])
    if hidden:
        rows.append(["(other)", "", f"{100 * hidden:.2f}%"])
    return _render(["component", "energy", "share"], rows)
