"""Shared helpers for the benchmark harness.

Each bench regenerates one table/figure of the paper: it times the
experiment harness with pytest-benchmark and prints the regenerated
rows so that ``pytest benchmarks/ --benchmark-only`` reproduces the
entire evaluation section.
"""

from __future__ import annotations


def run_and_print(benchmark, run_fn, rounds: int = 1):
    """Benchmark ``run_fn`` once and print its regenerated table."""
    result = benchmark.pedantic(run_fn, rounds=rounds, iterations=1)
    print()
    print(result.as_table())
    return result
