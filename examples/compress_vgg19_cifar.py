"""Table-II-style workflow: SmartExchange + alternating re-training.

Reproduces the paper's main algorithm protocol on a CI-scale VGG19 /
synthetic CIFAR-10: post-hoc decomposition, then epochs that alternate
ordinary SGD with re-projection onto the {Ce, B} form, reporting the
compression rate, storage split and vector sparsity.

Run:  python examples/compress_vgg19_cifar.py
"""

from repro.core import SmartExchangeConfig, SmartExchangeModel, retrain
from repro.datasets import synthetic_cifar10
from repro.nn import evaluate, fit
from repro.nn.models import vgg19


def main() -> None:
    dataset = synthetic_cifar10(train_per_class=12, test_per_class=6)
    model = vgg19(num_classes=dataset.num_classes, width_mult=0.25)

    print("pre-training VGG19 (CI scale) ...")
    fit(model, dataset.train_images, dataset.train_labels,
        dataset.test_images, dataset.test_labels, epochs=5, lr=0.02)
    baseline = evaluate(model, dataset.test_images, dataset.test_labels)

    config = SmartExchangeConfig(theta=4e-3, max_iterations=6,
                                 target_row_sparsity=0.35)
    se_model = SmartExchangeModel(model, config, model_name="vgg19")

    print("alternating re-training <-> SmartExchange projection ...")
    outcome = retrain(
        se_model,
        dataset.train_images, dataset.train_labels,
        dataset.test_images, dataset.test_labels,
        epochs=4, lr=0.005, momentum=0.5,
    )
    report = outcome.final_report

    print(f"baseline accuracy     : {baseline:6.1%}")
    print(f"compressed accuracy   : {outcome.best_projected_accuracy:6.1%}")
    print(f"compression rate      : {report.compression_rate:5.1f}x")
    print(f"parameters            : {report.original_mb:.3f} MB -> "
          f"{report.param_mb:.3f} MB")
    print(f"  basis matrices  (B) : {report.basis_mb:.4f} MB")
    print(f"  coefficients   (Ce) : {report.coefficient_mb:.4f} MB")
    print(f"vector sparsity       : {report.vector_sparsity:6.1%}")
    print("accuracy per projection epoch:",
          [f"{a:.1%}" for a in outcome.projected_accuracies])


if __name__ == "__main__":
    main()
