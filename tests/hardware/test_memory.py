"""Tests for the buffer config and the traffic -> result assembler."""

import pytest

from repro.hardware.energy import DEFAULT_ENERGY_MODEL
from repro.hardware.memory import BufferConfig, assemble_result

BUFFERS = BufferConfig(
    input_kb=64, weight_kb=32, output_kb=4,
    input_macro_kb=16, weight_macro_kb=2, output_macro_kb=2,
)


def assemble(**overrides):
    defaults = dict(
        name="layer",
        macs=1000,
        effective_macs=800.0,
        compute_cycles=10.0,
        dram_bytes={"weight": 100.0, "input": 200.0, "output": 50.0},
        gb_bytes={"input_read": 400.0, "weight_read": 300.0,
                  "output_write": 50.0},
        compute_energy_pj={"pe": 5.0},
        energy_model=DEFAULT_ENERGY_MODEL,
        buffers=BUFFERS,
        dram_bytes_per_cycle=10.0,
    )
    defaults.update(overrides)
    return assemble_result(**defaults)


class TestBufferConfig:
    def test_byte_properties(self):
        assert BUFFERS.input_bytes == 64 * 1024
        assert BUFFERS.weight_bytes == 32 * 1024
        assert BUFFERS.output_bytes == 4 * 1024


class TestAssembleResult:
    def test_dram_energy_uses_table1(self):
        result = assemble()
        assert result.energy_pj["dram_weight"] == pytest.approx(100 * 100.0)
        assert result.energy_pj["dram_input"] == pytest.approx(200 * 100.0)

    def test_dram_fills_become_gb_writes(self):
        result = assemble()
        # 200 input bytes from DRAM -> 200 bytes written into input GB.
        input_macro = DEFAULT_ENERGY_MODEL.sram(16)
        assert result.energy_pj["gb_input_write"] == pytest.approx(
            200 * input_macro
        )

    def test_index_fills_go_to_weight_buffer(self):
        result = assemble(dram_bytes={"weight": 0.0, "index": 80.0,
                                      "input": 0.0, "output": 0.0})
        weight_macro = DEFAULT_ENERGY_MODEL.sram(2)
        assert result.energy_pj["gb_weight_write"] == pytest.approx(
            80 * weight_macro
        )

    def test_gb_reads_use_macro_energy(self):
        result = assemble()
        weight_macro = DEFAULT_ENERGY_MODEL.sram(2)
        assert result.energy_pj["gb_weight_read"] == pytest.approx(
            300 * weight_macro
        )

    def test_compute_energy_passthrough(self):
        result = assemble()
        assert result.energy_pj["pe"] == 5.0

    def test_dram_cycles(self):
        result = assemble()
        assert result.dram_cycles == pytest.approx(350 / 10.0)
        assert result.cycles == max(10.0, 35.0)

    def test_unknown_buffer_rejected(self):
        with pytest.raises(KeyError, match="unknown buffer"):
            assemble(gb_bytes={"cache_read": 10.0})

    def test_total_energy_sums_categories(self):
        result = assemble()
        assert result.total_energy_pj == pytest.approx(
            sum(result.energy_pj.values())
        )
