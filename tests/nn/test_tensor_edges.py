"""Edge-case tests for the autograd tensor (beyond the core op tests)."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat


class TestReductionEdges:
    def test_sum_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_sum_multiple_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.sum(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_mean_keepdims_grad_scaling(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        a.mean(axis=0, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((4, 5), 0.25))

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        # Tied maxima share the incoming gradient equally.
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_max_keepdims(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        assert a.max(axis=1, keepdims=True).shape == (3, 1)


class TestShapeEdges:
    def test_reshape_accepts_tuple(self, rng):
        a = Tensor(rng.normal(size=(2, 6)))
        assert a.reshape((3, 4)).shape == (3, 4)

    def test_transpose_explicit_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_getitem_with_integer_arrays(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        rows = np.array([0, 2, 2])
        out = a[rows]
        assert out.shape == (3, 3)
        out.sum().backward()
        # Row 2 picked twice -> gradient 2, row 0 once, others 0.
        expected = np.zeros((5, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        np.testing.assert_allclose(a.grad, expected)

    def test_concat_three_tensors(self, rng):
        parts = [Tensor(rng.normal(size=(2, k))) for k in (1, 2, 3)]
        assert concat(parts, axis=1).shape == (2, 6)


class TestTapeEdges:
    def test_backward_twice_accumulates(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        loss = (a * a).sum()
        loss.backward()
        first = a.grad.copy()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_long_chain_gradient(self, rng):
        a = Tensor(np.array([1.5]), requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.01
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.01**50], rtol=1e-12)

    def test_shared_subexpression_counted_once_per_use(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        loss = (b + b).sum()  # d/da = 4
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_pow_gradient(self, rng):
        a = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        (a**0.5).sum().backward()
        np.testing.assert_allclose(a.grad, 0.5 * a.data**-0.5)

    def test_div_by_tensor_gradient(self, rng):
        a = Tensor(rng.normal(size=3) + 5.0, requires_grad=True)
        b = Tensor(rng.normal(size=3) + 5.0, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2)
