"""Applying the SmartExchange decomposition to one layer's weight.

A layer weight becomes a list of per-unit (per-filter or per-FC-row)
decompositions via the Section III-C reshaping rules; this module runs
Algorithm 1 on each matrix, tracks storage, and can rebuild the layer
weight exactly as the accelerator's rebuild engines would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import SmartExchangeConfig
from repro.core.decompose import Decomposition, smart_exchange_decompose
from repro.core.reshape import (
    ReshapePlan,
    from_matrices,
    plan_conv,
    plan_fc,
    to_matrices,
)
from repro.core.storage import StorageBreakdown, compression_rate, total_bits


@dataclass
class LayerCompression:
    """The SmartExchange form of one layer."""

    name: str
    kind: str  # "conv" | "fc"
    plan: ReshapePlan
    decompositions: List[Decomposition]
    storage: StorageBreakdown
    original_elements: int
    pruned_filters: Optional[np.ndarray] = None  # boolean keep-mask or None

    def rebuild_weight(self) -> np.ndarray:
        """Reconstruct the (quantized, sparse) layer weight from {Ce, B}."""
        matrices = [d.rebuild() for d in self.decompositions]
        return from_matrices(matrices, self.plan)

    @property
    def compression_rate(self) -> float:
        return compression_rate(self.original_elements, self.storage)

    @property
    def vector_sparsity(self) -> float:
        """Fraction of zero coefficient rows across all matrices."""
        total = alive = 0
        for decomposition in self.decompositions:
            rows = decomposition.coefficient.shape[0]
            total += rows
            alive += int(np.any(decomposition.coefficient != 0, axis=1).sum())
        if total == 0:
            return 0.0
        return 1.0 - alive / total

    @property
    def element_sparsity(self) -> float:
        total = zero = 0
        for decomposition in self.decompositions:
            total += decomposition.coefficient.size
            zero += int((decomposition.coefficient == 0).sum())
        if total == 0:
            return 0.0
        return zero / total

    @property
    def mean_reconstruction_error(self) -> float:
        errors = [d.reconstruction_error for d in self.decompositions]
        if not errors:
            return 0.0
        return float(np.mean(errors))


def _decompose_matrices(
    matrices: List[np.ndarray], config: SmartExchangeConfig
) -> List[Decomposition]:
    return [smart_exchange_decompose(matrix, config) for matrix in matrices]


def compress_conv_weight(
    weight: np.ndarray,
    config: Optional[SmartExchangeConfig] = None,
    name: str = "conv",
    filter_keep_mask: Optional[np.ndarray] = None,
) -> LayerCompression:
    """SmartExchange a conv weight (M, C, R, S).

    ``R = S > 1`` uses the per-filter (C*R, S) reshape; ``R = S = 1``
    collapses to the FC rule on the (M, C) view.  ``filter_keep_mask``
    (length M) implements the BN-driven channel pruning: dropped filters
    are zeroed before decomposition so their coefficient rows all vanish.
    """
    config = config or SmartExchangeConfig()
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 4:
        raise ValueError(f"conv weight must be 4-D, got {weight.ndim}-D")
    m = weight.shape[0]
    if filter_keep_mask is not None:
        if len(filter_keep_mask) != m:
            raise ValueError("filter_keep_mask length must equal out-channels")
        weight = weight * np.asarray(filter_keep_mask, dtype=np.float64)[
            :, None, None, None
        ]

    if weight.shape[2] == weight.shape[3] == 1:
        flat = weight.reshape(weight.shape[0], weight.shape[1])
        compression = compress_fc_weight(flat, config, name=name)
        # Preserve the 4-D original shape for exact rebuild round-trips.
        plan = compression.plan
        return LayerCompression(
            name=name,
            kind="pointwise",
            plan=plan,
            decompositions=compression.decompositions,
            storage=compression.storage,
            original_elements=weight.size,
            pruned_filters=(
                np.asarray(filter_keep_mask, dtype=bool)
                if filter_keep_mask is not None
                else None
            ),
        )

    plan = plan_conv(weight.shape, config.max_rows_per_slice)
    matrices = to_matrices(weight, plan)
    decompositions = _decompose_matrices(matrices, config)
    return LayerCompression(
        name=name,
        kind="conv",
        plan=plan,
        decompositions=decompositions,
        storage=total_bits(decompositions, config),
        original_elements=weight.size,
        pruned_filters=(
            np.asarray(filter_keep_mask, dtype=bool)
            if filter_keep_mask is not None
            else None
        ),
    )


def compress_fc_weight(
    weight: np.ndarray,
    config: Optional[SmartExchangeConfig] = None,
    name: str = "fc",
) -> LayerCompression:
    """SmartExchange an FC weight (M, C) row by row."""
    config = config or SmartExchangeConfig()
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError(f"fc weight must be 2-D, got {weight.ndim}-D")
    plan = plan_fc(weight.shape, config.basis_size, config.max_rows_per_slice)
    matrices = to_matrices(weight, plan)
    decompositions = _decompose_matrices(matrices, config)
    return LayerCompression(
        name=name,
        kind="fc",
        plan=plan,
        decompositions=decompositions,
        storage=total_bits(decompositions, config),
        original_elements=weight.size,
    )


def rebuild_conv_weight(compression: LayerCompression) -> np.ndarray:
    """Rebuild a conv weight, restoring the 4-D shape for 1x1 layers."""
    rebuilt = compression.rebuild_weight()
    if compression.kind == "pointwise":
        m, c = rebuilt.shape
        return rebuilt.reshape(m, c, 1, 1)
    return rebuilt
