"""Bench: batched vs unbatched throughput of the serving engine.

Publishes a compressed CNN to a temporary artifact store, then serves
the same synthetic request stream twice through
:class:`repro.serving.InferenceEngine` — once one-request-per-forward
(unbatched baseline), once coalesced under the engine's batch policy —
and reports requests/s plus the rebuild-cache hit rate.

Runs standalone (``python benchmarks/bench_serving_throughput.py``) or
under pytest-benchmark like the other benches.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import nn
from repro.core import SmartExchangeConfig, apply_smartexchange
from repro.experiments.common import ExperimentResult
from repro.serving import ArtifactStore, BatchPolicy, InferenceEngine, ModelRegistry

REQUESTS = 64
BATCH_SIZE = 16
IMAGE_SHAPE = (3, 16, 16)


def _build_model(seed: int) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(32, 10, rng=rng),
    )


def _make_engine(batch_size: int) -> InferenceEngine:
    model = _build_model(seed=0)
    config = SmartExchangeConfig(max_iterations=6, target_row_sparsity=0.5)
    _, report = apply_smartexchange(model, config, model_name="bench-cnn")
    root = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = ArtifactStore(root)
    store.publish(report, config, model=model)
    registry = ModelRegistry(store)
    return InferenceEngine(
        _build_model(seed=1),
        registry.get("bench-cnn"),
        policy=BatchPolicy(max_batch_size=batch_size),
    )


def run() -> ExperimentResult:
    rng = np.random.default_rng(0)
    samples = list(rng.normal(size=(REQUESTS, *IMAGE_SHAPE)))

    rows = []
    for label, batched in (("unbatched", False), ("batched", True)):
        engine = _make_engine(BATCH_SIZE)
        engine.predict(np.stack(samples[:1]))  # warm the rebuild cache
        engine.stats.reset()
        engine.predict_many(samples, batched=batched)
        summary = engine.summary()
        rows.append({
            "mode": label,
            "requests": summary["requests"],
            "mean_batch": summary["mean_batch_size"],
            "throughput_rps": summary["throughput_rps"],
            "p50_ms": summary["request_latency_p50_ms"],
            "cache_hit_rate": summary["rebuild_hit_rate"],
        })

    unbatched, batched = (row["throughput_rps"] for row in rows)
    return ExperimentResult(
        experiment="serving throughput (batched vs unbatched)",
        rows=rows,
        notes=f"batching speedup {batched / unbatched:.2f}x over "
              f"{REQUESTS} requests at max batch {BATCH_SIZE}",
    )


def bench_serving_throughput(benchmark):
    from benchmarks.conftest import run_and_print

    result = run_and_print(benchmark, run)
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0]  # batched >= unbatched
    hit_rates = result.column("cache_hit_rate")
    assert all(rate > 0 for rate in hit_rates)


def main() -> None:
    result = run()
    print(result.as_table())
    throughput = result.column("throughput_rps")
    assert throughput[1] >= throughput[0], "batching did not help"


if __name__ == "__main__":
    main()
