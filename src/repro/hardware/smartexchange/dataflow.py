"""Dataflow / utilization model for the SmartExchange PE array.

Standard convolutions map: filters -> the ``dim_m`` PE slices, input
channels -> the ``dim_c`` PE lines, output pixels -> the ``dim_f`` MACs
of each line (1-D row stationary inside the line, output stationary
across the slice).

The *dedicated compact-model dataflow* (§IV-B, Fig. 15) changes two
mappings:

- depth-wise conv: the layer has one input channel per filter, which
  would idle 15 of 16 PE lines.  Instead the R kernel rows' 1-D convs
  spread across the PE lines.
- squeeze-and-excite / FC: the ``dim_f`` MACs of a line split into
  clusters driven by the line's two REs, each cluster computing a
  different output pixel/neuron.
"""

from __future__ import annotations

from repro.hardware.accelerator import lane_utilization
from repro.hardware.layers import LayerKind, LayerSpec
from repro.hardware.smartexchange.config import SmartExchangeAcceleratorConfig

FC_CLUSTERS = 2  # one per RE in a PE line


def array_utilization(
    spec: LayerSpec, config: SmartExchangeAcceleratorConfig
) -> float:
    """Fraction of the 3-D PE array doing useful work for this layer."""
    util_m = lane_utilization(spec.out_channels, config.dim_m)

    if spec.kind == LayerKind.DEPTHWISE:
        if config.dedicated_compact_dataflow:
            # The R 1-D convolutions of each filter spread across R PE
            # lines, so R lines per slice stay busy.
            util_c = min(1.0, spec.kernel / config.dim_c)
        else:
            # One input channel per filter: one PE line alive per slice.
            util_c = 1.0 / config.dim_c
        util_f = lane_utilization(spec.out_h * spec.out_w, config.dim_f)
        return util_m * util_c * util_f

    if spec.is_fc_like:
        # No weight reuse across pixels; the MAC array only fills if the
        # clusters split it across output neurons.
        util_c = lane_utilization(spec.in_channels, config.dim_c)
        if config.dedicated_compact_dataflow:
            util_f = min(1.0, FC_CLUSTERS / config.dim_f)
        else:
            util_f = 1.0 / config.dim_f
        return util_m * util_c * util_f

    util_c = lane_utilization(spec.in_channels, config.dim_c)
    util_f = lane_utilization(spec.out_h * spec.out_w, config.dim_f)
    return util_m * util_c * util_f


def input_reads_per_element(
    spec: LayerSpec, config: SmartExchangeAcceleratorConfig
) -> float:
    """Global-buffer reads per input element (before sparsity skipping).

    Inputs are re-read once per output-channel tile; the FIFO inside the
    PE line covers the kernel-window reuse, and the dedicated depth-wise
    mapping shares a fetched row across the PE lines (one read).  The
    fallback mapping loses the cross-line sharing but its double-buffered
    FIFO still catches adjacent-row overlap, so it re-reads each row
    about ceil(kernel / 2) times.
    """
    m_tiles = max(1, -(-spec.out_channels // config.dim_m))  # ceil div
    if spec.kind == LayerKind.DEPTHWISE and not config.dedicated_compact_dataflow:
        return float(m_tiles * ((spec.kernel + 1) // 2))
    return float(m_tiles)
