"""The SmartExchange accelerator (paper Section IV)."""

from repro.hardware.smartexchange.config import (
    DEFAULT_ACCELERATOR_CONFIG,
    SmartExchangeAcceleratorConfig,
)
from repro.hardware.smartexchange.dataflow import (
    array_utilization,
    input_reads_per_element,
)
from repro.hardware.smartexchange.index_select import (
    IndexSelectCost,
    SkipProfile,
    index_select_cost,
)
from repro.hardware.smartexchange.pe import (
    BitSerialProfile,
    pe_energy_pj,
    serial_ops,
)
from repro.hardware.smartexchange.rebuild_engine import RebuildCost, rebuild_cost
from repro.hardware.smartexchange.simulator import SmartExchangeAccelerator

__all__ = [
    "SmartExchangeAccelerator",
    "SmartExchangeAcceleratorConfig",
    "DEFAULT_ACCELERATOR_CONFIG",
    "array_utilization",
    "input_reads_per_element",
    "BitSerialProfile",
    "serial_ops",
    "pe_energy_pj",
    "RebuildCost",
    "rebuild_cost",
    "IndexSelectCost",
    "SkipProfile",
    "index_select_cost",
]
