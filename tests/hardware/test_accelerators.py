"""Tests for the five accelerator simulators."""

import numpy as np
import pytest

from repro.hardware import (
    BitPragmatic,
    CambriconX,
    DianNao,
    LayerKind,
    LayerSparsity,
    LayerSpec,
    LayerWorkload,
    SCNN,
    SmartExchangeAccelerator,
    SmartExchangeAcceleratorConfig,
    dram_tiling,
    lane_utilization,
    smartexchange_storage_bits,
)

ALL_ACCELERATORS = [DianNao, SCNN, CambriconX, BitPragmatic,
                    SmartExchangeAccelerator]


def conv_workload(weight_vector=0.5, act_booth=0.7, act_bit=0.8,
                  weight_element=0.55, act_element=0.45, act_vector=0.08,
                  **spec_kwargs) -> LayerWorkload:
    defaults = dict(name="conv", kind=LayerKind.CONV, in_channels=64,
                    out_channels=128, kernel=3, stride=1, padding=1,
                    in_h=28, in_w=28)
    defaults.update(spec_kwargs)
    spec = LayerSpec(**defaults)
    sparsity = LayerSparsity(
        weight_element=weight_element,
        weight_vector=weight_vector,
        act_element=act_element,
        act_vector=act_vector,
        act_bit=act_bit,
        act_booth=act_booth,
    )
    return LayerWorkload(
        spec=spec,
        sparsity=sparsity,
        se_storage_bits=smartexchange_storage_bits(spec, weight_vector),
    )


class TestHelpers:
    def test_lane_utilization_perfect_fit(self):
        assert lane_utilization(64, 16) == 1.0

    def test_lane_utilization_partial(self):
        assert lane_utilization(17, 16) == pytest.approx(17 / 32)

    def test_lane_utilization_degenerate(self):
        assert lane_utilization(0, 16) == 1.0
        assert lane_utilization(5, 0) == 1.0

    def test_dram_tiling_no_spill(self):
        weights, inputs, outputs = dram_tiling(100, 200, 50, 1000, 1000)
        assert (weights, inputs, outputs) == (100, 200, 50)

    def test_dram_tiling_one_resident_operand_means_single_fetch(self):
        # When one operand fits its buffer, the compiler keeps it inner
        # and fetches everything exactly once.
        weights, inputs, _ = dram_tiling(1000, 10, 5, 100, 1000)
        assert (weights, inputs) == (1000, 10)
        weights, inputs, _ = dram_tiling(10, 10_000, 5, 1000, 100)
        assert (weights, inputs) == (10, 10_000)

    def test_dram_tiling_double_spill_refetches_cheaper_operand(self):
        # Both operands spill: the cheaper loop order re-fetches the
        # smaller operand once per pass of the larger one.
        weights, inputs, _ = dram_tiling(1000, 300, 5, 100, 100)
        weight_outer = 1000 + 300 * 10  # 10 weight passes
        input_outer = 300 + 1000 * 3  # 3 input passes
        assert weights + inputs == min(weight_outer, input_outer)

    def test_dram_tiling_total_never_below_unique_bytes(self):
        weights, inputs, outputs = dram_tiling(777, 333, 111, 100, 100)
        assert weights >= 777 and inputs >= 333 and outputs == 111


class TestAllAcceleratorsBasics:
    @pytest.mark.parametrize("accelerator_cls", ALL_ACCELERATORS)
    def test_layer_result_fields(self, accelerator_cls):
        result = accelerator_cls().simulate_layer(conv_workload())
        assert result.macs > 0
        assert result.cycles > 0
        assert result.total_energy_pj > 0
        assert result.total_dram_bytes > 0
        assert result.cycles == max(result.compute_cycles, result.dram_cycles)

    @pytest.mark.parametrize("accelerator_cls", ALL_ACCELERATORS)
    def test_model_result_aggregates(self, accelerator_cls):
        workloads = [conv_workload(), conv_workload(out_channels=64)]
        result = accelerator_cls().simulate_model(workloads, "two-layer")
        assert len(result.layers) == 2
        assert result.total_energy_pj == pytest.approx(
            sum(l.total_energy_pj for l in result.layers)
        )
        assert result.latency_ms > 0
        assert result.model == "two-layer"

    @pytest.mark.parametrize("accelerator_cls", ALL_ACCELERATORS)
    def test_batch_scales_work(self, accelerator_cls):
        single = accelerator_cls().simulate_layer(conv_workload())
        double = accelerator_cls().simulate_layer(
            LayerWorkload(
                spec=single and conv_workload().spec,
                sparsity=conv_workload().sparsity,
                se_storage_bits=conv_workload().se_storage_bits,
                batch=2,
            )
        )
        assert double.macs == 2 * single.macs

    @pytest.mark.parametrize("accelerator_cls", ALL_ACCELERATORS)
    def test_onchip_residency_drops_act_dram(self, accelerator_cls):
        offchip = conv_workload()
        from dataclasses import replace
        onchip = replace(offchip, input_onchip=True, output_onchip=True)
        r_off = accelerator_cls().simulate_layer(offchip)
        r_on = accelerator_cls().simulate_layer(onchip)
        assert r_on.dram_bytes["input"] == 0
        assert r_on.dram_bytes["output"] == 0
        assert r_on.total_dram_bytes < r_off.total_dram_bytes

    @pytest.mark.parametrize("accelerator_cls", ALL_ACCELERATORS)
    def test_energy_breakdown_keys_known(self, accelerator_cls):
        result = accelerator_cls().simulate_layer(conv_workload())
        for key in result.energy_pj:
            assert key.startswith(("dram_", "gb_", "pe", "accumulator",
                                   "re", "index_selector", "booth_encoder",
                                   "control"))


class TestDianNao:
    def test_ignores_all_sparsity(self):
        sparse = DianNao().simulate_layer(conv_workload())
        dense = DianNao().simulate_layer(
            conv_workload(weight_vector=0.0, weight_element=0.0,
                          act_booth=0.0, act_bit=0.0, act_element=0.0,
                          act_vector=0.0)
        )
        assert sparse.cycles == dense.cycles
        assert sparse.total_energy_pj == dense.total_energy_pj

    def test_depthwise_underutilizes(self):
        standard = conv_workload()
        depthwise = conv_workload(kind=LayerKind.DEPTHWISE, in_channels=128)
        r_std = DianNao().simulate_layer(standard)
        r_dw = DianNao().simulate_layer(depthwise)
        cycles_per_mac_std = r_std.compute_cycles / r_std.macs
        cycles_per_mac_dw = r_dw.compute_cycles / r_dw.macs
        assert cycles_per_mac_dw > 3 * cycles_per_mac_std


class TestCambriconX:
    def test_weight_sparsity_reduces_cycles_and_weight_dram(self):
        sparse = CambriconX().simulate_layer(conv_workload(weight_element=0.7))
        dense = CambriconX().simulate_layer(conv_workload(weight_element=0.0))
        assert sparse.compute_cycles < dense.compute_cycles
        assert sparse.dram_bytes["weight"] < dense.dram_bytes["weight"]

    def test_dense_fallback_skips_index(self):
        dense = CambriconX().simulate_layer(conv_workload(weight_element=0.0))
        assert dense.dram_bytes["index"] == 0.0

    def test_sparse_pays_index_overhead(self):
        sparse = CambriconX().simulate_layer(conv_workload(weight_element=0.7))
        assert sparse.dram_bytes["index"] > 0.0

    def test_activations_fetched_densely(self):
        sparse = CambriconX().simulate_layer(conv_workload(act_element=0.9))
        dense = CambriconX().simulate_layer(conv_workload(act_element=0.0))
        assert sparse.dram_bytes["input"] == dense.dram_bytes["input"]


class TestSCNN:
    def test_both_sparsities_multiply(self):
        base = SCNN().simulate_layer(
            conv_workload(weight_element=0.0, act_element=0.0)
        )
        both = SCNN().simulate_layer(
            conv_workload(weight_element=0.5, act_element=0.5)
        )
        assert both.effective_macs == pytest.approx(base.effective_macs * 0.25)

    def test_compressed_activations_in_dram(self):
        sparse = SCNN().simulate_layer(conv_workload(act_element=0.8))
        dense = SCNN().simulate_layer(conv_workload(act_element=0.0))
        assert sparse.dram_bytes["input"] < dense.dram_bytes["input"]

    def test_pointwise_inefficiency(self):
        conv3 = SCNN().simulate_layer(conv_workload())
        conv1 = SCNN().simulate_layer(conv_workload(kernel=1, padding=0))
        per_mac_3 = conv3.compute_cycles / conv3.effective_macs
        per_mac_1 = conv1.compute_cycles / conv1.effective_macs
        assert per_mac_1 > per_mac_3


class TestBitPragmatic:
    def test_bit_sparsity_cuts_cycles(self):
        sparse = BitPragmatic().simulate_layer(conv_workload(act_bit=0.9))
        dense = BitPragmatic().simulate_layer(conv_workload(act_bit=0.0))
        assert sparse.compute_cycles < dense.compute_cycles / 3

    def test_weight_sparsity_ignored(self):
        a = BitPragmatic().simulate_layer(conv_workload(weight_element=0.9))
        b = BitPragmatic().simulate_layer(conv_workload(weight_element=0.0))
        assert a.cycles == b.cycles

    def test_at_least_one_bit_per_mac(self):
        # Even at 100% bit sparsity a multiply needs one cycle.
        result = BitPragmatic().simulate_layer(conv_workload(act_bit=1.0))
        assert result.compute_cycles > 0
