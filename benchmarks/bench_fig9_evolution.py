"""Bench: regenerate Figure 9 (decomposition evolution)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig9_evolution


def bench_fig9_evolution(benchmark):
    result = run_and_print(benchmark, lambda: fig9_evolution.run(iterations=20))
    assert len(result.rows) >= 10
